"""Inspecting what pre-training learned: attention, embeddings, corpus.

    python examples/analysis_walkthrough.py
"""

from repro.analysis import (
    attention_map,
    entity_neighbors,
    profile_corpus,
    relation_offset_consistency,
    render_attention,
    render_profile,
    type_clustering_score,
)
from repro.analysis.attention import element_labels
from repro.config import TURLConfig
from repro.core.context import build_context
from repro.data.synthesis import SynthesisConfig
from repro.kb.generator import WorldConfig


def main() -> None:
    context = build_context(
        world_config=WorldConfig(seed=1),
        synthesis_config=SynthesisConfig(seed=2, n_tables=300),
        model_config=TURLConfig(),
        pretrain_epochs=10,
    )

    # --- corpus profile ------------------------------------------------
    print("=== corpus profile (train split) ===")
    print(render_profile(profile_corpus(context.splits.train)))

    # --- attention inspection ---------------------------------------------
    table = next((t for t in context.splits.train if t.section_title == "Recipients"),
                 context.splits.train[0])
    print(f"\n=== attention for {table.caption_text()!r} ===")
    weights, instance = attention_map(context.model, context.linearizer, table,
                                      layer=0)
    labels = element_labels(instance, context.linearizer)
    # Inspect the first entity cell (after the topic entity).
    query = instance.n_tokens + 1
    print(render_attention(weights, labels, query=query, head=0, top_k=6))

    # --- embedding space --------------------------------------------------
    print("\n=== entity embedding space ===")
    club = context.kb.entities_of_type("sports_club")[0]
    if club in context.entity_vocab:
        neighbors = entity_neighbors(context.model, context.entity_vocab, club, k=5)
        club_name = context.kb.get(club).name
        print(f"nearest neighbors of {club_name!r}:")
        for entity_id, score in neighbors:
            name = (context.kb.get(entity_id).name
                    if entity_id in context.kb else entity_id)
            print(f"  {score:6.3f}  {name}")

    types = ["citytown", "country", "film", "sports_club", "person"]
    score = type_clustering_score(context.model, context.entity_vocab,
                                  context.kb, types)
    print(f"\ntype clustering score (intra − inter cosine): {score:.3f}")
    for relation in ("city.country", "film.director"):
        consistency = relation_offset_consistency(
            context.model, context.entity_vocab, context.kb, relation)
        print(f"relation offset consistency {relation:16s}: {consistency:.3f}")


if __name__ == "__main__":
    main()
