"""The paper's future-work directions, implemented and demonstrated.

1. Numerical attributes: masked value recovery over numeric columns.
2. KB injection: ERNIE-style relation supervision during pre-training.
3. A TAPAS-style flat-text baseline for comparison.

    python examples/extensions.py
"""

import numpy as np

from repro.config import TURLConfig
from repro.core.context import build_context
from repro.core.pretrain import Pretrainer
from repro.data.synthesis import SynthesisConfig
from repro.ext.kb_injection import KBInjectionPretrainer
from repro.ext.numeric import NumericBinner, TURLValuePredictor, build_numeric_instances
from repro.ext.tapas_baseline import TapasStyleColumnTyper
from repro.kb.generator import WorldConfig
from repro.tasks.column_type import build_column_type_dataset


def main() -> None:
    context = build_context(
        world_config=WorldConfig(seed=1),
        synthesis_config=SynthesisConfig(seed=2, n_tables=300),
        model_config=TURLConfig(),
        pretrain_epochs=8,
    )

    # --- 1. Numerical attributes ----------------------------------------
    train = build_numeric_instances(context.splits.train)
    test = build_numeric_instances(context.splits.test)[:60]
    binner = NumericBinner(n_bins=4).fit([i.value for i in train])
    predictor = TURLValuePredictor(context.clone_model(), context.linearizer,
                                   binner)
    predictor.finetune(train, epochs=2, max_instances=200)
    print("=== numerical attributes (masked value recovery) ===")
    print(f"  numeric cells: {len(train)} train / {len(test)} test")
    if test:
        print(f"  bin accuracy       : {predictor.accuracy(test):.3f} "
              f"(chance {1 / binner.n_classes:.3f})")
        print(f"  within-one-bin     : {predictor.within_one_bin(test):.3f}")
        example = test[0]
        predicted = predictor.predict_bin(example)
        low, high = binner.bin_range(predicted)
        print(f"  example: {example.table.caption_text()!r} year={example.value:.0f}"
              f" -> predicted bin [{low:.0f}, {high:.0f}]")

    # --- 2. KB-injection pre-training ------------------------------------
    instances = context.instances_for(context.splits.train)[:120]
    injected = KBInjectionPretrainer(context.fresh_model(seed=5), instances,
                                     context.candidate_builder, context.kb,
                                     config=context.config)
    injected.train_with_kb(n_epochs=4)
    plain = Pretrainer(context.fresh_model(seed=5), instances,
                       context.candidate_builder, context.config)
    plain.train(n_epochs=4)
    eval_instances = context.instances_for(context.splits.validation)[:15]
    print("\n=== KB-injection pre-training ===")
    print(f"  probe (MLM+MER)           : "
          f"{plain.evaluate_object_prediction(eval_instances):.3f}")
    print(f"  probe (MLM+MER+relations) : "
          f"{injected.evaluate_object_prediction(eval_instances):.3f}")
    print(f"  mean relation loss        : "
          f"{np.mean([l for l in injected.relation_losses if l > 0]):.3f}")

    # --- 3. TAPAS-style baseline -----------------------------------------
    dataset = build_column_type_dataset(context.kb, context.splits.train,
                                        context.splits.validation,
                                        context.splits.test,
                                        min_type_instances=10)
    tapas = TapasStyleColumnTyper(context.tokenizer, len(dataset.type_names))
    tapas.fit(dataset, epochs=2, max_instances=200)
    print("\n=== TAPAS-style flat-text baseline (column typing) ===")
    print(f"  TAPAS-style: {tapas.evaluate(dataset.test[:40], dataset)}")


if __name__ == "__main__":
    main()
