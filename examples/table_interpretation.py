"""Table interpretation: entity linking, column types, relations.

Reproduces the Section 6.2-6.4 workflow on a compact pipeline: fine-tune
TURL for the three interpretation tasks and compare with the paper's
baselines.

    python examples/table_interpretation.py
"""

from repro.baselines.lookup_linker import LookupLinker
from repro.baselines.sherlock import SherlockModel
from repro.config import TURLConfig
from repro.core.context import build_context
from repro.data.synthesis import SynthesisConfig
from repro.kb.generator import WorldConfig
from repro.kb.lookup import LookupService
from repro.kb.schema import all_types
from repro.tasks.column_type import TURLColumnTypeAnnotator, build_column_type_dataset
from repro.tasks.entity_linking import TURLEntityLinker, build_linking_dataset, oracle_metrics
from repro.tasks.relation_extraction import TURLRelationExtractor, build_relation_dataset


def main() -> None:
    context = build_context(
        world_config=WorldConfig(seed=1),
        synthesis_config=SynthesisConfig(seed=2, n_tables=400,
                                         typo_probability=0.08,
                                         alias_probability=0.45),
        model_config=TURLConfig(),
        pretrain_epochs=10,
    )

    # --- Entity linking (Section 6.2) -----------------------------------
    lookup = LookupService(context.kb)
    test = build_linking_dataset(context.splits.test, lookup, max_instances=200)
    train = build_linking_dataset(context.splits.train, lookup,
                                  require_truth=True, max_instances=400)
    linker = TURLEntityLinker(context.clone_model(), context.linearizer,
                              context.kb, all_types())
    linker.finetune(train, epochs=4, lr=5e-4)
    print("=== entity linking ===")
    print(f"  Lookup top-1    : {LookupLinker().evaluate(test)}")
    print(f"  TURL fine-tuned : {linker.evaluate(test)}")
    print(f"  Lookup (Oracle) : {oracle_metrics(test)}")

    # --- Column type annotation (Section 6.3) ---------------------------
    dataset = build_column_type_dataset(context.kb, context.splits.train,
                                        context.splits.validation,
                                        context.splits.test,
                                        min_type_instances=10)
    annotator = TURLColumnTypeAnnotator(context.clone_model(), context.linearizer,
                                        len(dataset.type_names))
    annotator.finetune(dataset, epochs=2, max_instances=300)
    sherlock = SherlockModel(len(dataset.type_names))
    sherlock.fit(dataset, epochs=15)
    print("\n=== column type annotation ===")
    print(f"  Sherlock        : {sherlock.evaluate(dataset.test, dataset)}")
    print(f"  TURL fine-tuned : {annotator.evaluate(dataset.test, dataset)}")

    # Show predictions for one column.
    example = dataset.test[0]
    predicted = annotator.predict([example], dataset)[0]
    print(f"  example column {example.table.columns[example.col].header!r} "
          f"from {example.table.caption_text()!r}")
    print(f"    truth: {sorted(example.types)}")
    print(f"    TURL : {sorted(predicted)}")

    # --- Relation extraction (Section 6.4) ------------------------------
    relations = build_relation_dataset(context.kb, context.splits.train,
                                       context.splits.validation,
                                       context.splits.test,
                                       min_relation_instances=10)
    extractor = TURLRelationExtractor(context.clone_model(), context.linearizer,
                                      len(relations.relation_names))
    extractor.finetune(relations, epochs=1, max_instances=250)
    print("\n=== relation extraction ===")
    print(f"  TURL fine-tuned : {extractor.evaluate(relations.test[:50], relations)}")
    pair = relations.test[0]
    predicted = extractor.predict([pair], relations)[0]
    print(f"  example pair {pair.table.columns[pair.subject_col].header!r} -> "
          f"{pair.table.columns[pair.object_col].header!r}: "
          f"truth {sorted(pair.relations)}, TURL {sorted(predicted)}")


if __name__ == "__main__":
    main()
