"""Anatomy of TURL pre-training: linearization, visibility, masking.

Walks through the internals of Sections 4.2-4.4 on a single table — the
Figure 3 / Figure 5 walk-through of the paper, in code.

    python examples/pretraining_anatomy.py
"""

import numpy as np

from repro.config import TURLConfig
from repro.core.batching import collate
from repro.core.candidates import CandidateBuilder
from repro.core.linearize import KIND_CAPTION, KIND_HEADER, Linearizer
from repro.core.masking import IGNORE, MaskingPolicy
from repro.core.visibility import build_visibility
from repro.data.preprocessing import filter_relational, partition_corpus
from repro.data.synthesis import SynthesisConfig, build_corpus
from repro.kb.generator import WorldConfig, generate_world
from repro.text.tokenizer import WordPieceTokenizer
from repro.text.vocab import EntityVocabulary


def main() -> None:
    kb = generate_world(WorldConfig(seed=1))
    corpus = filter_relational(build_corpus(kb, SynthesisConfig(seed=2, n_tables=300)))
    splits = partition_corpus(corpus)
    tokenizer = WordPieceTokenizer.train(splits.train.metadata_texts(), vocab_size=2000)
    entity_vocab = EntityVocabulary.build_from_counts(splits.train.entity_counts())
    config = TURLConfig()
    linearizer = Linearizer(tokenizer, entity_vocab, config)

    # Pick an award-recipients table -- the paper's Figure 1 genre.
    table = next((t for t in splits.train if t.section_title == "Recipients"),
                 splits.train[0])
    print(f"table: {table.caption_text()!r}")
    print(f"headers: {table.headers}, rows: {table.n_rows}")

    # --- Linearization (Figure 3) -----------------------------------------
    instance = linearizer.encode(table)
    caption_tokens = (instance.token_kind == KIND_CAPTION).sum()
    header_tokens = (instance.token_kind == KIND_HEADER).sum()
    print(f"\nlinearized: {caption_tokens} caption tokens, "
          f"{header_tokens} header tokens, {instance.n_entities} entity cells")

    # --- Visibility matrix (Figures 4-5) -----------------------------------
    visibility = build_visibility(instance)
    density = visibility.mean()
    print(f"visibility matrix: {visibility.shape}, density {density:.2f} "
          "(1.0 would be a vanilla Transformer)")
    first_cell = instance.n_tokens + 1
    visible = int(visibility[first_cell].sum())
    print(f"first entity cell attends to {visible}/{visibility.shape[0]} elements")

    # --- Masking (Section 4.4) ---------------------------------------------
    policy = MaskingPolicy(config, len(tokenizer.vocab), len(entity_vocab))
    batch = collate([instance])
    masked = policy.apply(batch, np.random.default_rng(0))
    print(f"\nMLM selected {masked.n_mlm} tokens "
          f"({masked.n_mlm / max(1, instance.n_tokens):.0%} of metadata)")
    print(f"MER selected {masked.n_mer} entity cells")
    mention_kept = int(((masked.mer_labels != IGNORE)
                        & ~masked.batch['mention_masked']).sum())
    print(f"  of those, {mention_kept} keep their mention visible "
          "(the paper's 27% + 10% groups)")

    # --- Candidate set (Section 4.4) ---------------------------------------
    builder = CandidateBuilder(splits.train, entity_vocab, config)
    candidate_ids, remapped = builder.build(batch["entity_ids"], masked.mer_labels,
                                            np.random.default_rng(0))
    print(f"\nMER candidate set: {len(candidate_ids)} entities "
          "(table entities + co-occurring + random negatives)")
    selected = masked.mer_labels != IGNORE
    print(f"all {int(selected.sum())} masked cells have their truth in the "
          f"candidate set: {(remapped[selected] >= 0).all()}")


if __name__ == "__main__":
    main()
