"""Table augmentation: row population, cell filling, schema augmentation.

Reproduces the Section 6.5-6.7 workflow: complete a partially-written table
with entities, values and headers.

    python examples/table_augmentation.py
"""

from repro.baselines.cell_filling import ExactRanker
from repro.baselines.entitables import EntiTablesRowPopulator, KNNSchemaAugmenter
from repro.config import TURLConfig
from repro.core.context import build_context
from repro.data.synthesis import SynthesisConfig
from repro.kb.generator import WorldConfig
from repro.tasks.cell_filling import (
    CellFillingCandidates,
    HeaderStatistics,
    TURLCellFiller,
    build_filling_instances,
)
from repro.tasks.row_population import (
    PopulationCandidateGenerator,
    TURLRowPopulator,
    build_population_instances,
)
from repro.tasks.schema_augmentation import (
    TURLSchemaAugmenter,
    build_header_vocabulary,
    build_schema_instances,
)


def main() -> None:
    context = build_context(
        world_config=WorldConfig(seed=1).scaled(1.5),
        synthesis_config=SynthesisConfig(seed=2, n_tables=600,
                                         typo_probability=0.08,
                                         alias_probability=0.45),
        model_config=TURLConfig(),
        pretrain_epochs=12,
    )

    # --- Row population (Section 6.5) ------------------------------------
    generator = PopulationCandidateGenerator(context.splits.train, k_tables=30)
    eval_instances = build_population_instances(context.splits.test, n_seed=1,
                                                min_subject_entities=5)
    train_instances = build_population_instances(context.splits.train, n_seed=1,
                                                 min_subject_entities=3)
    populator = TURLRowPopulator(context.clone_model(), context.linearizer)
    populator.finetune(train_instances, generator, epochs=6)
    entitables = EntiTablesRowPopulator(context.splits.train)
    print("=== row population (1 seed) ===")
    print(f"  candidate recall: {generator.recall(eval_instances):.3f}")
    print(f"  EntiTables MAP  : {entitables.evaluate(eval_instances, generator).primary_value:.3f}")
    print(f"  TURL MAP        : {populator.evaluate(eval_instances, generator).primary_value:.3f}")

    query = eval_instances[0]
    ranked = populator.rank(query, generator.candidates_for(query))
    names = [context.kb.get(e).name if e in context.kb else e for e in ranked[:5]]
    print(f"  query: {query.caption!r}")
    print(f"  top-5 suggested row entities: {names}")

    # --- Cell filling (Section 6.6; no fine-tuning needed) ----------------
    instances = build_filling_instances(context.splits.test)[:200]
    statistics = HeaderStatistics(context.splits.train)
    candidates = CellFillingCandidates(context.splits.train, statistics)
    filler = TURLCellFiller(context.model, context.linearizer)
    print("\n=== cell filling ===")
    recall, avg = candidates.recall(instances)
    print(f"  candidate recall {recall:.3f} (avg {avg:.1f} candidates)")
    print(f"  Exact P@K: {ExactRanker().evaluate(instances, candidates).values}")
    print(f"  TURL  P@K: {filler.evaluate(instances, candidates).values}")

    # --- Schema augmentation (Section 6.7) --------------------------------
    vocabulary = build_header_vocabulary(context.splits.train, min_tables=3)
    eval_schema = build_schema_instances(context.splits.test, vocabulary, n_seed=0)
    train_schema = build_schema_instances(context.splits.train, vocabulary, n_seed=0)
    augmenter = TURLSchemaAugmenter(context.clone_model(), context.linearizer,
                                    vocabulary)
    augmenter.finetune(train_schema, epochs=4)
    knn = KNNSchemaAugmenter(context.splits.train)
    print("\n=== schema augmentation (0 seed headers) ===")
    print(f"  header vocabulary: {len(vocabulary)}")
    print(f"  kNN MAP : {knn.evaluate(eval_schema, vocabulary).primary_value:.3f}")
    print(f"  TURL MAP: {augmenter.evaluate(eval_schema).primary_value:.3f}")
    case = eval_schema[0]
    print(f"  query: {case.caption!r}")
    print(f"    truth  : {sorted(case.target_headers)}")
    print(f"    TURL   : {augmenter.rank(case)[:5]}")


if __name__ == "__main__":
    main()
