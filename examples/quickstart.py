"""Quickstart: build a world, pre-train TURL, inspect what it learned.

Runs in about a minute on a laptop CPU::

    python examples/quickstart.py
"""

import numpy as np

from repro.config import TURLConfig
from repro.core.context import build_context
from repro.core.pretrain import Pretrainer
from repro.data.statistics import format_statistics, splits_statistics
from repro.data.synthesis import SynthesisConfig
from repro.kb.generator import WorldConfig


def main() -> None:
    # 1. Build the whole pipeline: synthetic knowledge base -> Wikipedia-style
    #    table corpus -> vocabularies -> structure-aware encoder -> MLM+MER
    #    pre-training (paper Sections 4-5).
    context = build_context(
        world_config=WorldConfig(seed=1),
        synthesis_config=SynthesisConfig(seed=2, n_tables=300),
        model_config=TURLConfig(),
        pretrain_epochs=8,
    )

    print("=== corpus (paper Table 3 format) ===")
    print(format_statistics(splits_statistics(context.splits)))
    print()
    print(f"token vocabulary : {len(context.tokenizer.vocab)}")
    print(f"entity vocabulary: {len(context.entity_vocab)}")
    print(f"model parameters : {context.model.num_parameters():,}")

    # 2. The pre-training probe (paper Section 6.8): mask an object entity,
    #    recover it from a candidate set.
    pretrainer = Pretrainer(context.model, [], context.candidate_builder,
                            context.config)
    validation = context.instances_for(context.splits.validation)
    accuracy = pretrainer.evaluate_object_prediction(validation, max_tables=20)
    print(f"\nobject-entity recovery accuracy (validation): {accuracy:.3f}")

    # 3. Peek at one table and its masked-entity prediction.
    table = context.splits.validation[0]
    print(f"\nexample table: {table.caption_text()!r}")
    print(f"  headers: {table.headers}")
    print(f"  first row: {[getattr(c, 'mention', c) for c in table.row(0)]}")

    # 4. Contextualized representations for downstream use: encode the table
    #    and show the shape of the element embeddings.
    from repro.core.batching import collate

    instance = context.linearizer.encode(table)
    batch = collate([instance])
    token_hidden, entity_hidden = context.model.encode(batch)
    print(f"  token representations : {token_hidden.shape}")
    print(f"  entity representations: {entity_hidden.shape}")


if __name__ == "__main__":
    main()
