#!/usr/bin/env python
"""Soak/stress harness for the multi-worker serving fleet.

Boots a :class:`PredictorFleet` behind the HTTP server against a (tiny)
pre-trained checkpoint, then drives a seeded mixed-task workload over a
real loopback socket from ``--concurrency`` driver threads.  Table picks
follow a long-tail (Zipf-like) repeat distribution, so a handful of hot
tables dominate — the regime content-routed per-worker caches are built
for.  Every response is checked bit-for-bit against the single-worker
template predictor's answer for that payload.

Reports p50/p99 latency, throughput, per-status-class counts, per-worker
cache hit rates and the fleet rollup as JSON (``--json``), and enforces
thresholds (``--p99-budget-ms``, zero 5xx, zero mismatches, cache hits
on every routed worker) so CI can gate on the exit code.

Usage:
    PYTHONPATH=src python tools/serve_soak.py --checkpoint /tmp/ckpt \
        --requests 100000 --workers 4
    # CI smoke variant:
    PYTHONPATH=src python tools/serve_soak.py --checkpoint /tmp/ckpt \
        --requests 2000 --workers 2 --tables 40 --scale 0.25
"""

import argparse
import json
import sys
import threading

import numpy as np

from repro.core.linearize import Linearizer
from repro.core.pretrain import load_checkpoint
from repro.data.preprocessing import filter_relational, partition_corpus
from repro.data.synthesis import SynthesisConfig, build_corpus
from repro.kb.generator import WorldConfig, generate_world
from repro.obs.clock import perf_counter
from repro.serve import Client, build_serving_fleet

TASKS = ("entity_linking", "column_type", "relation_extraction",
         "row_population", "cell_filling", "schema_augmentation")


def build_workload(bundle, n_requests: int, seed: int, zipf_s: float):
    """A seeded (task, payload index) schedule with a long-tail repeat law.

    Within each task the k-th distinct payload is drawn with probability
    proportional to ``1 / (k + 1) ** zipf_s`` — the head payloads repeat
    constantly (cache-hot), the tail trickles (cache-cold).
    """
    payloads = {}
    expected = {}
    for task in TASKS:
        adapter = bundle.predictor.adapter_for(task)
        task_payloads = [adapter.encode_instance(instance)
                         for instance in bundle.examples[task]]
        if not task_payloads:
            raise SystemExit(f"{task}: no test-split examples to serve")
        payloads[task] = task_payloads
        expected[task] = bundle.predictor.predict_payloads(task,
                                                           task_payloads)

    rng = np.random.default_rng(seed)
    schedule = []
    for task in TASKS:
        ranks = np.arange(len(payloads[task]))
        weights = 1.0 / (ranks + 1.0) ** zipf_s
        weights /= weights.sum()
        picks = rng.choice(ranks, size=n_requests // len(TASKS) + 1,
                          p=weights)
        schedule.extend((task, int(index)) for index in picks)
    rng.shuffle(schedule)
    return payloads, expected, schedule[:n_requests]


def drive(client, payloads, expected, schedule, concurrency: int):
    """Fan the schedule over ``concurrency`` synchronous driver threads."""
    latencies = [[] for _ in range(concurrency)]
    statuses = [{} for _ in range(concurrency)]
    mismatches = [0] * concurrency

    def worker(slot: int) -> None:
        for task, index in schedule[slot::concurrency]:
            begin = perf_counter()
            status, body = client.post(task,
                                       {"instance": payloads[task][index]})
            latencies[slot].append(perf_counter() - begin)
            statuses[slot][status] = statuses[slot].get(status, 0) + 1
            if status == 200:
                if body["predictions"][0] != expected[task][index]:
                    mismatches[slot] += 1

    threads = [threading.Thread(target=worker, args=(slot,), daemon=True)
               for slot in range(concurrency)]
    begin = perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = perf_counter() - begin

    merged_status = {}
    for per_thread in statuses:
        for status, count in per_thread.items():
            merged_status[status] = merged_status.get(status, 0) + count
    flat = np.array([value for chunk in latencies for value in chunk])
    return flat, merged_status, sum(mismatches), wall


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--checkpoint", required=True)
    parser.add_argument("--requests", type=int, default=100_000)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--max-queue", type=int, default=64)
    parser.add_argument("--concurrency", type=int, default=8,
                        help="synchronous driver threads (bounds in-flight)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--tables", type=int, default=40)
    parser.add_argument("--corpus", default=None, metavar="DIR",
                        help="draw served tables from a `repro.cli "
                             "synthesize` sharded corpus instead of "
                             "synthesizing in-process (--tables is then "
                             "ignored; --seed/--scale still shape the KB)")
    parser.add_argument("--n-examples", type=int, default=4,
                        help="distinct payloads per task (tail length)")
    parser.add_argument("--zipf-s", type=float, default=1.2,
                        help="long-tail exponent for table repeats")
    parser.add_argument("--p99-budget-ms", type=float, default=250.0)
    parser.add_argument("--json", dest="json_out", default=None,
                        help="write the full soak report to this path")
    args = parser.parse_args(argv)

    model, tokenizer, entity_vocab = load_checkpoint(args.checkpoint,
                                                     mmap="auto")
    kb = generate_world(WorldConfig(seed=args.seed).scaled(args.scale))
    if args.corpus:
        from repro.data.shards import ShardedDataset

        splits = ShardedDataset(args.corpus).splits()
    else:
        corpus = filter_relational(build_corpus(
            kb, SynthesisConfig(seed=args.seed + 1, n_tables=args.tables)))
        splits = partition_corpus(corpus, seed=args.seed)
    linearizer = Linearizer(tokenizer, entity_vocab, model.config)
    fleet, bundle = build_serving_fleet(model, linearizer, kb, splits,
                                        workers=args.workers,
                                        max_queue=args.max_queue,
                                        seed=args.seed,
                                        n_examples=args.n_examples)

    payloads, expected, schedule = build_workload(bundle, args.requests,
                                                  args.seed, args.zipf_s)
    print(f"soak: {len(schedule)} requests, {args.workers} workers, "
          f"{args.concurrency} driver threads, zipf_s={args.zipf_s}")

    with Client(fleet=fleet) as client:
        latencies, status_counts, mismatches, wall = drive(
            client, payloads, expected, schedule, args.concurrency)
        metrics = client.metrics()
        cache = metrics["encode_cache"]

    ok = len(latencies) > 0
    p50_ms = float(np.percentile(latencies, 50) * 1e3) if ok else float("nan")
    p99_ms = float(np.percentile(latencies, 99) * 1e3) if ok else float("nan")
    n_5xx = sum(count for status, count in status_counts.items()
                if status >= 500)
    per_worker_hits = {name: stats.get("hits", 0.0)
                       for name, stats in cache.get("per_worker", {}).items()}
    per_worker_requests = {
        name: metrics["metrics"].get(f"serve.{name}.requests",
                                     {}).get("value", 0)
        for name in per_worker_hits}
    routed = [name for name, count in per_worker_requests.items()
              if count > 0]

    checks = {
        "all_requests_answered": len(latencies) == len(schedule),
        "p99_within_budget": ok and p99_ms <= args.p99_budget_ms,
        "zero_5xx": n_5xx == 0,
        "zero_mismatches": mismatches == 0,
        # With a small distinct-table pool the ring may leave a worker
        # without keyspace; demand hits from every worker that actually
        # received traffic, and that traffic spread beyond one lane.
        "every_routed_worker_served_cache_hits": (
            bool(routed)
            and all(per_worker_hits[name] > 0 for name in routed)),
        "routing_spread_across_workers": (
            len(routed) >= min(2, args.workers)),
    }
    report = {
        "requests": len(schedule),
        "workers": args.workers,
        "concurrency": args.concurrency,
        "seed": args.seed,
        "zipf_s": args.zipf_s,
        "wall_seconds": wall,
        "throughput_rps": len(latencies) / wall if wall else 0.0,
        "latency_ms": {"p50": p50_ms, "p99": p99_ms,
                       "budget_p99": args.p99_budget_ms},
        "status_counts": {str(k): v for k, v in sorted(status_counts.items())},
        "mismatches": mismatches,
        "cache": {"hit_rate": cache.get("hit_rate"),
                  "per_worker_hits": per_worker_hits,
                  "per_worker_requests": per_worker_requests},
        "checks": checks,
    }
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")

    print(f"soak: {report['throughput_rps']:.0f} req/s, "
          f"p50 {p50_ms:.2f} ms, p99 {p99_ms:.2f} ms, "
          f"hit rate {cache.get('hit_rate', 0.0):.2f}")
    for name in sorted(per_worker_hits):
        print(f"soak: {name} requests={per_worker_requests[name]:.0f} "
              f"hits={per_worker_hits[name]:.0f}")
    failures = [name for name, passed in checks.items() if not passed]
    for name in failures:
        print(f"FAIL {name}", file=sys.stderr)
    if failures:
        return 1
    print("serve soak passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
