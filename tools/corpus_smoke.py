#!/usr/bin/env python
"""End-to-end smoke test for the sharded corpus pipeline.

Writes a mini sharded corpus twice — serially and with parallel workers —
and asserts the bytes are identical, then streams one pre-training epoch
off the memory-mapped corpus and asserts the loss sequence and final
weights are bit-identical to the eager in-memory path over the same
split.  Exits nonzero on any failure, so CI can gate on it.

Usage:
    PYTHONPATH=src python tools/corpus_smoke.py --tables 80 \
        --shards 4 --workers 2 --scale 0.25
"""

import argparse
import hashlib
import os
import shutil
import sys
import tempfile

import numpy as np

from repro.config import TURLConfig
from repro.core.candidates import CandidateBuilder
from repro.core.context import pretrain_streaming
from repro.core.linearize import Linearizer
from repro.core.model import TURLModel
from repro.core.pretrain import Pretrainer
from repro.data.corpus import TableCorpus
from repro.data.shards import write_sharded_corpus
from repro.data.synthesis import SynthesisConfig
from repro.kb.generator import WorldConfig, generate_world
from repro.text.tokenizer import WordPieceTokenizer
from repro.text.vocab import EntityVocabulary

VOCAB_SIZE = 600


def directory_digest(directory: str) -> str:
    digest = hashlib.blake2b(digest_size=16)
    for name in sorted(os.listdir(directory)):
        digest.update(name.encode("utf-8"))
        with open(os.path.join(directory, name), "rb") as handle:
            digest.update(handle.read())
    return digest.hexdigest()


def weight_digest(model) -> str:
    digest = hashlib.blake2b(digest_size=16)
    for name, parameter in sorted(model.named_parameters()):
        digest.update(name.encode("utf-8"))
        digest.update(np.ascontiguousarray(parameter.data).tobytes())
    return digest.hexdigest()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--tables", type=int, default=80)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)

    failures = []
    kb = generate_world(WorldConfig(seed=args.seed).scaled(args.scale))
    synthesis = SynthesisConfig(seed=args.seed + 1, n_tables=args.tables)
    config = TURLConfig(num_layers=1, dim=32, intermediate_dim=64,
                        num_heads=2, batch_size=4)

    root = tempfile.mkdtemp(prefix="corpus_smoke_")
    try:
        serial_dir = os.path.join(root, "serial")
        parallel_dir = os.path.join(root, "parallel")
        write_sharded_corpus(kb, synthesis, serial_dir,
                             n_shards=args.shards, workers=1)
        dataset = write_sharded_corpus(kb, synthesis, parallel_dir,
                                       n_shards=args.shards,
                                       workers=args.workers)
        serial = directory_digest(serial_dir)
        parallel = directory_digest(parallel_dir)
        print(f"corpus: {len(dataset)} records, {args.shards} shards; "
              f"workers=1 digest {serial}, workers={args.workers} "
              f"digest {parallel}")
        if serial != parallel:
            failures.append(
                f"worker-count invariance broken: workers=1 wrote {serial}, "
                f"workers={args.workers} wrote {parallel}")

        streamed_model, _, _, streamed = pretrain_streaming(
            dataset, model_config=config, pretrain_epochs=1,
            vocab_size=VOCAB_SIZE, seed=args.seed)

        train = TableCorpus(dataset.instances("train"))
        tokenizer = WordPieceTokenizer.train(train.metadata_texts(),
                                             vocab_size=VOCAB_SIZE)
        entity_vocab = EntityVocabulary.build_from_counts(
            train.entity_counts(), min_frequency=2)
        model = TURLModel(len(tokenizer.vocab), len(entity_vocab), config,
                          seed=args.seed)
        linearizer = Linearizer(tokenizer, entity_vocab, config)
        instances = [linearizer.encode(table) for table in train]
        eager = Pretrainer(model, instances,
                           CandidateBuilder(train, entity_vocab, config),
                           config, seed=args.seed).train(n_epochs=1)

        print(f"pretrain: streamed {streamed.steps} steps "
              f"(final loss {streamed.losses[-1]:.4f}), eager {eager.steps} "
              f"steps (final loss {eager.losses[-1]:.4f})")
        if streamed.losses != eager.losses:
            diverged = next(i for i, (a, b) in
                            enumerate(zip(streamed.losses, eager.losses))
                            if a != b) if streamed.steps == eager.steps else 0
            failures.append("streamed losses diverge from the eager path "
                            f"(first difference at step {diverged})")
        streamed_hash = weight_digest(streamed_model)
        eager_hash = weight_digest(model)
        print(f"weights: streamed {streamed_hash}, eager {eager_hash}")
        if streamed_hash != eager_hash:
            failures.append("streamed weights differ from the eager path")
    finally:
        shutil.rmtree(root, ignore_errors=True)

    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    if failures:
        return 1
    print("corpus smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
