#!/usr/bin/env python
"""End-to-end smoke test for the serving stack.

Boots the HTTP prediction server against a (tiny) pre-trained
checkpoint, sends one request per task over a real loopback socket,
repeats one request, and asserts that ``/metrics`` reports nonzero
encode-cache hits. Exits nonzero on any failure, so CI can gate on it.

Usage:
    PYTHONPATH=src python tools/serve_smoke.py --checkpoint /tmp/ckpt \
        --tables 40 --scale 0.25
"""

import argparse
import sys

from repro.core.linearize import Linearizer
from repro.core.pretrain import load_checkpoint
from repro.data.preprocessing import filter_relational, partition_corpus
from repro.data.synthesis import SynthesisConfig, build_corpus
from repro.kb.generator import WorldConfig, generate_world
from repro.serve import Client, build_serving_bundle

TASKS = ("entity_linking", "column_type", "relation_extraction",
         "row_population", "cell_filling", "schema_augmentation")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--checkpoint", required=True)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--tables", type=int, default=40)
    args = parser.parse_args(argv)

    model, tokenizer, entity_vocab = load_checkpoint(args.checkpoint)
    kb = generate_world(WorldConfig(seed=args.seed).scaled(args.scale))
    corpus = filter_relational(build_corpus(
        kb, SynthesisConfig(seed=args.seed + 1, n_tables=args.tables)))
    splits = partition_corpus(corpus, seed=args.seed)
    linearizer = Linearizer(tokenizer, entity_vocab, model.config)
    bundle = build_serving_bundle(model, linearizer, kb, splits,
                                  seed=args.seed, n_examples=1)

    failures = []
    with Client(bundle.predictor) as client:
        health = client.healthz()
        if health.get("status") != "ok":
            failures.append(f"healthz not ok: {health}")
        if sorted(health.get("tasks", [])) != sorted(TASKS):
            failures.append(f"healthz task list wrong: {health.get('tasks')}")

        for task in TASKS:
            examples = bundle.examples.get(task, [])
            if not examples:
                failures.append(f"{task}: no test-split example to serve")
                continue
            adapter = bundle.predictor.adapter_for(task)
            payload = adapter.encode_instance(examples[0])
            answer = client.predict(task, payload)
            if answer.get("task") != task or "output" not in answer:
                failures.append(f"{task}: malformed answer {answer!r}")
                continue
            print(f"ok   POST /v1/{task}")

        # A repeated request must be served out of the encode cache.
        task = "schema_augmentation"
        adapter = bundle.predictor.adapter_for(task)
        payload = adapter.encode_instance(bundle.examples[task][0])
        first = client.predict(task, payload)
        second = client.predict(task, payload)
        if first != second:
            failures.append("repeated request not deterministic")

        metrics = client.metrics()
        cache = metrics.get("encode_cache", {})
        if cache.get("enabled") != 1.0:
            failures.append(f"encode cache not enabled: {cache}")
        elif not cache.get("hits", 0) > 0:
            failures.append(f"no encode-cache hits after a repeat: {cache}")
        else:
            print(f"ok   encode cache: {cache['hits']:.0f} hits, "
                  f"hit rate {cache['hit_rate']:.2f}")
        requests = metrics.get("metrics", {}).get(f"serve.requests.{task}", {})
        if requests.get("value", 0) < 3:
            failures.append(f"request counter did not advance: {requests}")

    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    if failures:
        return 1
    print("serve smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
