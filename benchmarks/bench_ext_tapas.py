"""Extension — TAPAS-style flat-text baseline for column typing.

Positions the structure-aware entity-based TURL design against a TAPAS-like
flat token encoder (all cells as text, row/column embeddings, full
attention, trained from scratch).
"""

from repro.ext.tapas_baseline import TapasStyleColumnTyper


def test_ext_tapas_baseline(bench_context, column_type_setup, report, benchmark):
    ctx = bench_context
    dataset = column_type_setup["dataset"]
    turl = column_type_setup["annotators"]["full"]
    sherlock = column_type_setup["sherlock"]

    tapas = TapasStyleColumnTyper(ctx.tokenizer, len(dataset.type_names),
                                  dim=ctx.config.dim,
                                  num_layers=ctx.config.num_layers,
                                  num_heads=ctx.config.num_heads,
                                  intermediate_dim=ctx.config.intermediate_dim)
    tapas.fit(dataset, epochs=3, max_instances=400)

    test = dataset.test
    tapas_metrics = benchmark.pedantic(tapas.evaluate, args=(test, dataset),
                                       rounds=1, iterations=1)
    turl_metrics = turl.evaluate(test, dataset)
    sherlock_metrics = sherlock.evaluate(test, dataset)

    lines = [f"{'Method':28s}{'F1':>8s}{'P':>8s}{'R':>8s}"]
    for name, metrics in [("Sherlock", sherlock_metrics),
                          ("TAPAS-style (flat text)", tapas_metrics),
                          ("TURL + fine-tuning", turl_metrics)]:
        m = metrics.as_percentages()
        lines.append(f"{name:28s}{m.f1:8.2f}{m.precision:8.2f}{m.recall:8.2f}")
    report("Extension: TAPAS-style baseline (column typing)", "\n".join(lines))

    # The pre-trained, structure-aware model beats the from-scratch flat
    # encoder; the flat encoder is itself a serious baseline.
    assert turl_metrics.f1 >= tapas_metrics.f1
    assert tapas_metrics.f1 > 0.5
