"""Extension — ERNIE-style KB injection (paper future work #2).

Pre-train two compact models under the ablation setting — one with the
auxiliary relation-prediction objective, one without — and compare the
object-entity-recovery probe.
"""

from _ablation import ABLATION_EPOCHS, ABLATION_TABLES, EVAL_TABLES

from repro.core.candidates import CandidateBuilder
from repro.core.model import TURLModel
from repro.core.pretrain import Pretrainer
from repro.ext.kb_injection import KBInjectionPretrainer


def _probe(context, pretrainer):
    eval_instances = [context.linearizer.encode(t)
                      for t in context.splits.validation.tables[:EVAL_TABLES]]
    return pretrainer.evaluate_object_prediction(eval_instances,
                                                 max_tables=EVAL_TABLES)


def test_ext_kb_injection(bench_context, report, benchmark):
    ctx = bench_context
    instances = [ctx.linearizer.encode(t)
                 for t in ctx.splits.train.tables[:ABLATION_TABLES]]
    builder = CandidateBuilder(ctx.splits.train, ctx.entity_vocab, ctx.config)

    from repro.analysis.embeddings import type_clustering_score

    TYPES = ("citytown", "country", "film", "sports_club", "director")

    def run_injected():
        model = TURLModel(ctx.model.vocab_size, ctx.model.entity_vocab_size,
                          ctx.config, seed=0)
        pretrainer = KBInjectionPretrainer(model, instances, builder, ctx.kb,
                                           config=ctx.config, seed=0)
        pretrainer.train_with_kb(n_epochs=ABLATION_EPOCHS)
        relation_losses = [l for l in pretrainer.relation_losses if l > 0]
        clustering = type_clustering_score(model, ctx.entity_vocab, ctx.kb, TYPES)
        return _probe(ctx, pretrainer), relation_losses, clustering

    def run_plain():
        model = TURLModel(ctx.model.vocab_size, ctx.model.entity_vocab_size,
                          ctx.config, seed=0)
        pretrainer = Pretrainer(model, instances, builder, ctx.config, seed=0)
        pretrainer.train(n_epochs=ABLATION_EPOCHS)
        clustering = type_clustering_score(model, ctx.entity_vocab, ctx.kb, TYPES)
        return _probe(ctx, pretrainer), clustering

    injected, relation_losses, injected_clustering = benchmark.pedantic(
        run_injected, rounds=1, iterations=1)
    plain, plain_clustering = run_plain()

    import numpy as np

    first = float(np.mean(relation_losses[:20]))
    last = float(np.mean(relation_losses[-20:]))
    report("Extension: KB-injection pre-training", "\n".join([
        f"{'setting':34s}{'probe ACC':>10s}{'type clustering':>16s}",
        f"{'MLM + MER (paper)':34s}{plain:10.3f}{plain_clustering:16.3f}",
        f"{'MLM + MER + relation injection':34s}{injected:10.3f}{injected_clustering:16.3f}",
        f"auxiliary relation loss: {first:.3f} -> {last:.3f}",
        "",
        "At compact scale the auxiliary objective trades some recovery-probe",
        "accuracy for explicit relational/type structure in the entity space",
        "(a classic multi-task trade-off; the paper leaves this to future work).",
    ]))

    # Honest expectations: the auxiliary objective is learnable (its loss
    # drops), it structures the embedding space at least as well as plain
    # pre-training, and the probe stays within a multi-task trade-off margin.
    assert last < first
    assert injected_clustering >= plain_clustering - 0.05
    assert injected >= plain - 0.15
