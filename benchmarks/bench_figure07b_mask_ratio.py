"""Figure 7b — ablation: MER mask ratio {0.2, 0.4, 0.6, 0.8} vs the
object-entity-prediction probe."""

from _ablation import format_curves, run_ablation_pretraining

RATIOS = (0.2, 0.4, 0.6, 0.8)


def test_figure07b_mer_mask_ratio(bench_context, report, benchmark):
    stats = {}
    for ratio in RATIOS:
        if ratio == 0.6:
            stats[ratio] = benchmark.pedantic(
                run_ablation_pretraining, args=(bench_context,),
                kwargs={"mer_probability": ratio}, rounds=1, iterations=1)
        else:
            stats[ratio] = run_ablation_pretraining(bench_context,
                                                    mer_probability=ratio)

    report("Figure 7b: MER mask-ratio ablation",
           format_curves([(f"mask ratio {r}", stats[r]) for r in RATIOS]))

    final = {ratio: stats[ratio].final_accuracy for ratio in RATIOS}
    # Paper shape: mid ratios (0.4/0.6) dominate the extremes; 0.8 drops
    # because the model sees too little relational evidence, 0.2 undertrains
    # the entity objective.  Results are "not sensitive" per the paper, so we
    # assert the envelope rather than a strict ordering.
    best_mid = max(final[0.4], final[0.6])
    assert best_mid >= final[0.8] - 0.02
    assert best_mid >= final[0.2] - 0.02
