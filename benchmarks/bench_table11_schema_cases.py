"""Table 11 — schema augmentation case study: per-query AP for kNN and TURL,
with the kNN support caption (the most similar corpus table)."""

from repro.tasks.metrics import average_precision


def test_table11_schema_case_study(schema_setup, report, benchmark):
    vocabulary = schema_setup["vocabulary"]
    knn = schema_setup["knn"]
    setup = schema_setup["seeds"][1]
    turl = setup["turl"]
    instances = setup["eval"][:3]
    assert instances, "no schema-augmentation evaluation instances"

    def run_cases():
        cases = []
        for instance in instances:
            knn_ranked = knn.rank(instance, vocabulary)
            turl_ranked = turl.rank(instance)
            cases.append({
                "caption": instance.caption,
                "seeds": instance.seed_headers,
                "targets": sorted(instance.target_headers),
                "knn_ap": average_precision(knn_ranked, instance.target_headers),
                "turl_ap": average_precision(turl_ranked, instance.target_headers),
                "knn_top": knn_ranked[:5],
                "turl_top": turl_ranked[:5],
                "support": knn.best_support_caption(instance),
            })
        return cases

    cases = benchmark.pedantic(run_cases, rounds=1, iterations=1)

    lines = []
    for case in cases:
        lines.extend([
            f"query caption : {case['caption']}",
            f"seed headers  : {case['seeds']}",
            f"target headers: {case['targets']}",
            f"kNN   AP {case['knn_ap']:.2f} -> {case['knn_top']}",
            f"TURL  AP {case['turl_ap']:.2f} -> {case['turl_top']}",
            f"kNN support caption: {case['support']}",
            "-" * 68,
        ])
    report("Table 11: schema augmentation case study", "\n".join(lines))

    # Sanity: every case produced rankings and a support table.
    for case in cases:
        assert case["knn_top"] and case["turl_top"]
        assert case["support"]
