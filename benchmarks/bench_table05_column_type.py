"""Table 5 — column type annotation: TURL (+input ablations) vs Sherlock."""


def test_table05_column_type(column_type_setup, report, benchmark):
    dataset = column_type_setup["dataset"]
    annotators = column_type_setup["annotators"]
    sherlock = column_type_setup["sherlock"]
    test = dataset.test

    rows = {}
    rows["Sherlock"] = sherlock.evaluate(test, dataset)
    rows["TURL + fine-tuning (only entity mention)"] = \
        annotators["only entity mention"].evaluate(test, dataset)
    rows["TURL + fine-tuning"] = benchmark.pedantic(
        annotators["full"].evaluate, args=(test, dataset), rounds=1, iterations=1)
    rows["  w/o table metadata"] = annotators["w/o table metadata"].evaluate(test, dataset)
    rows["  w/o learned embedding"] = annotators["w/o learned embedding"].evaluate(test, dataset)
    rows["  only table metadata"] = annotators["only table metadata"].evaluate(test, dataset)
    rows["  only learned embedding"] = annotators["only learned embedding"].evaluate(test, dataset)

    lines = [f"{'Method':44s}{'F1':>8s}{'P':>8s}{'R':>8s}"]
    for name, metrics in rows.items():
        m = metrics.as_percentages()
        lines.append(f"{name:44s}{m.f1:8.2f}{m.precision:8.2f}{m.recall:8.2f}")
    report("Table 5: column type annotation", "\n".join(lines))

    # Paper shape: full TURL beats Sherlock and beats mention-only TURL,
    # which in turn beats Sherlock on identical input information.
    assert rows["TURL + fine-tuning"].f1 > rows["Sherlock"].f1
    assert rows["TURL + fine-tuning"].f1 >= rows["TURL + fine-tuning (only entity mention)"].f1
    assert rows["TURL + fine-tuning (only entity mention)"].f1 > rows["Sherlock"].f1 - 0.05
