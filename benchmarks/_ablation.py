"""Shared machinery for the Figure 7 pre-training ablations.

Both ablations pre-train compact models from scratch under a controlled
setting and track the object-entity-prediction probe (Section 6.8) on the
validation split at regular intervals.
"""

from dataclasses import replace
from typing import List, Tuple

from repro.core.candidates import CandidateBuilder
from repro.core.context import TURLContext
from repro.core.model import TURLModel
from repro.core.pretrain import Pretrainer, PretrainStats

#: tables used for the ablation pre-training runs (kept small: each Figure 7
#: configuration trains a model from scratch).  The probe ranks against a
#: ~256-entity candidate set, so runs must be long enough for the signal to
#: clear the ~0.4 % chance floor by a wide margin.
ABLATION_TABLES = 400
ABLATION_EPOCHS = 20
EVAL_EVERY = 200
EVAL_TABLES = 30


def run_ablation_pretraining(context: TURLContext, *, use_visibility: bool = True,
                             mer_probability: float = None,
                             seed: int = 0) -> PretrainStats:
    """Pre-train a fresh model; return its stats with probe accuracies."""
    config = context.config
    if mer_probability is not None:
        config = replace(config, mer_probability=mer_probability)
    model = TURLModel(context.model.vocab_size, context.model.entity_vocab_size,
                      config, seed=seed)
    train_tables = context.splits.train.tables[:ABLATION_TABLES]
    instances = [context.linearizer.encode(t) for t in train_tables]
    eval_instances = [context.linearizer.encode(t)
                      for t in context.splits.validation.tables[:EVAL_TABLES]]
    builder = CandidateBuilder(context.splits.train, context.entity_vocab, config)
    pretrainer = Pretrainer(model, instances, builder, config, seed=seed,
                            use_visibility=use_visibility)
    return pretrainer.train(n_epochs=ABLATION_EPOCHS,
                            eval_instances=eval_instances,
                            eval_every=EVAL_EVERY,
                            max_eval_tables=EVAL_TABLES)


def format_curves(rows: List[Tuple[str, PretrainStats]]) -> str:
    lines = []
    all_steps = rows[0][1].eval_steps
    header = f"{'setting':28s}" + "".join(f"{s:>8d}" for s in all_steps)
    lines.append(header + "   (ACC at pre-training step)")
    for name, stats in rows:
        lines.append(f"{name:28s}" + "".join(f"{a:8.3f}" for a in stats.eval_accuracies))
    return "\n".join(lines)
