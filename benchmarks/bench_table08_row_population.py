"""Table 8 — row population MAP/Recall with 0 and 1 seed entities.

Recall is identical across methods (shared candidate generation); Table2Vec
is not applicable at 0 seeds (reported as "-", as in the paper).
"""


def test_table08_row_population(population_setup, report, benchmark):
    generator = population_setup["generator"]
    entitables = population_setup["entitables"]
    table2vec = population_setup["table2vec"]

    lines = [f"{'Method':22s}{'MAP@0':>10s}{'Recall@0':>10s}{'MAP@1':>10s}{'Recall@1':>10s}"]
    results = {}
    recalls = {}
    for n_seed in (0, 1):
        setup = population_setup["seeds"][n_seed]
        eval_instances = setup["eval"]
        recalls[n_seed] = generator.recall(eval_instances)
        results[("EntiTables", n_seed)] = entitables.evaluate(
            eval_instances, generator).primary_value
        t2v = table2vec.evaluate(eval_instances, generator)
        results[("Table2Vec", n_seed)] = None if t2v is None else t2v.primary_value
        if n_seed == 0:
            results[("TURL + fine-tuning", n_seed)] = benchmark.pedantic(
                lambda: setup["turl"].evaluate(
                    eval_instances, generator).primary_value,
                rounds=1, iterations=1)
        else:
            results[("TURL + fine-tuning", n_seed)] = setup["turl"].evaluate(
                eval_instances, generator).primary_value

    def fmt(value):
        return "       -  " if value is None else f"{100 * value:9.2f} "

    for method in ("EntiTables", "Table2Vec", "TURL + fine-tuning"):
        lines.append(
            f"{method:22s}{fmt(results[(method, 0)])}{100 * recalls[0]:9.2f} "
            f"{fmt(results[(method, 1)])}{100 * recalls[1]:9.2f} ")
    report("Table 8: row population", "\n".join(lines))

    # Paper shape: TURL best in both settings; Table2Vec inapplicable at 0
    # seeds and behind at 1 seed; shared recall across methods.
    assert results[("Table2Vec", 0)] is None
    for n_seed in (0, 1):
        turl = results[("TURL + fine-tuning", n_seed)]
        assert turl > results[("EntiTables", n_seed)] - 0.01
    assert results[("TURL + fine-tuning", 1)] > results[("Table2Vec", 1)]
