"""Table 9 — cell filling P@K: Exact / H2H / H2V vs TURL (no fine-tuning)."""

from repro.baselines.cell_filling import ExactRanker, H2HRanker, H2VRanker


def test_table09_cell_filling(bench_context, filling_setup, report, benchmark):
    instances = filling_setup["instances"]
    statistics = filling_setup["statistics"]
    candidates = filling_setup["candidates"]
    turl = filling_setup["turl"]

    recall, avg_size = candidates.recall(instances)
    recall_unfiltered, avg_unfiltered = candidates.recall(instances,
                                                          filter_related=False)

    def per_k_of(metrics):
        return {k: metrics.values[f"p@{k}"] for k in (1, 3, 5, 10)}

    rows = {}
    rows["Exact"] = per_k_of(ExactRanker().evaluate(instances, candidates))
    rows["H2H"] = per_k_of(H2HRanker(statistics).evaluate(instances, candidates))
    rows["H2V"] = per_k_of(H2VRanker(bench_context.splits.train).evaluate(
        instances, candidates))
    rows["TURL"] = benchmark.pedantic(
        lambda: per_k_of(turl.evaluate(instances, candidates)),
        rounds=1, iterations=1)

    lines = [
        f"candidate finding: recall {100 * recall:.2f}% "
        f"(avg {avg_size:.1f} candidates; unfiltered {100 * recall_unfiltered:.2f}% "
        f"/ {avg_unfiltered:.1f})",
        "",
        f"{'Method':10s}{'P@1':>8s}{'P@3':>8s}{'P@5':>8s}{'P@10':>8s}",
    ]
    for name, per_k in rows.items():
        lines.append(f"{name:10s}" + "".join(f"{100 * per_k[k]:8.2f}"
                                             for k in (1, 3, 5, 10)))
    report("Table 9: cell filling", "\n".join(lines))

    # Paper shape: exact match is a decent baseline; H2H/H2V roughly match or
    # slightly improve it; TURL is best at P@1 without any fine-tuning.
    assert rows["TURL"][1] >= rows["Exact"][1]
    assert rows["TURL"][1] >= rows["H2H"][1]
    assert rows["TURL"][1] >= rows["H2V"][1]
    for per_k in rows.values():
        assert per_k[10] >= per_k[1]
