"""Table 7 — relation extraction: TURL (+ablations) vs the BERT-style
text-only baseline."""

from repro.tasks.encoding import InputAblation
from repro.tasks.relation_extraction import TURLRelationExtractor


def test_table07_relation_extraction(bench_context, relation_setup, report, benchmark):
    ctx = bench_context
    dataset = relation_setup["dataset"]
    test = dataset.test

    rows = {}
    rows["BERT-based"] = relation_setup["bert"].evaluate(test, dataset)
    rows["TURL + fine-tuning"] = benchmark.pedantic(
        relation_setup["turl"].evaluate, args=(test, dataset),
        rounds=1, iterations=1)

    for name, ablation in {
        "TURL (only table metadata)": InputAblation.only_metadata(),
        "  w/o table metadata": InputAblation.without_metadata(),
        "  w/o learned embedding": InputAblation.without_entity_embedding(),
    }.items():
        extractor = TURLRelationExtractor(ctx.clone_model(), ctx.linearizer,
                                          len(dataset.relation_names),
                                          ablation=ablation)
        extractor.finetune(dataset, epochs=1, max_instances=400)
        rows[name] = extractor.evaluate(test, dataset)

    lines = [f"{'Method':32s}{'F1':>8s}{'P':>8s}{'R':>8s}"]
    for name, metrics in rows.items():
        m = metrics.as_percentages()
        lines.append(f"{name:32s}{m.f1:8.2f}{m.precision:8.2f}{m.recall:8.2f}")
    report("Table 7: relation extraction", "\n".join(lines))

    # Paper shape: both models do well (F1 > 0.9); TURL beats BERT-based,
    # including the like-for-like metadata-only comparison.
    assert rows["TURL + fine-tuning"].f1 > 0.9
    assert rows["BERT-based"].f1 > 0.7
    assert rows["TURL + fine-tuning"].f1 >= rows["BERT-based"].f1
    assert rows["TURL (only table metadata)"].f1 >= rows["BERT-based"].f1 - 0.05
