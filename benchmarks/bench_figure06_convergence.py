"""Figure 6 — relation extraction validation MAP vs fine-tuning steps:
TURL (pre-trained init) converges faster than the BERT-style baseline."""

import numpy as np


def _ascii_curve(steps, turl_values, bert_values, width=50):
    lines = [f"{'step':>6s}  {'TURL':>6s}  {'BERT':>6s}   curve (T=TURL, B=BERT)"]
    for step, turl, bert in zip(steps, turl_values, bert_values):
        t = int(turl * width)
        b = int(bert * width)
        bar = [" "] * (width + 1)
        bar[min(b, width)] = "B"
        bar[min(t, width)] = "T" if t != b else "*"
        lines.append(f"{step:6d}  {turl:6.3f}  {bert:6.3f}   |{''.join(bar)}|")
    return "\n".join(lines)


def test_figure06_convergence(relation_setup, report, benchmark):
    turl_history = relation_setup["turl_history"]
    bert_history = relation_setup["bert_history"]
    steps = turl_history["map_steps"]
    turl_map = turl_history["map_values"]
    bert_map = bert_history["map_values"]
    n = min(len(turl_map), len(bert_map))
    steps, turl_map, bert_map = steps[:n], turl_map[:n], bert_map[:n]
    assert n >= 3, "need at least three MAP measurements for a curve"

    benchmark.pedantic(relation_setup["turl"].validation_map,
                       args=(relation_setup["dataset"],),
                       kwargs={"max_instances": 30}, rounds=1, iterations=1)

    report("Figure 6: validation MAP during relation-extraction fine-tuning",
           _ascii_curve(steps, turl_map, bert_map))

    # Paper shape: TURL dominates early training (better initialization) and
    # its early-step MAP is already near its final value.
    early = slice(0, max(1, n // 2))
    assert np.mean(turl_map[early]) > np.mean(bert_map[early])
    assert turl_map[0] > bert_map[0]
