"""Extension — numerical attributes (paper future work #1).

Masked Value Recovery: predict a numeric cell's quantile bin from the row's
contextualized entity representations, against a majority-bin baseline.
"""

import numpy as np

from repro.ext.numeric import NumericBinner, TURLValuePredictor, build_numeric_instances


def test_ext_numeric_value_recovery(bench_context, report, benchmark):
    ctx = bench_context
    train = build_numeric_instances(ctx.splits.train)
    test = build_numeric_instances(ctx.splits.test)[:150]
    assert train and test

    binner = NumericBinner(n_bins=4).fit([i.value for i in train])
    predictor = TURLValuePredictor(ctx.clone_model(), ctx.linearizer, binner)
    predictor.finetune(train, epochs=2, max_instances=400)

    accuracy = benchmark.pedantic(predictor.accuracy, args=(test,),
                                  rounds=1, iterations=1)
    tolerant = predictor.within_one_bin(test)

    counts = np.bincount([binner.transform(i.value) for i in train],
                         minlength=binner.n_classes)
    majority = int(counts.argmax())
    majority_accuracy = float(np.mean(
        [binner.transform(i.value) == majority for i in test]))

    report("Extension: numeric-attribute value recovery", "\n".join([
        f"instances: {len(train)} train / {len(test)} test; {binner.n_classes} bins",
        f"{'majority-bin baseline':28s}{100 * majority_accuracy:8.2f}",
        f"{'TURL value predictor':28s}{100 * accuracy:8.2f}",
        f"{'TURL within-one-bin':28s}{100 * tolerant:8.2f}",
    ]))

    assert accuracy > majority_accuracy
    assert tolerant >= accuracy
