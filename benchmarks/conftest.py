"""Shared benchmark fixtures.

The full pipeline (synthetic world -> corpus -> vocabularies -> 25 epochs of
pre-training) is built once and cached on disk under ``.bench_cache/`` so
repeated benchmark runs skip the ~3 minutes of pre-training.  Delete the
cache directory to force a rebuild.

Every experiment writes its result table through the ``report`` fixture,
which both prints it (bypassing pytest capture so it lands in the terminal /
``bench_output.txt``) and appends it to ``benchmarks/results/``.
"""

import os
import sys

import numpy as np
import pytest

from repro.config import TURLConfig
from repro.core.candidates import CandidateBuilder
from repro.core.context import TURLContext, build_context
from repro.core.linearize import Linearizer
from repro.core.pretrain import load_checkpoint, save_checkpoint
from repro.data.corpus import CorpusSplits, TableCorpus
from repro.data.synthesis import SynthesisConfig
from repro.kb.generator import WorldConfig
from repro.kb.knowledge_base import KnowledgeBase

# ---------------------------------------------------------------------------
# Frozen benchmark configuration (calibrated; see DESIGN.md section 6).
# ---------------------------------------------------------------------------
BENCH_SEED = 0
WORLD = WorldConfig(seed=1).scaled(2.0)
SYNTHESIS = SynthesisConfig(seed=2, n_tables=900,
                            typo_probability=0.08, alias_probability=0.45)
MODEL = TURLConfig()
PRETRAIN_EPOCHS = 25

_CACHE_DIR = os.path.join(os.path.dirname(__file__), os.pardir, ".bench_cache")
_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def _cache_paths():
    base = os.path.abspath(_CACHE_DIR)
    return {
        "base": base,
        "kb": os.path.join(base, "kb.json"),
        "train": os.path.join(base, "train.jsonl"),
        "validation": os.path.join(base, "validation.jsonl"),
        "test": os.path.join(base, "test.jsonl"),
        "checkpoint": os.path.join(base, "checkpoint"),
        "stamp": os.path.join(base, "stamp.txt"),
    }


#: bump when generator/synthesizer code changes in ways that alter the corpus
#: without touching the config objects.
_STAMP_VERSION = 2


def _config_stamp() -> str:
    return repr((_STAMP_VERSION, WORLD, SYNTHESIS, MODEL, PRETRAIN_EPOCHS, BENCH_SEED))


def _load_cached_context():
    paths = _cache_paths()
    if not os.path.exists(paths["stamp"]):
        return None
    with open(paths["stamp"]) as handle:
        if handle.read() != _config_stamp():
            return None
    kb = KnowledgeBase.load(paths["kb"])
    splits = CorpusSplits(
        train=TableCorpus.load_jsonl(paths["train"]),
        validation=TableCorpus.load_jsonl(paths["validation"]),
        test=TableCorpus.load_jsonl(paths["test"]),
    )
    model, tokenizer, entity_vocab = load_checkpoint(paths["checkpoint"])
    linearizer = Linearizer(tokenizer, entity_vocab, model.config)
    builder = CandidateBuilder(splits.train, entity_vocab, model.config)
    return TURLContext(kb=kb, splits=splits, tokenizer=tokenizer,
                       entity_vocab=entity_vocab, config=model.config,
                       model=model, linearizer=linearizer,
                       candidate_builder=builder)


def _store_context(context: TURLContext) -> None:
    paths = _cache_paths()
    os.makedirs(paths["base"], exist_ok=True)
    context.kb.save(paths["kb"])
    context.splits.train.save_jsonl(paths["train"])
    context.splits.validation.save_jsonl(paths["validation"])
    context.splits.test.save_jsonl(paths["test"])
    save_checkpoint(paths["checkpoint"], context.model, context.tokenizer,
                    context.entity_vocab)
    with open(paths["stamp"], "w") as handle:
        handle.write(_config_stamp())


@pytest.fixture(scope="session")
def bench_context() -> TURLContext:
    """The pre-trained pipeline shared by all benchmarks (disk-cached)."""
    cached = _load_cached_context()
    if cached is not None:
        return cached
    context = build_context(WORLD, SYNTHESIS, MODEL,
                            pretrain_epochs=PRETRAIN_EPOCHS, seed=BENCH_SEED)
    _store_context(context)
    return context


@pytest.fixture(scope="session")
def report():
    """Print an experiment table to the real stdout and persist it."""
    os.makedirs(_RESULTS_DIR, exist_ok=True)

    def _report(name: str, body: str) -> None:
        text = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{body}\n"
        sys.__stdout__.write(text)
        sys.__stdout__.flush()
        slug = name.split()[0].lower() + "_" + name.split()[1].rstrip(":").lower()
        with open(os.path.join(_RESULTS_DIR, f"{slug}.txt"), "w") as handle:
            handle.write(text)

    return _report


@pytest.fixture
def bench_rng():
    return np.random.default_rng(BENCH_SEED)


# ---------------------------------------------------------------------------
# Task-level session fixtures shared between benchmark files
# (e.g. Tables 5 and 6 reuse the same fine-tuned annotators; Table 7 and
# Figure 6 reuse the same relation extractors and their MAP histories).
# ---------------------------------------------------------------------------

@pytest.fixture(scope="session")
def column_type_setup(bench_context):
    from repro.baselines.sherlock import SherlockModel
    from repro.tasks.column_type import TURLColumnTypeAnnotator, build_column_type_dataset
    from repro.tasks.encoding import InputAblation

    ctx = bench_context
    dataset = build_column_type_dataset(
        ctx.kb, ctx.splits.train, ctx.splits.validation, ctx.splits.test,
        min_type_instances=10)

    variants = {
        "full": InputAblation.full(),
        "only entity mention": InputAblation.only_mention(),
        "w/o table metadata": InputAblation.without_metadata(),
        "w/o learned embedding": InputAblation.without_entity_embedding(),
        "only table metadata": InputAblation.only_metadata(),
        "only learned embedding": InputAblation.only_entity_embedding(),
    }
    annotators = {}
    for name, ablation in variants.items():
        annotator = TURLColumnTypeAnnotator(
            ctx.clone_model(), ctx.linearizer, len(dataset.type_names),
            ablation=ablation)
        annotator.finetune(dataset, epochs=3, max_instances=400)
        annotators[name] = annotator

    sherlock = SherlockModel(len(dataset.type_names))
    sherlock.fit(dataset, epochs=30, validation_patience=5)
    return {"dataset": dataset, "annotators": annotators, "sherlock": sherlock}


@pytest.fixture(scope="session")
def relation_setup(bench_context):
    from repro.baselines.bert_re import BertStyleRelationExtractor
    from repro.tasks.relation_extraction import (
        TURLRelationExtractor,
        build_relation_dataset,
    )

    ctx = bench_context
    dataset = build_relation_dataset(
        ctx.kb, ctx.splits.train, ctx.splits.validation, ctx.splits.test,
        min_relation_instances=10)
    turl = TURLRelationExtractor(ctx.clone_model(), ctx.linearizer,
                                 len(dataset.relation_names))
    turl_history = turl.finetune(dataset, epochs=1, max_instances=400,
                                 map_every=25, map_instances=30)
    bert = BertStyleRelationExtractor(ctx.tokenizer, len(dataset.relation_names),
                                      dim=ctx.config.dim,
                                      num_layers=ctx.config.num_layers,
                                      num_heads=ctx.config.num_heads,
                                      intermediate_dim=ctx.config.intermediate_dim)
    bert_history = bert.finetune(dataset, epochs=1, max_instances=400,
                                 map_every=25, map_instances=30)
    return {"dataset": dataset, "turl": turl, "bert": bert,
            "turl_history": turl_history, "bert_history": bert_history}


@pytest.fixture(scope="session")
def linking_setup(bench_context):
    from repro.kb.lookup import LookupService
    from repro.kb.schema import all_types
    from repro.tasks.entity_linking import TURLEntityLinker, build_linking_dataset

    ctx = bench_context
    lookup = LookupService(ctx.kb)
    test_instances = build_linking_dataset(ctx.splits.test, lookup,
                                           max_instances=400, seed=BENCH_SEED)
    train_instances = build_linking_dataset(ctx.splits.train, lookup,
                                            require_truth=True,
                                            max_instances=600, seed=BENCH_SEED)

    linkers = {}
    for name, kwargs in {
        "full": {},
        "w/o entity description": {"use_description": False},
        "w/o entity type": {"use_types": False},
    }.items():
        linker = TURLEntityLinker(ctx.clone_model(), ctx.linearizer, ctx.kb,
                                  all_types(), **kwargs)
        linker.finetune(train_instances, epochs=5, lr=5e-4)
        linkers[name] = linker
    return {"lookup": lookup, "test": test_instances, "train": train_instances,
            "linkers": linkers}


@pytest.fixture(scope="session")
def population_setup(bench_context):
    from repro.baselines.entitables import EntiTablesRowPopulator
    from repro.baselines.table2vec import Table2VecRowPopulator, train_entity_embeddings
    from repro.tasks.row_population import (
        PopulationCandidateGenerator,
        TURLRowPopulator,
        build_population_instances,
    )

    ctx = bench_context
    generator = PopulationCandidateGenerator(ctx.splits.train, k_tables=30)
    entitables = EntiTablesRowPopulator(ctx.splits.train)
    table2vec = Table2VecRowPopulator(train_entity_embeddings(ctx.splits.train))
    setups = {}
    for n_seed in (0, 1):
        eval_instances = build_population_instances(ctx.splits.test, n_seed=n_seed,
                                                    min_subject_entities=5)
        train_instances = build_population_instances(ctx.splits.train, n_seed=n_seed,
                                                     min_subject_entities=3)
        populator = TURLRowPopulator(ctx.clone_model(), ctx.linearizer)
        populator.seed_weight.data[:] = 3.0
        populator.finetune(train_instances, generator, epochs=12)
        setups[n_seed] = {"eval": eval_instances, "turl": populator}
    return {"generator": generator, "entitables": entitables,
            "table2vec": table2vec, "seeds": setups}


@pytest.fixture(scope="session")
def filling_setup(bench_context):
    from repro.tasks.cell_filling import (
        CellFillingCandidates,
        HeaderStatistics,
        TURLCellFiller,
        build_filling_instances,
    )

    ctx = bench_context
    instances = build_filling_instances(ctx.splits.test)[:400]
    statistics = HeaderStatistics(ctx.splits.train)
    candidates = CellFillingCandidates(ctx.splits.train, statistics)
    filler = TURLCellFiller(ctx.model, ctx.linearizer)
    return {"instances": instances, "statistics": statistics,
            "candidates": candidates, "turl": filler}


@pytest.fixture(scope="session")
def schema_setup(bench_context):
    from repro.baselines.entitables import KNNSchemaAugmenter
    from repro.tasks.schema_augmentation import (
        TURLSchemaAugmenter,
        build_header_vocabulary,
        build_schema_instances,
    )

    ctx = bench_context
    vocabulary = build_header_vocabulary(ctx.splits.train, min_tables=3)
    knn = KNNSchemaAugmenter(ctx.splits.train)
    setups = {}
    for n_seed in (0, 1):
        eval_instances = build_schema_instances(ctx.splits.test, vocabulary,
                                                n_seed=n_seed)
        train_instances = build_schema_instances(ctx.splits.train, vocabulary,
                                                 n_seed=n_seed)
        augmenter = TURLSchemaAugmenter(ctx.clone_model(), ctx.linearizer,
                                        vocabulary)
        augmenter.finetune(train_instances, epochs=5)
        setups[n_seed] = {"eval": eval_instances, "turl": augmenter}
    return {"vocabulary": vocabulary, "knn": knn, "seeds": setups}
