"""Figure 7a — ablation: effect of the visibility matrix on the
object-entity-prediction probe during pre-training."""

from _ablation import format_curves, run_ablation_pretraining


def test_figure07a_visibility_matrix(bench_context, report, benchmark):
    with_visibility = benchmark.pedantic(
        run_ablation_pretraining, args=(bench_context,),
        kwargs={"use_visibility": True}, rounds=1, iterations=1)
    without_visibility = run_ablation_pretraining(bench_context,
                                                  use_visibility=False)

    report("Figure 7a: visibility-matrix ablation",
           format_curves([("with visibility matrix", with_visibility),
                          ("w/o visibility matrix", without_visibility)]))

    # Paper shape: the visibility matrix strictly helps — final probe
    # accuracy is higher with the mask than without.
    assert with_visibility.final_accuracy > without_visibility.final_accuracy
    # And it helps through most of training, not just at the end.
    wins = sum(1 for a, b in zip(with_visibility.eval_accuracies,
                                 without_visibility.eval_accuracies) if a >= b)
    assert wins >= len(with_visibility.eval_accuracies) / 2
