"""Table 4 — entity linking: TURL (+ablations) vs T2K / Hybrid / Lookup,
with the Lookup (Oracle) upper bound."""

from repro.baselines.hybrid import HybridLinker, train_corpus_entity_embeddings
from repro.baselines.lookup_linker import LookupLinker
from repro.baselines.t2k import T2KLinker
from repro.tasks.entity_linking import oracle_metrics


def test_table04_entity_linking(bench_context, linking_setup, report, benchmark):
    ctx = bench_context
    test_instances = linking_setup["test"]
    linkers = linking_setup["linkers"]

    rows = {}
    rows["T2K"] = T2KLinker(ctx.kb).evaluate(test_instances)
    rows["Hybrid II"] = HybridLinker(
        train_corpus_entity_embeddings(ctx.splits.train)).evaluate(test_instances)
    rows["Lookup"] = LookupLinker().evaluate(test_instances)
    rows["TURL + fine-tuning"] = benchmark.pedantic(
        linkers["full"].evaluate, args=(test_instances,), rounds=1, iterations=1)
    rows["  w/o entity description"] = linkers["w/o entity description"].evaluate(test_instances)
    rows["  w/o entity type"] = linkers["w/o entity type"].evaluate(test_instances)
    rows["Lookup (Oracle)"] = oracle_metrics(test_instances)

    lines = [f"{'Method':28s}{'F1':>8s}{'P':>8s}{'R':>8s}"]
    for name, metrics in rows.items():
        m = metrics.as_percentages()
        lines.append(f"{name:28s}{m.f1:8.1f}{m.precision:8.1f}{m.recall:8.1f}")
    report("Table 4: entity linking", "\n".join(lines))

    # Paper shape: TURL best F1 among non-oracle methods; oracle above all;
    # removing the description hurts more than removing types.
    turl = rows["TURL + fine-tuning"].f1
    assert turl > rows["Lookup"].f1
    assert turl > rows["T2K"].f1
    assert turl > rows["Hybrid II"].f1
    assert rows["Lookup (Oracle)"].f1 >= turl
    assert rows["  w/o entity description"].f1 <= rows["  w/o entity type"].f1 + 0.03
