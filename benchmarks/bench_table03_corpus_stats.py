"""Table 3 — pre-training corpus statistics (rows / entity columns / entities
per table, by split)."""

from repro.data.statistics import corpus_statistics, format_statistics, splits_statistics


def test_table03_corpus_statistics(bench_context, report, benchmark):
    splits = bench_context.splits
    stats = benchmark.pedantic(splits_statistics, args=(splits,),
                               rounds=1, iterations=1)
    report("Table 3: pre-training corpus statistics", format_statistics(stats))

    # Shape checks mirroring the paper: moderate-size tables (median around
    # 8-12 rows, 2-4 entity columns), held-out splits at least as rich as
    # train (they are filtered for quality).
    assert 4 <= stats["train"]["n_row"]["median"] <= 16
    assert 2 <= stats["train"]["n_ent_columns"]["median"] <= 4
    for split in ("dev", "test"):
        assert stats[split]["n_ent_columns"]["min"] >= 3
        assert stats[split]["n_ent"]["median"] >= stats["train"]["n_ent"]["median"]
