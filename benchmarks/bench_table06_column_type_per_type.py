"""Table 6 — per-type column type annotation F1 for 5 representative types
(coarse types are easy; fine-grained types need table context)."""

TYPES = ["person", "pro_athlete", "actor", "location", "citytown"]


def test_table06_per_type_f1(column_type_setup, report, benchmark):
    dataset = column_type_setup["dataset"]
    annotators = column_type_setup["annotators"]
    sherlock = column_type_setup["sherlock"]
    validation = dataset.validation  # paper reports Table 6 on validation

    types = [t for t in TYPES if t in dataset.type_names]
    rows = {}
    rows["Sherlock"] = sherlock.per_type_f1(validation, dataset, types)
    rows["TURL + fine-tuning"] = benchmark.pedantic(
        annotators["full"].per_type_f1, args=(validation, dataset, types),
        rounds=1, iterations=1)
    rows["  only entity mention"] = annotators["only entity mention"].per_type_f1(
        validation, dataset, types)
    rows["  w/o table metadata"] = annotators["w/o table metadata"].per_type_f1(
        validation, dataset, types)
    rows["  only table metadata"] = annotators["only table metadata"].per_type_f1(
        validation, dataset, types)

    header = f"{'Method':26s}" + "".join(f"{t:>14s}" for t in types)
    lines = [header]
    for name, report_row in rows.items():
        lines.append(f"{name:26s}" + "".join(
            f"{100 * report_row[t]:14.2f}" for t in types))
    report("Table 6: per-type column annotation F1 (validation)", "\n".join(lines))

    turl = rows["TURL + fine-tuning"]
    # Paper shape: TURL >= Sherlock on every reported type, and coarse types
    # (person) are at least as easy as their fine-grained subtypes for the
    # mention-only variant.
    for type_name in types:
        assert turl[type_name] >= rows["Sherlock"][type_name] - 0.02, type_name
    mention_only = rows["  only entity mention"]
    if "person" in types and "actor" in types:
        assert mention_only["person"] >= mention_only["actor"] - 0.02
