"""Table 10 — schema augmentation MAP with 0 and 1 seed headers:
tf-idf kNN vs TURL."""


def test_table10_schema_augmentation(schema_setup, report, benchmark):
    vocabulary = schema_setup["vocabulary"]
    knn = schema_setup["knn"]

    results = {}
    for n_seed in (0, 1):
        setup = schema_setup["seeds"][n_seed]
        eval_instances = setup["eval"]
        results[("kNN", n_seed)] = knn.evaluate(
            eval_instances, vocabulary).primary_value
        if n_seed == 0:
            results[("TURL + fine-tuning", n_seed)] = benchmark.pedantic(
                lambda: setup["turl"].evaluate(eval_instances).primary_value,
                rounds=1, iterations=1)
        else:
            results[("TURL + fine-tuning", n_seed)] = setup["turl"].evaluate(
                eval_instances).primary_value

    lines = [f"{'Method':22s}{'MAP@0 seeds':>14s}{'MAP@1 seed':>14s}"]
    for method in ("kNN", "TURL + fine-tuning"):
        lines.append(f"{method:22s}{100 * results[(method, 0)]:14.2f}"
                     f"{100 * results[(method, 1)]:14.2f}")
    report("Table 10: schema augmentation", "\n".join(lines))

    # Paper shape: both methods strong; TURL competitive at 0 seeds while the
    # kNN baseline catches up (and tends to win) once a seed header reveals
    # the query table's schema.
    for method in ("kNN", "TURL + fine-tuning"):
        assert results[(method, 0)] > 0.5
        assert results[(method, 1)] > 0.5
    assert results[("TURL + fine-tuning", 0)] > results[("kNN", 0)] - 0.08
    knn_gain = results[("kNN", 1)] - results[("kNN", 0)]
    turl_gain = results[("TURL + fine-tuning", 1)] - results[("TURL + fine-tuning", 0)]
    assert knn_gain >= turl_gain - 0.08
