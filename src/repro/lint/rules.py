"""Repo-specific lint rules as a single AST walk.

Each rule has an ID, a one-line fix hint, and a scope predicate over the
dotted module name (computed from the file path by the engine).  Rules are
deliberately convention-level: they cannot prove correctness, but each one
guards an invariant that a correctness property of the repo rests on — see
the module docstring of :mod:`repro.lint` for the table.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

#: ``numpy.random`` members that construct independent generators (allowed)
#: as opposed to hitting the hidden global ``RandomState`` (forbidden).
ALLOWED_NP_RANDOM = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
}

#: Wall-clock reading callables (dotted names after import resolution).
CLOCK_CALLS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

#: Base-class names that mark a class as "module-like" for EVL001 — it holds
#: trainable state whose train/eval mode matters.
MODULE_LIKE_BASES = {"Module", "Pretrainer"}

#: Method names that are public inference entry points.
EVAL_ENTRY_NAMES = ("predict", "evaluate", "rank")

#: Method names kept only as deprecation shims for the uniform
#: ``evaluate(...) -> TaskMetrics`` API (API001).
DEPRECATED_SHIM_CALLS = {"evaluate_map", "evaluate_precision_at"}

#: Module-level helpers whose first string argument names a span (OBS002).
OBS_NAME_FUNCTIONS = {"trace", "start_trace"}
#: Method names whose first string argument names a span/metric (OBS002):
#: ``tracer.span`` and the four registry instrument factories.
OBS_NAME_METHODS = {"span", "counter", "gauge", "histogram", "timer"}
#: Full-name convention: lowercase ``[a-z0-9_]`` segments joined by "/" or
#: "." — the layout the tracer tree report and Prometheus exporter assume.
OBS_NAME_PATTERN = re.compile(r"^[a-z0-9_]+(?:[./][a-z0-9_]+)*$")
#: What the constant fragments of an f-string name may contain.
OBS_FRAGMENT_PATTERN = re.compile(r"^[a-z0-9_./]*$")


def _is_eval_entry(name: str) -> bool:
    return any(name == entry or name.startswith(entry + "_")
               for entry in EVAL_ENTRY_NAMES)


def _in_repro(module: str) -> bool:
    return module == "repro" or module.startswith("repro.")


def _outside_obs(module: str) -> bool:
    return _in_repro(module) and not module.startswith("repro.obs")


def _outside_nn(module: str) -> bool:
    return _in_repro(module) and not module.startswith("repro.nn")


def _outside_nn_and_checkpoint(module: str) -> bool:
    return _outside_nn(module) and module != "repro.train.checkpoint"


def _everywhere(module: str) -> bool:
    return True


@dataclass(frozen=True)
class Rule:
    """One lint rule: identifier, summary, fix hint and module scope."""

    id: str
    name: str
    summary: str
    hint: str
    applies_to: Callable[[str], bool]


RULES: Dict[str, Rule] = {rule.id: rule for rule in [
    Rule("RNG001", "global-rng",
         "global RNG call — randomness must flow in as a Generator",
         "accept a np.random.Generator parameter (or default_rng(seed)) "
         "instead of the process-global RNG",
         _in_repro),
    Rule("CLK001", "wall-clock",
         "wall-clock read outside repro.obs",
         "route timing through repro.obs (perf_counter / wall_time) so "
         "seeded compute stays clock-free",
         _outside_obs),
    Rule("TEN001", "raw-tensor-data",
         "raw Tensor.data subscript/assignment outside repro.nn",
         "use autograd ops (take_rows, __getitem__, detach()) or read via "
         ".numpy() under no_grad()",
         _outside_nn_and_checkpoint),
    Rule("EVL001", "eval-mode-missing",
         "inference entry point without eval_mode/no_grad",
         "wrap the body in `with eval_mode(self), no_grad():` (or delegate "
         "to a guarded sibling method)",
         _outside_nn),
    Rule("EVL002", "bare-eval-call",
         "bare .eval() call leaves the module in eval mode",
         "use the mode-restoring `with eval_mode(module):` context manager",
         _outside_nn),
    Rule("DEF001", "mutable-default",
         "mutable default argument is shared across calls",
         "default to None and construct the list/dict/set inside the body",
         _everywhere),
    Rule("EXC001", "bare-except",
         "bare `except:` swallows SystemExit/KeyboardInterrupt",
         "catch a concrete exception type (or `except Exception:`)",
         _everywhere),
    Rule("API001", "deprecated-shim-call",
         "call to a deprecated API shim",
         "use the uniform `evaluate(...) -> TaskMetrics` entry point (or "
         "`finetune(lr=...)`) instead of the deprecation shim",
         _everywhere),
    Rule("API002", "list-typed-corpus-param",
         "function parameter typed List[Table]/Sequence[Table] pins the "
         "corpus in memory",
         "accept a repro.data.Dataset (or Iterable[Table]) so memory-mapped "
         "sharded corpora stream through without materializing",
         _in_repro),
    Rule("OBS002", "metric-name-style",
         "span/metric name is not a lowercase slash/dot path",
         "name spans and metrics as lowercase [a-z0-9_] segments joined by "
         "'/' or '.' (`area/verb`, `serve.latency.<task>`)",
         _in_repro),
    Rule("LNT000", "suppression-without-reason",
         "lint suppression without a written reason",
         "write `# lint: disable=RULE(reason)` — the reason is mandatory",
         _everywhere),
    Rule("LNT001", "parse-error",
         "file does not parse",
         "fix the syntax error",
         _everywhere),
]}


@dataclass(frozen=True)
class Violation:
    """One rule violation at a source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    @property
    def hint(self) -> str:
        return RULES[self.rule_id].hint

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


def _dotted(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve an attribute chain to a dotted name through import aliases."""
    if isinstance(node, ast.Name):
        return aliases.get(node.id, node.id)
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value, aliases)
        return f"{base}.{node.attr}" if base is not None else None
    return None


class _RuleVisitor(ast.NodeVisitor):
    """Single-pass visitor applying every in-scope rule to one parsed file."""

    def __init__(self, path: str, module: str):
        self.path = path
        self.module = module
        self.violations: List[Violation] = []
        self.aliases: Dict[str, str] = {}
        self.imports_stdlib_random = False
        self._active = {rule_id: rule.applies_to(module)
                        for rule_id, rule in RULES.items()}

    # -- helpers -----------------------------------------------------------
    def _flag(self, rule_id: str, node: ast.AST, message: str) -> None:
        if self._active.get(rule_id):
            self.violations.append(Violation(
                rule_id, self.path, getattr(node, "lineno", 0),
                getattr(node, "col_offset", 0), message))

    # -- imports (alias resolution) ---------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            self.aliases[local] = alias.name if alias.asname else alias.name.split(".")[0]
            if alias.name == "random" or alias.name.startswith("random."):
                self.imports_stdlib_random = True
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                local = alias.asname or alias.name
                self.aliases[local] = f"{node.module}.{alias.name}"
            if node.module == "random" or node.module.startswith("random."):
                self.imports_stdlib_random = True
        self.generic_visit(node)

    # -- RNG001 / CLK001 / EVL002 on calls --------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func, self.aliases)
        if dotted:
            self._check_rng(node, dotted)
            if dotted in CLOCK_CALLS:
                self._flag("CLK001", node,
                           f"wall-clock read `{dotted}()` outside repro.obs")
        if (isinstance(node.func, ast.Attribute) and node.func.attr == "eval"
                and not node.args and not node.keywords):
            target = _dotted(node.func, self.aliases) or ".eval"
            self._flag("EVL002", node,
                       f"bare `{target}()` call does not restore the caller's "
                       "train/eval mode")
        if isinstance(node.func, ast.Attribute):
            if node.func.attr in DEPRECATED_SHIM_CALLS:
                self._flag("API001", node,
                           f"`.{node.func.attr}()` is a deprecation shim — "
                           "call `evaluate(...)` and read TaskMetrics.values")
            elif (node.func.attr == "finetune"
                  and any(kw.arg == "learning_rate" for kw in node.keywords)):
                self._flag("API001", node,
                           "`finetune(learning_rate=...)` is deprecated — "
                           "pass `lr=...`")
        self._check_obs_name(node, dotted)
        self.generic_visit(node)

    # -- OBS002 ------------------------------------------------------------
    def _check_obs_name(self, node: ast.Call, dotted: Optional[str]) -> None:
        if not self._active.get("OBS002") or not node.args:
            return
        if isinstance(node.func, ast.Attribute):
            callee = node.func.attr
            named = callee in OBS_NAME_METHODS or callee in OBS_NAME_FUNCTIONS
        else:
            callee = (dotted or "").split(".")[-1]
            named = callee in OBS_NAME_FUNCTIONS
        if not named:
            return
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            if not OBS_NAME_PATTERN.match(first.value):
                self._flag("OBS002", node,
                           f"span/metric name {first.value!r} is not a "
                           "lowercase slash/dot path")
        elif isinstance(first, ast.JoinedStr):
            for piece in first.values:
                if (isinstance(piece, ast.Constant)
                        and isinstance(piece.value, str)
                        and not OBS_FRAGMENT_PATTERN.match(piece.value)):
                    self._flag("OBS002", node,
                               f"span/metric name fragment {piece.value!r} "
                               "is not lowercase slash/dot")
                    break

    def _check_rng(self, node: ast.Call, dotted: str) -> None:
        if dotted.startswith("numpy.random."):
            member = dotted.split(".")[2]
            if member not in ALLOWED_NP_RANDOM:
                self._flag("RNG001", node,
                           f"global NumPy RNG call `{dotted}` mutates hidden "
                           "process state")
        elif self.imports_stdlib_random and (
                dotted == "random" or dotted.startswith("random.")):
            self._flag("RNG001", node,
                       f"stdlib RNG call `{dotted}` — use a seeded "
                       "numpy.random.Generator")

    # -- TEN001 ------------------------------------------------------------
    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.value, ast.Attribute) and node.value.attr == "data":
            owner = _dotted(node.value, self.aliases) or "<expr>.data"
            self._flag("TEN001", node,
                       f"raw subscript of `{owner}[...]` bypasses the "
                       "autograd tape")
        self.generic_visit(node)

    def _check_data_target(self, target: ast.AST) -> None:
        if isinstance(target, ast.Attribute) and target.attr == "data":
            owner = _dotted(target, self.aliases) or "<expr>.data"
            self._flag("TEN001", target,
                       f"assignment to `{owner}` rebinds tensor storage "
                       "behind the tape's back")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_data_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_data_target(node.target)
        self.generic_visit(node)

    # -- DEF001 ------------------------------------------------------------
    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set,
                                           ast.ListComp, ast.DictComp,
                                           ast.SetComp))
            if (isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in ("list", "dict", "set")):
                mutable = True
            if mutable:
                self._flag("DEF001", default,
                           f"mutable default argument in `{node.name}` is "
                           "evaluated once and shared across calls")

    # -- API002 ------------------------------------------------------------
    #: Container heads that force an eagerly materialized corpus parameter.
    EAGER_CONTAINER_HEADS = {"List", "Sequence", "list"}

    def _check_corpus_params(self, node) -> None:
        if not self._active.get("API002"):
            return
        args = node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            annotation = arg.annotation
            if not isinstance(annotation, ast.Subscript):
                continue
            head = annotation.value
            head_name = (head.attr if isinstance(head, ast.Attribute)
                         else head.id if isinstance(head, ast.Name) else "")
            if head_name not in self.EAGER_CONTAINER_HEADS:
                continue
            inner = annotation.slice
            inner_name = (inner.attr if isinstance(inner, ast.Attribute)
                          else inner.id if isinstance(inner, ast.Name) else "")
            if inner_name == "Table":
                self._flag("API002", arg,
                           f"parameter `{arg.arg}: {head_name}[Table]` of "
                           f"`{node.name}` forces an in-memory corpus — "
                           "accept Dataset or Iterable[Table]")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._check_corpus_params(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self._check_corpus_params(node)
        self.generic_visit(node)

    # -- EXC001 ------------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._flag("EXC001", node, "bare `except:` catches everything, "
                       "including KeyboardInterrupt")
        self.generic_visit(node)

    # -- EVL001 (class-level analysis) -------------------------------------
    def visit_Module(self, node: ast.Module) -> None:
        # Imports may appear below their first use site in source order, so
        # resolve every alias before rule checks run.
        for child in ast.walk(node):
            if isinstance(child, ast.Import):
                self.visit_Import(child)
            elif isinstance(child, ast.ImportFrom):
                self.visit_ImportFrom(child)
        # A class is module-like when a base resolves to MODULE_LIKE_BASES,
        # directly or through another class in the same file.
        local_bases: Dict[str, List[str]] = {}
        for child in node.body:
            if isinstance(child, ast.ClassDef):
                local_bases[child.name] = [
                    base.attr if isinstance(base, ast.Attribute) else
                    base.id if isinstance(base, ast.Name) else ""
                    for base in child.bases]
        module_like = set()
        changed = True
        while changed:
            changed = False
            for name, bases in local_bases.items():
                if name in module_like:
                    continue
                if any(base in MODULE_LIKE_BASES or base in module_like
                       for base in bases):
                    module_like.add(name)
                    changed = True
        for child in node.body:
            if isinstance(child, ast.ClassDef) and child.name in module_like:
                self._check_eval_entries(child)
        self.generic_visit(node)

    def _check_eval_entries(self, class_node: ast.ClassDef) -> None:
        if not self._active.get("EVL001"):
            return
        methods = [child for child in class_node.body
                   if isinstance(child, ast.FunctionDef)]
        guarded = {method.name for method in methods
                   if self._uses_eval_guard(method)}
        # Delegation is transitive: a shim that calls `self.evaluate(...)`,
        # which itself calls the guarded `self.rank(...)`, is guarded too.
        changed = True
        while changed:
            changed = False
            for method in methods:
                if (method.name not in guarded
                        and self._delegates_to(method, guarded)):
                    guarded.add(method.name)
                    changed = True
        for method in methods:
            if not _is_eval_entry(method.name) or method.name.startswith("_"):
                continue
            if method.name in guarded:
                continue
            if self._delegates_to(method, guarded):
                continue
            self._flag("EVL001", method,
                       f"`{class_node.name}.{method.name}` runs inference "
                       "without eval_mode/no_grad")

    @staticmethod
    def _uses_eval_guard(method: ast.FunctionDef) -> bool:
        for node in ast.walk(method):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    call = item.context_expr
                    if isinstance(call, ast.Call):
                        func = call.func
                        name = (func.attr if isinstance(func, ast.Attribute)
                                else func.id if isinstance(func, ast.Name)
                                else "")
                        if name in ("eval_mode", "no_grad"):
                            return True
        return False

    @staticmethod
    def _delegates_to(method: ast.FunctionDef, guarded: set) -> bool:
        for node in ast.walk(method):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                    and node.func.attr in guarded):
                return True
        return False


def check_file(tree: ast.AST, path: str, module: str) -> List[Violation]:
    """Run every in-scope rule over one parsed file."""
    visitor = _RuleVisitor(path, module)
    visitor.visit(tree)
    return sorted(visitor.violations, key=lambda v: (v.line, v.col, v.rule_id))
