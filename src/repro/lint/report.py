"""Render a :class:`~repro.lint.engine.LintResult` as text or JSON.

The text report is the CI artifact: one line per violation with its fix
hint, a whitelist section listing every honored suppression *with its
reason*, and a one-line summary whose suppression count is what the CI lint
job prints.
"""

from __future__ import annotations

import json

from repro.lint.engine import LintResult


def format_text(result: LintResult) -> str:
    lines = []
    for violation in result.violations:
        lines.append(violation.format())
        lines.append(f"    hint: {violation.hint}")
    if result.suppressed:
        lines.append("whitelisted suppressions:")
        for entry in result.suppressed:
            v = entry.violation
            lines.append(f"  {v.path}:{v.line}: {v.rule_id} — {entry.reason}")
    lines.append(
        f"{result.files_checked} files checked: "
        f"{len(result.violations)} violations, "
        f"{len(result.suppressed)} suppressions whitelisted")
    return "\n".join(lines)


def format_json(result: LintResult) -> str:
    payload = {
        "files_checked": result.files_checked,
        "violations": [
            {"rule": v.rule_id, "path": v.path, "line": v.line,
             "col": v.col, "message": v.message, "hint": v.hint}
            for v in result.violations
        ],
        "suppressed": [
            {"rule": e.violation.rule_id, "path": e.violation.path,
             "line": e.violation.line, "reason": e.reason}
            for e in result.suppressed
        ],
        "ok": result.ok,
    }
    return json.dumps(payload, indent=2)
