"""Lint driver: file discovery, suppression handling, result aggregation.

The engine parses each file once with :mod:`ast`, applies the rules from
:mod:`repro.lint.rules` scoped by the file's dotted module name, then filters
violations through inline suppressions of the form::

    risky_line()  # lint: disable=TEN001(read-only probe under no_grad)

A suppression applies to its own line, or — when written on a comment-only
line — to the next line.  The reason in parentheses is mandatory; a
suppression without one is itself reported (rule LNT000).  Suppressed
violations are kept and counted so the report can surface the whitelist.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from pathlib import PurePath
from typing import Dict, List, Sequence, Tuple

from repro.lint.rules import Violation, check_file

SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*disable=([A-Za-z]+\d+)\s*(?:\(([^)]*)\))?")


@dataclass(frozen=True)
class SuppressedViolation:
    """A violation silenced by an inline whitelist entry."""

    violation: Violation
    reason: str


@dataclass
class LintResult:
    """Aggregate outcome of one lint run."""

    files_checked: int = 0
    violations: List[Violation] = field(default_factory=list)
    suppressed: List[SuppressedViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def extend(self, other: "LintResult") -> None:
        self.files_checked += other.files_checked
        self.violations.extend(other.violations)
        self.suppressed.extend(other.suppressed)


def module_name(path: str) -> str:
    """Dotted module name for ``path`` (anchored at ``repro`` or ``tests``).

    Falls back to the stem for files outside both trees; ``__init__.py``
    maps to its package.
    """
    parts = list(PurePath(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    for anchor in ("repro", "tests"):
        if anchor in parts:
            parts = parts[parts.index(anchor):]
            break
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _scan_suppressions(source: str) -> Tuple[Dict[int, List[Tuple[str, str]]],
                                             List[Tuple[int, str]]]:
    """Map line numbers to (rule_id, reason) suppressions.

    Returns ``(by_line, missing_reason)`` where ``missing_reason`` lists
    suppressions written without a parenthesised reason.
    """
    by_line: Dict[int, List[Tuple[str, str]]] = {}
    missing: List[Tuple[int, str]] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        for match in SUPPRESS_RE.finditer(line):
            rule_id, reason = match.group(1), (match.group(2) or "").strip()
            if not reason:
                missing.append((lineno, rule_id))
                continue
            target = lineno + 1 if line.lstrip().startswith("#") else lineno
            by_line.setdefault(target, []).append((rule_id, reason))
    return by_line, missing


def lint_source(source: str, path: str) -> LintResult:
    """Lint one file's source text (the unit the rule tests exercise)."""
    module = module_name(path)
    result = LintResult(files_checked=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        result.violations.append(Violation(
            "LNT001", path, error.lineno or 0, error.offset or 0,
            f"syntax error: {error.msg}"))
        return result

    suppressions, missing = _scan_suppressions(source)
    for lineno, rule_id in missing:
        result.violations.append(Violation(
            "LNT000", path, lineno, 0,
            f"suppression of {rule_id} has no reason — write "
            f"`# lint: disable={rule_id}(reason)`"))

    for violation in check_file(tree, path, module):
        reasons = [reason for rule_id, reason
                   in suppressions.get(violation.line, [])
                   if rule_id == violation.rule_id]
        if reasons:
            result.suppressed.append(
                SuppressedViolation(violation, reasons[0]))
        else:
            result.violations.append(violation)
    result.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return result


def discover(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(d for d in dirs
                                 if not d.startswith(".")
                                 and d != "__pycache__")
                files.extend(os.path.join(root, name)
                             for name in sorted(names)
                             if name.endswith(".py"))
        elif path.endswith(".py"):
            files.append(path)
    return files


def lint_paths(paths: Sequence[str]) -> LintResult:
    """Lint every Python file under ``paths``."""
    result = LintResult()
    for file_path in discover(paths):
        with open(file_path, "r", encoding="utf-8") as handle:
            source = handle.read()
        result.extend(lint_source(source, file_path))
    return result
