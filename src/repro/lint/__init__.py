"""Dependency-free static analysis for the repro codebase.

``repro.lint`` enforces, at the AST level, the conventions the training
engine's correctness guarantees rest on (see ``README.md`` "Static analysis &
sanitizers" for the rule table):

========  ==================================================================
Rule      Invariant
========  ==================================================================
RNG001    no global ``np.random.*`` / stdlib ``random`` — RNG flows in as a
          ``numpy.random.Generator``
CLK001    wall-clock reads live only in ``repro.obs``
TEN001    no raw ``Tensor.data`` subscripting / assignment outside
          ``repro.nn`` (and ``repro.train.checkpoint``)
EVL001    public ``predict`` / ``evaluate*`` / ``rank*`` on module-like
          classes must enter ``eval_mode`` / ``no_grad``
EVL002    no bare ``.eval()`` calls — use the mode-restoring ``eval_mode``
DEF001    no mutable default arguments
EXC001    no bare ``except:``
API001    no in-repo calls to deprecated API shims (``evaluate_map`` /
          ``evaluate_precision_at`` / ``finetune(learning_rate=...)``)
API002    no function parameters typed ``List[Table]`` / ``Sequence[Table]``
          — corpus-shaped inputs accept ``repro.data.Dataset`` (or
          ``Iterable[Table]``) so sharded corpora stream without
          materializing
OBS002    span / metric names are lowercase ``[a-z0-9_]`` segments joined
          by ``/`` or ``.`` (``area/verb``, ``serve.latency.<task>``)
LNT000    every ``# lint: disable=RULE(...)`` suppression carries a reason
========  ==================================================================

Violations can be whitelisted inline with ``# lint: disable=RULE(reason)``;
the report counts every suppression and requires a written reason.

Usage::

    python -m repro.lint src tests            # exit 0 when clean
    python -m repro.lint --list-rules
    python -m repro.lint --invariants src     # also run runtime invariants
"""

from repro.lint.engine import (
    LintResult,
    SuppressedViolation,
    lint_paths,
    lint_source,
)
from repro.lint.invariants import run_invariant_checks
from repro.lint.report import format_json, format_text
from repro.lint.rules import RULES, Rule, Violation

__all__ = [
    "RULES",
    "Rule",
    "Violation",
    "LintResult",
    "SuppressedViolation",
    "lint_paths",
    "lint_source",
    "format_text",
    "format_json",
    "run_invariant_checks",
]
