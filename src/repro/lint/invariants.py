"""Runtime structural invariants that complement the static rules.

Static analysis can prove code *shape*; these checks prove the data
structures the trainer consumes.  ``run_invariant_checks`` builds visibility
matrices (handcrafted and randomized-but-seeded) and validates them with
:func:`repro.core.visibility.verify_visibility`, and exercises
:meth:`repro.config.TURLConfig.validate` on both good and deliberately bad
masking configurations.  It returns a list of failure strings — empty means
every invariant holds.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.config import TURLConfig
from repro.core.linearize import (
    KIND_CAPTION,
    KIND_CELL,
    KIND_HEADER,
    KIND_TOPIC,
)
from repro.core.visibility import verify_visibility, visibility_from_structure


def _check_visibility() -> List[str]:
    failures: List[str] = []

    # Handcrafted 2x2 table: caption token, topic entity, two headers, four
    # entity cells.  Row/col of -1 marks "not applicable" for metadata.
    kinds = np.array([KIND_CAPTION, KIND_TOPIC,
                      KIND_HEADER, KIND_HEADER,
                      KIND_CELL, KIND_CELL, KIND_CELL, KIND_CELL])
    rows = np.array([-1, -1, -1, -1, 0, 0, 1, 1])
    cols = np.array([-1, -1, 0, 1, 0, 1, 0, 1])
    visible = visibility_from_structure(kinds, rows, cols)
    failures.extend(f"handcrafted table: {message}" for message in
                    verify_visibility(visible, kinds, rows, cols))

    # Seeded random structures: the vectorized builder must satisfy the
    # element-wise re-derivation for arbitrary layouts.
    rng = np.random.default_rng(7)
    for trial in range(3):
        n_rows = int(rng.integers(1, 5))
        n_cols = int(rng.integers(1, 4))
        n_caption = int(rng.integers(0, 4))
        kinds_list = ([KIND_CAPTION] * n_caption + [KIND_TOPIC]
                      + [KIND_HEADER] * n_cols)
        rows_list = [-1] * (n_caption + 1 + n_cols)
        cols_list = [-1] * (n_caption + 1) + list(range(n_cols))
        for row in range(n_rows):
            for col in range(n_cols):
                if rng.random() < 0.7:
                    kinds_list.append(KIND_CELL)
                    rows_list.append(row)
                    cols_list.append(col)
        kinds = np.array(kinds_list)
        rows = np.array(rows_list)
        cols = np.array(cols_list)
        visible = visibility_from_structure(kinds, rows, cols)
        failures.extend(f"seeded table {trial}: {message}" for message in
                        verify_visibility(visible, kinds, rows, cols))

    # Tampering must be caught: break symmetry on the handcrafted matrix.
    kinds = np.array([KIND_TOPIC, KIND_HEADER, KIND_CELL])
    rows = np.array([-1, -1, 0])
    cols = np.array([-1, 0, 0])
    broken = visibility_from_structure(kinds, rows, cols)
    broken[1, 2] = False
    if not verify_visibility(broken, kinds, rows, cols):
        failures.append("verify_visibility accepted an asymmetric matrix")
    return failures


def _check_masking_config() -> List[str]:
    failures: List[str] = []
    try:
        config = TURLConfig()
        config.validate()
        split = config.mer_corruption_split()
        total = sum(split.values())
        if abs(total - 1.0) > 1e-9:
            failures.append(
                f"default MER corruption split sums to {total!r}, not 1")
    except ValueError as error:
        failures.append(f"default TURLConfig failed validation: {error}")

    bad = TURLConfig(mlm_mask_fraction=0.8, mlm_random_fraction=0.3)
    try:
        bad.validate()
        failures.append("validate() accepted mlm_mask_fraction + "
                        "mlm_random_fraction > 1")
    except ValueError:
        pass

    bad = TURLConfig(mer_keep_fraction=1.5)
    try:
        bad.validate()
        failures.append("validate() accepted mer_keep_fraction > 1")
    except ValueError:
        pass
    return failures


def run_invariant_checks() -> List[str]:
    """Run every structural invariant; return failure strings (empty = ok)."""
    return _check_visibility() + _check_masking_config()
