"""Command-line entry point: ``python -m repro.lint [paths...]``.

Exit status is 0 when no violations (suppressions with reasons are fine)
and 1 otherwise, so the command gates CI directly.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.lint.engine import lint_paths
from repro.lint.invariants import run_invariant_checks
from repro.lint.report import format_json, format_text
from repro.lint.rules import RULES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Static analysis for the repro codebase.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    parser.add_argument("--invariants", action="store_true",
                        help="also run runtime structural invariant checks")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in RULES.values():
            print(f"{rule.id}  {rule.name}")
            print(f"        {rule.summary}")
            print(f"        fix: {rule.hint}")
        return 0

    result = lint_paths(args.paths)
    formatter = format_json if args.format == "json" else format_text
    print(formatter(result))

    exit_code = result.exit_code
    if args.invariants:
        failures = run_invariant_checks()
        if failures:
            exit_code = 1
            print("invariant failures:")
            for failure in failures:
                print(f"  {failure}")
        else:
            print("runtime invariants: all passed")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
