"""Shared training engine for pre-training and fine-tuning (Section 5).

TURL's core paradigm is one model, one optimization recipe, many tasks:
pre-train with MLM + MER, then fine-tune per task with the same Adam +
linear-decay setup.  This package is that recipe as code — a single
:class:`Trainer` that both :class:`repro.core.pretrain.Pretrainer` and all
five trainable task heads run on, via the :class:`TrainableTask` protocol.

Quick start::

    from repro.train import Trainer, TrainSpec

    task = annotator.training_task(dataset)        # any task head
    spec = TrainSpec(epochs=5, schedule="linear", gradient_clip=5.0)
    stats = Trainer(task, spec, journal=journal).fit()
"""

from repro.train.engine import (
    TrainSpec,
    TrainStats,
    Trainer,
    build_optimizer,
    subsample_items,
)
from repro.train.task import StepOutput, TrainableTask
from repro.train.checkpoint import load_training_state, save_training_state

__all__ = [
    "TrainSpec",
    "TrainStats",
    "Trainer",
    "TrainableTask",
    "StepOutput",
    "build_optimizer",
    "subsample_items",
    "save_training_state",
    "load_training_state",
]
