"""The shared training engine (paper Section 4.4 / Section 6 "details").

One :class:`Trainer` drives both pre-training and every fine-tuning head:
Adam with an optional linearly decaying learning rate and global-norm
gradient clipping, seeded epoch shuffling, per-step / per-epoch statistics,
periodic evaluation hooks with train/eval-mode restoration, early stopping,
JSONL journaling, and checkpoint save / resume.  Tasks plug in through the
:class:`~repro.train.task.TrainableTask` protocol.

Subsampling semantics
---------------------

``TrainSpec.max_items`` caps the number of *training instances* seen per
epoch.  Selection is **item-aware**: whole items (per-table groups for
grouped tasks) are drawn in a seeded random order until the instance budget
— the sum of :meth:`TrainableTask.item_size` — is reached, then kept in
their original relative order.  Whole tables are therefore kept or dropped
together, so the same seed yields the same table coverage in every task,
and the draw comes from its own ``default_rng(seed)`` stream, independent of
training progress (which is what makes checkpoint resume exact).
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.nn import (
    Adam,
    ConstantSchedule,
    LinearDecaySchedule,
    assert_finite_module,
    clip_grad_norm,
    eval_mode,
    sanitize_ops,
)
from repro.nn.tensor import Parameter
from repro.obs import (
    RunJournal,
    adopt_context,
    capture_context,
    get_registry,
    trace,
)
from repro.obs.clock import perf_counter
from repro.train.task import StepOutput, TrainableTask

SCHEDULES = ("constant", "linear")
SHUFFLE_MODES = ("flat", "bucket", "shard")


@dataclass
class TrainSpec:
    """Everything the engine needs to know about *how* to train.

    ``schedule="linear"`` reproduces the paper's linearly decreasing learning
    rate; ``gradient_clip=None`` disables clipping (the gradient norm is then
    only computed when a journal asks for it).
    """

    epochs: int = 1
    learning_rate: float = 1e-3
    weight_decay: float = 0.0
    schedule: str = "constant"
    warmup_steps: int = 0
    final_lr_fraction: float = 0.1
    gradient_clip: Optional[float] = None
    batch_size: int = 1
    #: epoch order: ``"flat"`` reproduces the historical order bit-for-bit
    #: (one permutation, sequential chunks); ``"bucket"`` groups items by
    #: :meth:`TrainableTask.bucket_key` so multi-instance batches collate
    #: with minimal padding (seeded-equivalent coverage, different order);
    #: ``"shard"`` additionally keeps consecutive batches inside one payload
    #: shard (:meth:`TrainableTask.shard_key`) so streaming datasets read
    #: with page locality.
    shuffle: str = "flat"
    seed: int = 0
    max_items: Optional[int] = None
    eval_every: Optional[int] = None
    eval_at_end: bool = False
    early_stop_patience: Optional[int] = None
    early_stop_min_delta: float = 0.0
    #: run every optimization step under the autograd sanitizer
    #: (:func:`repro.nn.sanitize_ops`).  Observation-only: seeded results are
    #: bit-identical with this on or off.
    sanitize: bool = False

    def __post_init__(self) -> None:
        if self.schedule not in SCHEDULES:
            raise ValueError(f"unknown schedule {self.schedule!r}; "
                             f"expected one of {SCHEDULES}")
        if self.shuffle not in SHUFFLE_MODES:
            raise ValueError(f"unknown shuffle mode {self.shuffle!r}; "
                             f"expected one of {SHUFFLE_MODES}")
        if self.epochs < 0:
            raise ValueError("epochs must be non-negative")
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "TrainSpec":
        return cls(**payload)


@dataclass
class TrainStats:
    """Per-step and per-epoch history of one :meth:`Trainer.fit` run."""

    losses: List[float] = field(default_factory=list)
    epoch_losses: List[float] = field(default_factory=list)
    lrs: List[float] = field(default_factory=list)
    grad_norms: List[float] = field(default_factory=list)
    extras: Dict[str, List[float]] = field(default_factory=dict)
    eval_steps: List[int] = field(default_factory=list)
    eval_values: List[float] = field(default_factory=list)
    steps: int = 0
    wall_seconds: float = 0.0
    stopped_early: bool = False

    @property
    def throughput(self) -> float:
        """Optimization steps per wall-clock second."""
        return self.steps / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def final_eval(self) -> Optional[float]:
        return self.eval_values[-1] if self.eval_values else None


def build_optimizer(parameters: Sequence[Parameter], spec: TrainSpec,
                    total_steps: int) -> Adam:
    """The engine-owned optimizer recipe: Adam + the spec's LR schedule."""
    if spec.schedule == "linear":
        schedule = LinearDecaySchedule(spec.learning_rate,
                                       total_steps=max(1, total_steps),
                                       warmup_steps=spec.warmup_steps,
                                       final_fraction=spec.final_lr_fraction)
    else:
        schedule = ConstantSchedule(spec.learning_rate)
    return Adam(parameters, learning_rate=spec.learning_rate,
                weight_decay=spec.weight_decay, schedule=schedule)


def subsample_items(items: Sequence[Any], max_count: Optional[int], seed: int,
                    size_of: Optional[Callable[[Any], int]] = None) -> List[Any]:
    """Seeded, item-aware subsampling (see module docstring).

    Whole items are drawn in ``default_rng(seed)`` order until the cumulative
    ``size_of`` budget (default: one per item) reaches ``max_count``;
    survivors keep their original relative order.  At least one item is
    always kept.
    """
    if size_of is None:
        size_of = lambda item: 1
    items = list(items)
    if max_count is None or sum(size_of(item) for item in items) <= max_count:
        return items
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(items))
    chosen: List[int] = []
    budget = 0
    for index in order:
        chosen.append(int(index))
        budget += size_of(items[int(index)])
        if budget >= max_count:
            break
    return [items[i] for i in sorted(chosen)]


def _grad_norm(parameters: Sequence[Parameter]) -> float:
    present = [p for p in parameters if p.grad is not None]
    return float(np.sqrt(sum(float((p.grad**2).sum()) for p in present)))


class Trainer:
    """Runs a :class:`TrainableTask` under a :class:`TrainSpec`.

    ``rng`` / ``optimizer`` may be injected by callers that need to share
    state with legacy facades (e.g. :class:`repro.core.pretrain.Pretrainer`);
    by default the engine owns both.
    """

    def __init__(self, task: TrainableTask, spec: TrainSpec,
                 journal: Optional[RunJournal] = None,
                 rng: Optional[np.random.Generator] = None,
                 optimizer: Optional[Adam] = None):
        self.task = task
        self.spec = spec
        self.journal = journal
        self.rng = rng if rng is not None else np.random.default_rng(spec.seed)
        self.optimizer = optimizer
        self.epochs_completed = 0
        self.step_index = 0
        #: chunks of the current epoch already consumed — with
        #: :attr:`_epoch_start_rng_state` this is the checkpointed stream
        #: position that makes mid-epoch resume exact.
        self.chunks_consumed = 0
        self._epoch_start_rng_state: Optional[dict] = None
        self._epoch_losses: List[float] = []
        self._pending_chunks: Optional[List[Any]] = None
        self._items: Optional[List[Any]] = None
        self._best_epoch_loss = math.inf
        self._epochs_since_improvement = 0
        self._metric_prefix = task.name.replace("/", ".")
        self._fit_context = None

    # -- setup -------------------------------------------------------------
    @property
    def items(self) -> List[Any]:
        if self._items is None:
            self._items = subsample_items(self.task.build_batches(),
                                          self.spec.max_items, self.spec.seed,
                                          self.task.item_size)
        return self._items

    @property
    def steps_per_epoch(self) -> int:
        return max(1, int(np.ceil(len(self.items) / self.spec.batch_size)))

    def _ensure_optimizer(self, total_steps: Optional[int] = None) -> Adam:
        if self.optimizer is None:
            if total_steps is None:
                total_steps = self.steps_per_epoch * self.spec.epochs
            self.optimizer = build_optimizer(self.task.module.parameters(),
                                             self.spec, total_steps)
        return self.optimizer

    def _write_header(self) -> None:
        if self.journal is None:
            return
        n_instances = sum(self.task.item_size(item) for item in self.items)
        self.journal.header(config=self.task.config_dict(),
                            seed=self.spec.seed, task=self.task.name,
                            n_instances=n_instances,
                            n_epochs=self.spec.epochs,
                            spec=self.spec.to_dict())

    # -- one optimization step ---------------------------------------------
    def run_step(self, batch: Any) -> Optional[Dict[str, float]]:
        """Loss, backward, clip, optimizer update for one item/batch.

        Returns ``None`` when the task skipped the item, otherwise a result
        dictionary with the loss, any task extras, per-phase timings, the
        pre-clip gradient norm and the applied learning rate.
        """
        if self.spec.sanitize:
            with sanitize_ops():
                result = self._run_step_inner(batch)
            if result is not None and result.get("updated"):
                assert_finite_module(self.task.module,
                                     context="after optimizer step")
            return result
        return self._run_step_inner(batch)

    def _run_step_inner(self, batch: Any) -> Optional[Dict[str, float]]:
        spec, task = self.spec, self.task
        with trace(f"{task.name}/step"):
            phase_start = perf_counter()
            with trace(f"{task.name}/step/forward"):
                output = task.loss(batch, self.rng)
            forward_seconds = perf_counter() - phase_start
            if output is None:
                return None
            if not isinstance(output, StepOutput):
                output = StepOutput(loss=output)
            timings = {"forward_seconds": forward_seconds,
                       "backward_seconds": 0.0, "optimizer_seconds": 0.0}
            if output.loss is None:
                return {"loss": 0.0, **output.extras, **timings,
                        "grad_norm": 0.0, "lr": 0.0, "updated": 0.0}

            optimizer = self._ensure_optimizer()
            task.module.zero_grad()
            phase_start = perf_counter()
            with trace(f"{task.name}/step/backward"):
                output.loss.backward()
                if spec.gradient_clip is not None:
                    grad_norm = clip_grad_norm(optimizer.parameters,
                                               spec.gradient_clip)
                elif self.journal is not None:
                    grad_norm = _grad_norm(optimizer.parameters)
                else:
                    grad_norm = 0.0
            timings["backward_seconds"] = perf_counter() - phase_start
            lr = optimizer.schedule(optimizer.step_count)
            phase_start = perf_counter()
            with trace(f"{task.name}/step/optimizer"):
                optimizer.step()
            timings["optimizer_seconds"] = perf_counter() - phase_start
            loss_value = output.loss.item()

            registry = get_registry()
            prefix = self._metric_prefix
            registry.counter(f"{prefix}.steps").inc()
            registry.histogram(f"{prefix}.loss").observe(loss_value)
            registry.histogram(f"{prefix}.grad_norm").observe(grad_norm)
            for phase, seconds in timings.items():
                registry.timer(
                    f"{prefix}.{phase[:-len('_seconds')]}").observe(seconds)
            return {"loss": loss_value, **output.extras, **timings,
                    "grad_norm": grad_norm, "lr": lr, "updated": 1.0}

    # -- the loop -----------------------------------------------------------
    def fit(self, epochs: Optional[int] = None,
            max_steps: Optional[int] = None) -> TrainStats:
        """Train until ``spec.epochs`` total epochs are completed.

        ``epochs`` caps how many *additional* epochs this call runs (used by
        checkpoint/resume tests and incremental training); by default the
        remaining ``spec.epochs - epochs_completed`` run.  ``max_steps`` caps
        this call's optimization steps and may pause mid-epoch — the stream
        position (epoch-start RNG state + chunks consumed) is part of
        :meth:`save`, so a later :meth:`fit` (possibly after a restore)
        continues the interrupted epoch bit-identically.  Returns the stats
        of this call only.
        """
        stats = TrainStats()
        items = self.items
        self._ensure_optimizer()
        self._write_header()
        target = self.spec.epochs
        if epochs is not None:
            target = min(target, self.epochs_completed + epochs)
        module = self.task.module
        module.train()
        spec = self.spec
        # Capture the originating trace context (e.g. a serve request that
        # triggered this run) so eval hooks attribute to it even if a task's
        # eval_metric hops threads.
        self._fit_context = capture_context()
        train_start = perf_counter()
        paused = False
        with trace(f"{self.task.name}/train"):
            while self.epochs_completed < target:
                chunks = self._ensure_epoch_chunks(items)
                while self.chunks_consumed < len(chunks):
                    indices = chunks[self.chunks_consumed]
                    chunk = [items[int(i)] for i in indices]
                    batch = chunk[0] if spec.batch_size == 1 else chunk
                    step_start = perf_counter()
                    result = self.run_step(batch)
                    step_seconds = perf_counter() - step_start
                    self.chunks_consumed += 1
                    if result is None:
                        continue
                    self.step_index += 1
                    stats.steps += 1
                    stats.losses.append(result["loss"])
                    stats.lrs.append(result["lr"])
                    stats.grad_norms.append(result["grad_norm"])
                    for key, value in result.items():
                        if key in ("loss", "lr", "grad_norm", "updated") or \
                                key.endswith("_seconds"):
                            continue
                        stats.extras.setdefault(key, []).append(value)
                    if result["updated"]:
                        self._epoch_losses.append(result["loss"])
                    self._journal_step(result, step_seconds)
                    if (spec.eval_every
                            and self.step_index % spec.eval_every == 0):
                        self._run_eval(stats)
                    if max_steps is not None and stats.steps >= max_steps:
                        paused = True
                        break
                if self.chunks_consumed >= len(chunks):
                    epoch_loss = (float(np.mean(self._epoch_losses))
                                  if self._epoch_losses else 0.0)
                    stats.epoch_losses.append(epoch_loss)
                    get_registry().histogram(
                        f"{self._metric_prefix}.epoch_loss").observe(epoch_loss)
                    self.epochs_completed += 1
                    self._pending_chunks = None
                    self._epoch_start_rng_state = None
                    self.chunks_consumed = 0
                    self._epoch_losses = []
                    if self._should_stop_early(epoch_loss):
                        stats.stopped_early = True
                        break
                if paused:
                    break
        if (spec.eval_at_end and not stats.stopped_early and not paused
                and self.epochs_completed >= spec.epochs):
            self._run_eval(stats)
        stats.wall_seconds = perf_counter() - train_start
        get_registry().gauge(
            f"{self._metric_prefix}.throughput").set(stats.throughput)
        return stats

    def _ensure_epoch_chunks(self, items: List[Any]) -> List[Any]:
        """The current epoch's chunk plan, deriving or re-deriving it.

        A fresh epoch snapshots the RNG state *before* drawing the plan; a
        mid-epoch resume (``chunks_consumed > 0`` with no plan in memory)
        replays the draw from that snapshot and then reinstates the restored
        mid-epoch RNG state, so the remaining chunks — and every later
        masking draw — match an uninterrupted run bit-for-bit.
        """
        if self._pending_chunks is not None:
            return self._pending_chunks
        if self._epoch_start_rng_state is not None and self.chunks_consumed:
            current = self.rng.bit_generator.state
            self.rng.bit_generator.state = self._epoch_start_rng_state
            self._pending_chunks = self._epoch_chunks(items)
            self.rng.bit_generator.state = current
        else:
            self._epoch_start_rng_state = self.rng.bit_generator.state
            self._pending_chunks = self._epoch_chunks(items)
        return self._pending_chunks

    def _epoch_chunks(self, items: List[Any]) -> List[Any]:
        """One epoch's batches as lists of item indices.

        ``shuffle="flat"`` consumes exactly one ``rng.permutation`` and
        chunks it sequentially — byte-for-byte the pre-bucketing behaviour.
        ``shuffle="bucket"`` additionally groups the permuted order by
        :meth:`TrainableTask.bucket_key` and shuffles the chunk order, so
        every item still occurs exactly once per epoch but like-shaped items
        share a batch (minimal collate padding).  ``shuffle="shard"`` visits
        :meth:`TrainableTask.shard_key` groups in a seeded random order and
        buckets within each, so streaming datasets read shard-locally.
        """
        spec = self.spec
        if spec.shuffle == "shard":
            from repro.core.batching import shard_bucketed_chunk_indices

            shard_ids = [self.task.shard_key(item) for item in items]
            keys = [self.task.bucket_key(item) for item in items]
            return shard_bucketed_chunk_indices(shard_ids, keys,
                                                spec.batch_size, self.rng)
        order = self.rng.permutation(len(items))
        if spec.shuffle == "bucket":
            from repro.core.batching import bucketed_chunk_indices

            keys = [self.task.bucket_key(item) for item in items]
            return bucketed_chunk_indices(keys, spec.batch_size, order,
                                          self.rng)
        return [order[start:start + spec.batch_size]
                for start in range(0, len(items), spec.batch_size)]

    def _journal_step(self, result: Dict[str, float], seconds: float) -> None:
        if self.journal is None:
            return
        fields = {key: value for key, value in result.items()
                  if key != "updated"}
        fields["seconds"] = seconds
        if "tokens" in fields:
            fields["tokens_per_second"] = (fields["tokens"] / seconds
                                           if seconds > 0 else 0.0)
        self.journal.step(self.step_index, **fields)

    def _run_eval(self, stats: TrainStats) -> None:
        """One mode-restoring evaluation probe, attributed to the trace
        context that was active when :meth:`fit` started."""
        probe_start = perf_counter()
        with adopt_context(self._fit_context):
            with trace(f"{self.task.name}/eval"):
                with eval_mode(self.task.module):
                    value = self.task.eval_metric()
        if value is None:
            return
        stats.eval_steps.append(self.step_index)
        stats.eval_values.append(value)
        if self.journal is not None:
            self.journal.probe(self.step_index, value,
                               seconds=perf_counter() - probe_start)

    def _should_stop_early(self, epoch_loss: float) -> bool:
        patience = self.spec.early_stop_patience
        if patience is None:
            return False
        if epoch_loss < self._best_epoch_loss - self.spec.early_stop_min_delta:
            self._best_epoch_loss = epoch_loss
            self._epochs_since_improvement = 0
            return False
        self._epochs_since_improvement += 1
        return self._epochs_since_improvement >= patience

    # -- checkpointing -------------------------------------------------------
    def save(self, directory: str) -> None:
        """Persist module weights, optimizer moments, RNG state and progress."""
        from repro.train.checkpoint import save_training_state

        save_training_state(directory, self)

    @classmethod
    def restore(cls, directory: str, task: TrainableTask,
                spec: Optional[TrainSpec] = None,
                journal: Optional[RunJournal] = None) -> "Trainer":
        """Inverse of :meth:`save`; ``task`` must be rebuilt identically
        (same constructors and seeds) by the caller."""
        from repro.train.checkpoint import load_training_state

        return load_training_state(directory, task, spec=spec, journal=journal)
