"""The task protocol consumed by the shared training engine.

A :class:`TrainableTask` describes *what* to optimize — the module, the
training items, and the loss of one item — while :class:`repro.train.Trainer`
owns *how*: optimizer construction, seeded shuffling, gradient clipping,
stats, eval hooks, early stopping, journaling and checkpointing.  Both
pre-training (MLM + MER) and every fine-tuning head implement this protocol,
so the paper's Adam-with-decay recipe lives in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Union

import numpy as np

from repro.nn import Module, Tensor


@dataclass
class StepOutput:
    """Result of one loss evaluation.

    ``loss=None`` means "record a zero-loss step without a parameter update"
    (pre-training batches can have no masked positions); a task that wants to
    skip an item entirely returns ``None`` from :meth:`TrainableTask.loss`
    instead.
    """

    loss: Optional[Tensor]
    extras: Dict[str, float] = field(default_factory=dict)


LossResult = Optional[Union[Tensor, StepOutput]]


class TrainableTask:
    """Base class / protocol for anything the engine can train.

    Subclasses must set :attr:`name` and :attr:`module` and implement
    :meth:`build_batches` and :meth:`loss`.  ``name`` uses ``/`` separators
    (e.g. ``"task/column_type"``); the engine derives tracing span names from
    it directly and metric names by replacing ``/`` with ``.``.
    """

    #: hierarchical task name, e.g. ``"pretrain"`` or ``"task/column_type"``.
    name: str = "task"
    #: the module whose parameters are optimized.
    module: Module

    def build_batches(self) -> Sequence[Any]:
        """The list of training items; one item is one optimization step.

        For table-grouped tasks an item is the whole per-table group (so each
        table is encoded once per step); for instance-level tasks it is a
        single instance.  Called once per :class:`~repro.train.Trainer`; the
        engine applies seeded subsampling and per-epoch shuffling on top.
        """
        raise NotImplementedError

    def loss(self, batch: Any, rng: np.random.Generator) -> LossResult:
        """Loss of one item (or, when ``spec.batch_size > 1``, a list of
        items).  Return ``None`` to skip the item without stepping."""
        raise NotImplementedError

    def item_size(self, item: Any) -> int:
        """Number of underlying training instances in ``item``; used by the
        engine's ``max_items`` subsampling budget."""
        return 1

    def bucket_key(self, item: Any) -> Any:
        """Padding-equivalence key for ``spec.shuffle="bucket"``.

        Items sharing a key may be batched together with no padding waste.
        The default (``None`` for every item) puts everything in one bucket,
        which degrades bucketed shuffling to a plain seeded reordering."""
        return None

    def shard_key(self, item: Any) -> int:
        """Locality key for ``spec.shuffle="shard"``.

        Items sharing a key live in the same on-disk payload shard; the
        engine visits shards in a seeded random order and batches within
        each, so streaming datasets touch one shard's pages at a time.  The
        default (``0`` for every item) degrades shard shuffling to bucketed
        shuffling over a single shard."""
        return 0

    def stream_fingerprint(self) -> Optional[str]:
        """Content id of the backing dataset for streaming tasks.

        Checkpoints persist it; resuming against a different corpus (whose
        record indices would silently mean different tables) fails fast.
        ``None`` means the task's items are self-contained (in-memory)."""
        return None

    def eval_metric(self) -> Optional[float]:
        """Periodic evaluation hook (higher is better); ``None`` disables it.

        The engine runs this under restored train/eval mode: whatever mode
        the module was in before the hook is reinstated afterwards.
        """
        return None

    def config_dict(self) -> Optional[Dict[str, Any]]:
        """Optional config payload recorded in the journal header."""
        return None
