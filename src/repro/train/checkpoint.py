"""Training-state checkpointing: save → resume → continue, exactly.

A training checkpoint is a directory with three files:

``model.npz``
    the task module's parameter state dict (via :mod:`repro.nn.serialization`)
``optimizer.npz``
    Adam first/second moments, keyed ``m.<param>`` / ``v.<param>``
``trainer.json``
    optimizer step count, completed epochs, the :class:`TrainSpec`, and the
    exact NumPy bit-generator state of the shuffle/masking RNG

Restoring reinstates all of it, so a run that is interrupted after epoch
``k`` and resumed produces bit-identical parameters to an uninterrupted run
— the property ``tests/train/test_checkpoint_resume.py`` locks in.
"""

from __future__ import annotations

import json
import os
from typing import Optional

import numpy as np

from repro.nn.serialization import load_state_dict, save_state_dict
from repro.obs import RunJournal

TRAINER_STATE_FILE = "trainer.json"
MODEL_FILE = "model.npz"
OPTIMIZER_FILE = "optimizer.npz"


def _state_to_json(state: dict) -> dict:
    """A bit-generator state dict with big ints stringified for JSON safety."""
    return json.loads(json.dumps(state, default=str))


def _rng_state_to_json(rng: np.random.Generator) -> dict:
    """The bit-generator state with big ints stringified for JSON safety."""
    return _state_to_json(rng.bit_generator.state)


def _rng_state_from_json(payload: dict) -> dict:
    def revive(node):
        if isinstance(node, dict):
            return {key: revive(value) for key, value in node.items()}
        if isinstance(node, str) and node.lstrip("-").isdigit():
            return int(node)
        return node

    return revive(payload)


def save_training_state(directory: str, trainer) -> None:
    """Write the full resumable state of ``trainer`` to ``directory``."""
    os.makedirs(directory, exist_ok=True)
    module = trainer.task.module
    save_state_dict(module.state_dict(), os.path.join(directory, MODEL_FILE))

    optimizer = trainer._ensure_optimizer()
    names = [name for name, _ in module.named_parameters()]
    if len(names) != len(optimizer.parameters):
        raise ValueError(
            "optimizer does not track exactly the module's parameters "
            f"({len(optimizer.parameters)} vs {len(names)}); checkpointing "
            "requires the engine-owned optimizer")
    moments = {}
    for name, m, v in zip(names, optimizer._m, optimizer._v):
        moments[f"m.{name}"] = m
        moments[f"v.{name}"] = v
    save_state_dict(moments, os.path.join(directory, OPTIMIZER_FILE))

    state = {
        "task": trainer.task.name,
        "spec": trainer.spec.to_dict(),
        "step_count": optimizer.step_count,
        "step_index": trainer.step_index,
        "epochs_completed": trainer.epochs_completed,
        "rng_state": _rng_state_to_json(trainer.rng),
        # Stream position: which chunk of the in-flight epoch comes next,
        # plus the RNG snapshot that (re)derives this epoch's chunk plan.
        # Together they make mid-epoch resume exact for streaming datasets.
        "chunks_consumed": trainer.chunks_consumed,
        "epoch_start_rng_state": (
            _state_to_json(trainer._epoch_start_rng_state)
            if trainer._epoch_start_rng_state is not None else None),
        "epoch_losses_partial": list(trainer._epoch_losses),
        "stream_fingerprint": trainer.task.stream_fingerprint(),
    }
    with open(os.path.join(directory, TRAINER_STATE_FILE), "w") as handle:
        json.dump(state, handle, indent=2)


def load_training_state(directory: str, task,
                        spec=None,
                        journal: Optional[RunJournal] = None):
    """Rebuild a :class:`repro.train.Trainer` from :func:`save_training_state`.

    ``task`` must be constructed identically to the saved run (same seeds and
    datasets); the checkpoint then overwrites its module parameters and the
    engine state.  Pass ``spec`` to override the persisted one (e.g. to raise
    ``epochs`` before continuing).
    """
    from repro.train.engine import Trainer, TrainSpec

    with open(os.path.join(directory, TRAINER_STATE_FILE)) as handle:
        state = json.load(handle)
    if state["task"] != task.name:
        raise ValueError(f"checkpoint was written by task {state['task']!r}, "
                         f"got {task.name!r}")
    if spec is None:
        spec = TrainSpec.from_dict(state["spec"])

    trainer = Trainer(task, spec, journal=journal)
    task.module.load_state_dict(
        load_state_dict(os.path.join(directory, MODEL_FILE)))

    optimizer = trainer._ensure_optimizer()
    moments = load_state_dict(os.path.join(directory, OPTIMIZER_FILE))
    names = [name for name, _ in task.module.named_parameters()]
    for i, name in enumerate(names):
        optimizer._m[i] = moments[f"m.{name}"]
        optimizer._v[i] = moments[f"v.{name}"]
    optimizer.step_count = state["step_count"]

    trainer.step_index = state["step_index"]
    trainer.epochs_completed = state["epochs_completed"]
    trainer.rng.bit_generator.state = _rng_state_from_json(state["rng_state"])

    saved_fingerprint = state.get("stream_fingerprint")
    if saved_fingerprint is not None:
        current = task.stream_fingerprint()
        if current != saved_fingerprint:
            raise ValueError(
                "checkpointed stream position belongs to a different corpus "
                f"(saved fingerprint {saved_fingerprint}, task has {current}); "
                "rebuild the task over the original dataset")
    trainer.chunks_consumed = state.get("chunks_consumed", 0)
    epoch_start = state.get("epoch_start_rng_state")
    trainer._epoch_start_rng_state = (
        _rng_state_from_json(epoch_start) if epoch_start is not None else None)
    trainer._epoch_losses = list(state.get("epoch_losses_partial", []))
    return trainer
