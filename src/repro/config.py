"""Model and pre-training hyperparameter configuration.

The paper's production settings (N=4 blocks, d_model=312 from TinyBERT,
80 epochs on 570 K tables) are GPU-scale; :class:`TURLConfig` defaults are
CPU-scale but keep every architectural ratio and objective parameter —
including the MLM 20 % and MER 60 % masking ratios and their sub-splits —
identical to Section 4.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict


@dataclass
class TURLConfig:
    """Hyperparameters for the TURL model and pre-training objectives."""

    # -- architecture (paper: N=4, d=312, inter=1200, k=12) ---------------
    num_layers: int = 2
    dim: int = 64
    intermediate_dim: int = 128
    num_heads: int = 4
    dropout: float = 0.0
    #: derive per-layer dropout RNGs via the SeedSequence spawn protocol
    #: (collision-free) instead of the historical 31-bit ``rng.integers``
    #: reseed.  Off by default: flipping it changes every downstream
    #: initialization draw, so committed goldens require the old behaviour.
    spawn_dropout_rng: bool = False

    # -- input limits -----------------------------------------------------
    max_caption_tokens: int = 24
    max_header_tokens: int = 6
    max_mention_tokens: int = 4
    max_rows: int = 24
    max_columns: int = 8

    # -- Masked Language Model (paper: 20%; 80/10/10 mask/random/keep) ----
    mlm_probability: float = 0.2
    mlm_mask_fraction: float = 0.8
    mlm_random_fraction: float = 0.1

    # -- Masked Entity Recovery (paper Section 4.4) -----------------------
    #: fraction of entity cells selected for MER
    mer_probability: float = 0.6
    #: of selected: fraction left fully intact
    mer_keep_fraction: float = 0.1
    #: of the remaining 90%: fraction with BOTH mention and entity masked
    mer_full_mask_fraction: float = 0.7
    #: of mention-kept cells: fraction whose entity embedding is replaced by
    #: a random entity (noise injection)
    mer_random_entity_fraction: float = 0.1

    # -- MER candidate set --------------------------------------------------
    n_random_negatives: int = 32
    n_cooccurrence_candidates: int = 64
    max_candidates: int = 256

    # -- optimization -------------------------------------------------------
    learning_rate: float = 1e-3
    batch_size: int = 8
    gradient_clip: float = 5.0
    weight_decay: float = 0.0

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "TURLConfig":
        return cls(**payload)

    def validate(self) -> None:
        if self.dim % self.num_heads != 0:
            raise ValueError("dim must be divisible by num_heads")
        for name in ("mlm_probability", "mlm_mask_fraction",
                     "mlm_random_fraction", "mer_probability",
                     "mer_keep_fraction", "mer_full_mask_fraction",
                     "mer_random_entity_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.mlm_mask_fraction + self.mlm_random_fraction > 1.0:
            raise ValueError(
                "mlm_mask_fraction + mlm_random_fraction must be <= 1, got "
                f"{self.mlm_mask_fraction} + {self.mlm_random_fraction}")
        split = self.mer_corruption_split()
        total = sum(split.values())
        if abs(total - 1.0) > 1e-9:
            raise ValueError(
                f"MER corruption split must sum to 1, got {total!r} "
                f"from {split!r}")

    def mer_corruption_split(self) -> dict:
        """Absolute fraction of MER-selected cells per corruption outcome.

        The config stores the split hierarchically (keep, then full-mask of
        the remainder, then noise of the mention-kept rest); this flattens it
        so the invariant "outcomes partition the selected cells" is checkable.
        """
        keep = self.mer_keep_fraction
        full_mask = (1.0 - keep) * self.mer_full_mask_fraction
        mention_kept = (1.0 - keep) * (1.0 - self.mer_full_mask_fraction)
        noised = mention_kept * self.mer_random_entity_fraction
        return {
            "keep": keep,
            "full_mask": full_mask,
            "mention_kept_masked": mention_kept - noised,
            "mention_kept_noised": noised,
        }
