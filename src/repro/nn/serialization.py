"""Checkpoint (de)serialization for module state dicts.

State dicts are flat ``name -> ndarray`` mappings; we persist them as
compressed ``.npz`` archives, with ``/`` substituted for ``.`` in keys since
NumPy forbids dots in archive member names on some versions.
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np


def save_state_dict(state: Dict[str, np.ndarray], path: str) -> None:
    """Write a state dict to ``path`` (``.npz`` format)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    encoded = {name.replace(".", "/"): array for name, array in state.items()}
    np.savez_compressed(path, **encoded)


def load_state_dict(path: str) -> Dict[str, np.ndarray]:
    """Read a state dict previously written by :func:`save_state_dict`."""
    with np.load(path) as archive:
        return {name.replace("/", "."): archive[name] for name in archive.files}
