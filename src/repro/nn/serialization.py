"""Checkpoint (de)serialization for module state dicts.

State dicts are flat ``name -> ndarray`` mappings; we persist them as
``.npz`` archives, with ``/`` substituted for ``.`` in keys since NumPy
forbids dots in archive member names on some versions.

Two load paths share the same archive format:

- :func:`load_state` / :func:`load_state_dict` — the eager path: every
  array is materialized on the heap (writable, private copies).
- :func:`load_state(mmap=True) <load_state>` — the zero-copy path for
  serving fleets: each array is an ``np.memmap`` view straight into the
  archive file, opened read-only.  N workers loading the same checkpoint
  share one set of physical pages through the OS page cache instead of N
  heap copies, and any attempted write raises.  Memory-mapping requires
  the archive members to be stored uncompressed — write them with
  ``save_state_dict(..., compress=False)``.
"""

from __future__ import annotations

import ast
import os
import struct
import zipfile
from typing import Dict, List, Tuple

import numpy as np

#: Size of the fixed portion of a zip local file header (before the
#: variable-length name and extra fields).
_LOCAL_HEADER_SIZE = 30


def save_state_dict(state: Dict[str, np.ndarray], path: str,
                    compress: bool = True) -> None:
    """Write a state dict to ``path`` (``.npz`` format).

    ``compress=False`` stores members uncompressed, which makes the archive
    memory-mappable via ``load_state(path, mmap=True)``.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    encoded = {name.replace(".", "/"): array for name, array in state.items()}
    if compress:
        np.savez_compressed(path, **encoded)
    else:
        np.savez(path, **encoded)


def load_state_dict(path: str) -> Dict[str, np.ndarray]:
    """Read a state dict previously written by :func:`save_state_dict`."""
    return load_state(path)


def _npy_array_spec(header: bytes) -> Tuple[np.dtype, bool, Tuple[int, ...], int]:
    """Parse a raw ``.npy`` byte stream's header.

    Returns ``(dtype, fortran_order, shape, data_offset)`` where
    ``data_offset`` is the offset of the first array byte from the start of
    the ``.npy`` stream.  Only needs the first kilobyte or so of the member.
    """
    if header[:6] != b"\x93NUMPY":
        raise ValueError("archive member is not a .npy array")
    major = header[6]
    if major == 1:
        (header_len,) = struct.unpack("<H", header[8:10])
        preamble = 10
    else:  # format 2.0/3.0: 4-byte little-endian header length
        (header_len,) = struct.unpack("<I", header[8:12])
        preamble = 12
    header_text = header[preamble:preamble + header_len].decode("latin1")
    fields = ast.literal_eval(header_text)
    dtype = np.dtype(fields["descr"])
    return (dtype, bool(fields["fortran_order"]), tuple(fields["shape"]),
            preamble + header_len)


def _member_offsets(path: str) -> List[Tuple[str, int, int]]:
    """``(member_name, payload_offset, payload_size)`` for every stored
    member of an uncompressed zip archive.

    The payload offset is computed from each member's *local* file header
    (the central directory's name/extra lengths can legally differ), so the
    returned offsets address the raw ``.npy`` bytes inside the file.
    """
    members: List[Tuple[str, int, int]] = []
    with zipfile.ZipFile(path) as archive, open(path, "rb") as raw:
        for info in archive.infolist():
            if info.compress_type != zipfile.ZIP_STORED:
                raise ValueError(
                    f"cannot memory-map {path!r}: member {info.filename!r} is "
                    "compressed; re-save the checkpoint with "
                    "save_state_dict(..., compress=False)")
            raw.seek(info.header_offset)
            local = raw.read(_LOCAL_HEADER_SIZE)
            if local[:4] != b"PK\x03\x04":
                raise ValueError(f"corrupt local header for {info.filename!r}")
            name_len, extra_len = struct.unpack("<HH", local[26:30])
            payload = info.header_offset + _LOCAL_HEADER_SIZE + name_len + extra_len
            members.append((info.filename, payload, info.file_size))
    return members


def _memmap_member(path: str, name: str, offset: int,
                   size: int) -> np.ndarray:
    """Memory-map one stored ``.npy`` member as a read-only array."""
    with open(path, "rb") as raw:
        raw.seek(offset)
        head = raw.read(min(size, 4096))
    dtype, fortran, shape, data_offset = _npy_array_spec(head)
    if dtype.hasobject:
        raise ValueError(f"cannot memory-map object array {name!r}")
    order = "F" if fortran else "C"
    if shape == ():
        # np.memmap cannot express 0-d arrays; fall back to an eager read
        # (a scalar costs nothing to copy) but keep it read-only.
        scalar = np.frombuffer(head[data_offset:data_offset + dtype.itemsize],
                               dtype=dtype).reshape(())
        scalar.setflags(write=False)
        return scalar
    return np.memmap(path, dtype=dtype, mode="r", offset=offset + data_offset,
                     shape=shape, order=order)


def load_state(path: str, mmap: bool = False) -> Dict[str, np.ndarray]:
    """Read a state dict; ``mmap=True`` returns zero-copy read-only views.

    The eager path (``mmap=False``) is byte-identical to the historical
    :func:`load_state_dict`.  The memmap path requires an archive written
    with ``compress=False`` and yields ``np.memmap`` arrays backed by the
    file — writes raise, and concurrent loaders share physical pages.
    """
    if not mmap:
        with np.load(path) as archive:
            return {name.replace("/", "."): archive[name]
                    for name in archive.files}
    state: Dict[str, np.ndarray] = {}
    for member, offset, size in _member_offsets(path):
        name = member[:-4] if member.endswith(".npy") else member
        state[name.replace("/", ".")] = _memmap_member(path, member, offset,
                                                       size)
    return state
