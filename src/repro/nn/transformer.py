"""Transformer encoder blocks (post-norm, BERT-style).

A :class:`TransformerBlock` is multi-head self-attention followed by a
position-wise feed-forward network, each wrapped in residual + LayerNorm.
:class:`TransformerEncoder` stacks ``N`` blocks and threads an optional
visibility mask through every attention layer — this is the "structure-aware
Transformer encoder" of Section 4.3 when fed TURL's visibility matrix.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.attention import (MultiHeadAttention, VisibilityLike,
                                derive_dropout_rng)
from repro.nn.layers import Dropout, LayerNorm, Linear, Module, ModuleList
from repro.nn.tensor import Tensor


class TransformerBlock(Module):
    """One encoder block: attention + FFN with residual connections."""

    def __init__(self, dim: int, num_heads: int, intermediate_dim: int,
                 rng: np.random.Generator, dropout: float = 0.0,
                 spawn_dropout_rng: bool = False):
        super().__init__()
        self.attention = MultiHeadAttention(dim, num_heads, rng, dropout=dropout,
                                            spawn_dropout_rng=spawn_dropout_rng)
        self.attention_norm = LayerNorm(dim)
        self.ffn_in = Linear(dim, intermediate_dim, rng)
        self.ffn_out = Linear(intermediate_dim, dim, rng)
        self.ffn_norm = LayerNorm(dim)
        self.dropout = Dropout(dropout,
                               rng=derive_dropout_rng(rng, spawn_dropout_rng))

    def forward(self, hidden: Tensor,
                visibility: Optional[VisibilityLike] = None) -> Tensor:
        attended = self.attention(hidden, visibility)
        hidden = self.attention_norm(hidden + self.dropout(attended))
        transformed = self.ffn_out(self.ffn_in(hidden).gelu())
        return self.ffn_norm(hidden + self.dropout(transformed))


class TransformerEncoder(Module):
    """Stack of ``num_layers`` Transformer blocks sharing a visibility mask."""

    def __init__(self, num_layers: int, dim: int, num_heads: int,
                 intermediate_dim: int, rng: np.random.Generator,
                 dropout: float = 0.0, spawn_dropout_rng: bool = False):
        super().__init__()
        self.blocks = ModuleList(
            [TransformerBlock(dim, num_heads, intermediate_dim, rng,
                              dropout=dropout,
                              spawn_dropout_rng=spawn_dropout_rng)
             for _ in range(num_layers)]
        )

    def forward(self, hidden: Tensor,
                visibility: Optional[VisibilityLike] = None) -> Tensor:
        for block in self.blocks:
            hidden = block(hidden, visibility)
        return hidden
