"""Opt-in autograd sanitizer and finite-difference gradient checker.

The training engine's correctness guarantees (bit-identical seeded runs,
save→resume equality) assume that nothing mutates an array while the autograd
tape still references it, that no op silently produces NaN/Inf, and that
every accumulated gradient has the shape of the tensor it belongs to.  This
module makes those assumptions *checkable* at runtime:

- :func:`sanitize_ops` — context manager that arms per-op guards inside
  :class:`~repro.nn.tensor.Tensor`: every recorded op snapshots a version
  counter and an Adler-32 checksum of each parent array, and ``backward()``
  verifies them before running the op's backward closure, raising
  :class:`SanitizerError` with the *creating op's name* when a tape-referenced
  array was rebound or mutated in place.  Op outputs and flowing gradients are
  also checked for NaN/Inf, gradient shapes are asserted against data shapes,
  and the topological sweep detects double visits.
- :func:`assert_finite_module` — NaN/Inf sweep over a module's parameters and
  gradients (the engine runs it after each optimizer step under
  ``TrainSpec(sanitize=True)``).
- :func:`gradcheck` — central finite differences against the analytic
  backward pass, used by ``tests/nn/test_gradcheck.py`` to verify every op in
  :mod:`repro.nn.tensor` and every layer in :mod:`repro.nn.layers`.

When the sanitizer is off (the default) the only cost is one attribute read
per op, so seeded results are bit-identical with sanitizing on or off: the
guards observe the computation, they never alter it.
"""

from __future__ import annotations

import contextlib
import zlib
from typing import Callable, Iterable, Optional, Sequence, Tuple

import numpy as np


class SanitizerError(RuntimeError):
    """An autograd invariant was violated while the sanitizer was armed."""


class _SanitizerState:
    """Process-global sanitizer switch (mutated only by :func:`sanitize_ops`)."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = False


#: The switch :mod:`repro.nn.tensor` consults on every op (attribute read
#: only, so the off path stays effectively free).
SANITIZER = _SanitizerState()


def sanitizer_enabled() -> bool:
    """Whether op-level guards are currently armed."""
    return SANITIZER.enabled


@contextlib.contextmanager
def sanitize_ops():
    """Arm the autograd sanitizer inside the block (re-entrant)."""
    previous = SANITIZER.enabled
    SANITIZER.enabled = True
    try:
        yield
    finally:
        SANITIZER.enabled = previous


def checksum(array: np.ndarray) -> int:
    """Cheap content fingerprint used to detect in-place mutation."""
    return zlib.adler32(array.tobytes())


def op_name(backward: Optional[Callable]) -> str:
    """Derive the creating op's name from its backward closure.

    Backward closures are defined inside the op methods of ``Tensor`` (and the
    module-level ``concat`` / ``stack``), so the qualname looks like
    ``Tensor.__add__.<locals>.backward``; the segment before ``<locals>`` is
    the op.
    """
    if backward is None:
        return "<leaf>"
    qualname = getattr(backward, "__qualname__", "")
    head = qualname.split(".<locals>")[0]
    return head.split(".")[-1] or "<unknown>"


def assert_finite_array(array: np.ndarray, what: str) -> None:
    """Raise :class:`SanitizerError` if ``array`` contains NaN or Inf."""
    if not np.all(np.isfinite(array)):
        bad = int(array.size - np.isfinite(array).sum())
        raise SanitizerError(
            f"non-finite values in {what}: {bad}/{array.size} elements are NaN/Inf")


def assert_finite_module(module, context: str = "") -> None:
    """NaN/Inf sweep over every parameter (data and gradient) of ``module``.

    The training engine calls this after each optimizer step when
    ``TrainSpec(sanitize=True)``, attributing blow-ups to the parameter name.
    """
    prefix = f"{context}: " if context else ""
    for name, parameter in module.named_parameters():
        assert_finite_array(parameter.data, f"{prefix}parameter '{name}'")
        if parameter.grad is not None:
            assert_finite_array(parameter.grad, f"{prefix}gradient of '{name}'")


def gradcheck(fn: Callable, inputs: Sequence, params: Iterable = (),
              eps: float = 1e-6, tol: float = 1e-6, seed: int = 0,
              raise_on_error: bool = True) -> float:
    """Verify ``fn``'s analytic gradients with central finite differences.

    ``fn`` is called as ``fn(*tensors)`` where each input is wrapped in a
    gradient-requiring :class:`~repro.nn.tensor.Tensor`; it must be
    deterministic across calls (re-seed any RNG it uses internally).  The
    (possibly non-scalar) output is reduced against a fixed random projection
    ``v`` so a single backward pass covers every output element, and each
    element of every input — plus every :class:`Parameter` passed via
    ``params`` — is perturbed by ``±eps``.

    Returns the maximum relative error
    ``|analytic − numeric| / max(1, |analytic|, |numeric|)`` over all
    elements; raises :class:`SanitizerError` when it exceeds ``tol`` (unless
    ``raise_on_error=False``).
    """
    from repro.nn.tensor import Tensor, no_grad

    tensors = []
    for value in inputs:
        tensor = value if isinstance(value, Tensor) else Tensor(
            np.asarray(value, dtype=np.float64))
        tensor.requires_grad = True
        tensors.append(tensor)
    leaves = tensors + [p for p in params]

    output = fn(*tensors)
    rng = np.random.default_rng(seed)
    projection = rng.normal(size=output.shape) if output.shape else np.ones(())
    for leaf in leaves:
        leaf.grad = None
    scalar = (output * Tensor(projection)).sum()
    scalar.backward()
    analytic = [leaf.grad if leaf.grad is not None else np.zeros_like(leaf.data)
                for leaf in leaves]

    def evaluate() -> float:
        with no_grad():
            return float((fn(*tensors).data * projection).sum())

    max_error = 0.0
    worst = ""
    for position, (leaf, grad) in enumerate(zip(leaves, analytic)):
        data = leaf.data
        indices = np.ndindex(data.shape) if data.shape else [()]
        for index in indices:
            original = data[index]
            data[index] = original + eps
            plus = evaluate()
            data[index] = original - eps
            minus = evaluate()
            data[index] = original
            numeric = (plus - minus) / (2.0 * eps)
            value = float(grad[index]) if grad.shape else float(grad)
            error = abs(value - numeric) / max(1.0, abs(value), abs(numeric))
            if error > max_error:
                max_error = error
                worst = (f"leaf {position} index {index}: "
                         f"analytic {value:.3e} vs numeric {numeric:.3e}")
    if raise_on_error and max_error > tol:
        raise SanitizerError(
            f"gradcheck failed: max relative error {max_error:.3e} > {tol:.1e} "
            f"({worst})")
    return max_error


def record_tape_guard(parents: Tuple) -> Tuple:
    """Snapshot ``(parent, version, checksum)`` for each parent tensor."""
    return tuple((parent, parent._version, checksum(parent.data))
                 for parent in parents)


def verify_tape_guard(guard: Tuple, op: str) -> None:
    """Raise if any guarded parent array changed since the op was recorded."""
    for parent, version, fingerprint in guard:
        if parent._version != version:
            raise SanitizerError(
                f"array feeding op '{op}' was reassigned (version {version} -> "
                f"{parent._version}) while still referenced by the tape; "
                "finish backward() before updating parameters")
        if checksum(parent.data) != fingerprint:
            raise SanitizerError(
                f"array feeding op '{op}' was mutated in place while still "
                "referenced by the tape; backward() would use stale values")
