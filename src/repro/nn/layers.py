"""Neural-network modules built on :class:`repro.nn.tensor.Tensor`.

The module system mirrors the familiar ``torch.nn`` conventions (parameters
registered by attribute assignment, ``state_dict`` round-trips, train/eval
mode for dropout) so the TURL model code above reads like standard deep
learning code.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.hooks import FORWARD_HOOK
from repro.nn.sanitize import SANITIZER, SanitizerError
from repro.nn.tensor import Parameter, Tensor


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` attributes in
    ``__init__``; these are discovered automatically for optimization and
    serialization.
    """

    def __init__(self) -> None:
        self.training = True

    # -- parameter/module discovery -----------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{i}.")
                    elif isinstance(item, Parameter):
                        yield f"{full}.{i}", item

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(dotted.path, module)`` pairs, this module included.

        List/tuple children are addressed by index, matching the naming of
        :meth:`named_parameters` (``encoder.blocks.3.attention``).
        """
        yield prefix.rstrip("."), self
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Module):
                yield from value.named_modules(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_modules(prefix=f"{full}.{i}.")

    # -- train/eval mode ----------------------------------------------
    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.grad = None

    # -- serialization --------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True,
                        copy: bool = True) -> None:
        """Load ``state`` into this module's parameters.

        ``copy=False`` binds the checkpoint arrays directly instead of
        heap-copying them — the zero-copy path for serving workers reading a
        memory-mapped state dict (:func:`repro.nn.serialization.load_state`
        with ``mmap=True``): every worker then shares the file-backed pages.
        Such parameters are read-only; training rebinds them to fresh heap
        arrays on the first optimizer step, so inference-only use is the
        intended regime.
        """
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, parameter in own.items():
            if name not in state:
                continue
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != parameter.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: checkpoint {value.shape} vs model {parameter.data.shape}"
                )
            parameter.data = value.copy() if copy else value

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- call protocol ---------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def _instrumented_call(self, *args, **kwargs):
        hooked = FORWARD_HOOK.enabled
        if hooked:
            FORWARD_HOOK.enter(self)
        try:
            if SANITIZER.enabled:
                # Attribute sanitizer failures to the module path: each
                # enclosing module prepends its class name, so a NaN raised
                # deep inside an op surfaces as e.g.
                # "TURLModel: TransformerBlock: ...".
                try:
                    return self.forward(*args, **kwargs)
                except SanitizerError as error:
                    raise SanitizerError(
                        f"{type(self).__name__}: {error}") from None
            return self.forward(*args, **kwargs)
        finally:
            if hooked:
                FORWARD_HOOK.exit(self)

    def __call__(self, *args, **kwargs):
        if SANITIZER.enabled or FORWARD_HOOK.enabled:
            return self._instrumented_call(*args, **kwargs)
        return self.forward(*args, **kwargs)


@contextmanager
def eval_mode(module: Module):
    """Run a block with ``module`` in eval mode, restoring the caller's mode.

    Every inference path (``predict`` / ``rank`` / evaluation probes) must use
    this instead of a bare ``module.eval()`` so that interleaving evaluation
    with training never silently leaves the model in the wrong mode.
    """
    was_training = module.training
    module.eval()
    try:
        yield module
    finally:
        if was_training:
            module.train()


def _glorot(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


class Linear(Module):
    """Affine transform ``y = x W + b`` over the last axis."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator,
                 bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(_glorot(rng, in_features, out_features))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator,
                 scale: float = 0.02):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(rng.normal(0.0, scale, size=(num_embeddings, dim)))

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding id out of range [0, {self.num_embeddings}): "
                f"min={ids.min()}, max={ids.max()}"
            )
        return self.weight.take_rows(ids)


class LayerNorm(Module):
    """Layer normalization over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(np.ones(dim))
        self.bias = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        return x.layer_norm(self.weight, self.bias, eps=self.eps)


class Dropout(Module):
    """Inverted dropout, active only in training mode."""

    def __init__(self, rate: float, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.rate == 0.0:
            return x
        return x.dropout(self.rate, self.rng)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.steps = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for step in self.steps:
            x = step(x)
        return x


class ModuleList(Module):
    """Container registering a list of sub-modules."""

    def __init__(self, modules: Sequence[Module] = ()):
        super().__init__()
        self.items = list(modules)

    def append(self, module: Module) -> None:
        self.items.append(module)

    def __iter__(self):
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, index: int) -> Module:
        return self.items[index]
