"""Multi-head scaled dot-product attention with an additive visibility mask.

Equation (4) of the paper: attention logits are masked by the visibility
matrix ``M`` before the softmax.  We implement the mask additively — masked
positions receive a large negative logit — which is numerically equivalent to
the paper's element-wise product formulation for binary masks and is the
standard trick used by Transformer implementations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import Dropout, Linear, Module
from repro.nn.tensor import Tensor

MASKED_LOGIT = -1e9


class MultiHeadAttention(Module):
    """Multi-head self-attention.

    Parameters
    ----------
    dim:
        Model (input/output) dimension, ``d_model`` in the paper.
    num_heads:
        Number of attention heads ``k``; must divide ``dim``.
    """

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator,
                 dropout: float = 0.0):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.query = Linear(dim, dim, rng)
        self.key = Linear(dim, dim, rng)
        self.value = Linear(dim, dim, rng)
        self.output = Linear(dim, dim, rng)
        self.dropout = Dropout(dropout, rng=np.random.default_rng(rng.integers(2**31)))

    def _split_heads(self, x: Tensor, batch: int, length: int) -> Tensor:
        # (B, L, D) -> (B, H, L, Dh)
        return x.reshape(batch, length, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, hidden: Tensor, visibility: Optional[np.ndarray] = None) -> Tensor:
        """Apply self-attention.

        Parameters
        ----------
        hidden:
            Input of shape ``(batch, length, dim)``.
        visibility:
            Optional boolean array of shape ``(batch, length, length)`` (or
            ``(length, length)``); ``True`` means *visible*.  Invisible pairs
            get ``MASKED_LOGIT`` added before the softmax.
        """
        batch, length, _ = hidden.shape
        q = self._split_heads(self.query(hidden), batch, length)
        k = self._split_heads(self.key(hidden), batch, length)
        v = self._split_heads(self.value(hidden), batch, length)

        logits = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(self.head_dim))
        if visibility is not None:
            mask = np.asarray(visibility, dtype=bool)
            if mask.ndim == 2:
                mask = np.broadcast_to(mask[None, :, :], (batch, length, length))
            if mask.shape != (batch, length, length):
                raise ValueError(
                    f"visibility shape {mask.shape} incompatible with ({batch}, {length}, {length})"
                )
            # Broadcast over the head axis.
            logits = logits.masked_fill(~mask[:, None, :, :], MASKED_LOGIT)

        weights = logits.softmax(axis=-1)
        weights = self.dropout(weights)
        context = weights @ v  # (B, H, L, Dh)
        context = context.transpose(0, 2, 1, 3).reshape(batch, length, self.dim)
        return self.output(context)
