"""Multi-head scaled dot-product attention with an additive visibility mask.

Equation (4) of the paper: attention logits are masked by the visibility
matrix ``M`` before the softmax.  We implement the mask additively — masked
positions receive a large negative logit — which is numerically equivalent to
the paper's element-wise product formulation for binary masks and is the
standard trick used by Transformer implementations.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.nn.layers import Dropout, Linear, Module
from repro.nn.tensor import Tensor

MASKED_LOGIT = -1e9


class AdditiveVisibilityMask:
    """A visibility matrix precompiled into an additive float logit mask.

    Wraps the boolean visibility array and lazily materializes the
    ``(B, 1, L, L)`` float mask (``0`` where visible, :data:`MASKED_LOGIT`
    where not) exactly once — :meth:`repro.core.model.TURLModel.encode`
    builds one wrapper per batch, so every attention layer shares the same
    precomputed mask instead of re-deriving a boolean broadcast per layer.
    Numerically this is bit-identical to the boolean ``masked_fill`` path:
    ``exp(x + MASKED_LOGIT)`` and ``exp(MASKED_LOGIT)`` both underflow to
    exactly ``0.0`` after the softmax's max-shift.
    """

    def __init__(self, visibility: np.ndarray):
        self.visibility = np.asarray(visibility, dtype=bool)
        if self.visibility.ndim not in (2, 3):
            raise ValueError(
                f"visibility must be (L, L) or (B, L, L), got shape "
                f"{self.visibility.shape}")
        self._additive: Optional[Tensor] = None

    def check_shape(self, batch: int, length: int) -> None:
        shape = self.visibility.shape
        expected = ((length, length) if self.visibility.ndim == 2
                    else (batch, length, length))
        if shape != expected:
            raise ValueError(
                f"visibility shape {shape} incompatible with "
                f"({batch}, {length}, {length})")

    def additive(self) -> Tensor:
        """The cached ``(B, 1, L, L)`` additive mask as a constant Tensor."""
        if self._additive is None:
            mask = self.visibility
            if mask.ndim == 2:
                mask = mask[None, :, :]
            self._additive = Tensor(
                np.where(mask, 0.0, MASKED_LOGIT)[:, None, :, :])
        return self._additive


#: What attention layers accept as a mask: a boolean visibility array or a
#: batch-level precompiled :class:`AdditiveVisibilityMask`.
VisibilityLike = Union[np.ndarray, AdditiveVisibilityMask]


def derive_dropout_rng(rng: np.random.Generator,
                       spawn: bool = False) -> np.random.Generator:
    """Derive a per-layer dropout RNG from a parent generator.

    ``spawn=False`` (the historical default) reseeds from
    ``rng.integers(2**31)`` — a 31-bit draw, so two layers of one model can
    collide and share a dropout stream.  ``spawn=True`` uses the
    SeedSequence spawn protocol, which guarantees statistically independent,
    collision-free child streams; it also leaves the parent stream's state
    untouched, so downstream initialization draws shift.  The flag is
    surfaced as ``TURLConfig.spawn_dropout_rng`` and defaults off to keep
    committed goldens bit-identical.
    """
    if spawn:
        return rng.spawn(1)[0]
    return np.random.default_rng(rng.integers(2**31))


class MultiHeadAttention(Module):
    """Multi-head self-attention.

    Parameters
    ----------
    dim:
        Model (input/output) dimension, ``d_model`` in the paper.
    num_heads:
        Number of attention heads ``k``; must divide ``dim``.
    spawn_dropout_rng:
        When ``True``, the dropout RNG is derived via
        :func:`derive_dropout_rng`'s spawn path (collision-free child
        streams); the default ``False`` keeps the historical
        ``rng.integers(2**31)`` reseeding, which can collide across layers
        but is what every committed golden was trained with.
    """

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator,
                 dropout: float = 0.0, spawn_dropout_rng: bool = False):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.query = Linear(dim, dim, rng)
        self.key = Linear(dim, dim, rng)
        self.value = Linear(dim, dim, rng)
        self.output = Linear(dim, dim, rng)
        self.dropout = Dropout(dropout,
                               rng=derive_dropout_rng(rng, spawn_dropout_rng))

    def _split_heads(self, x: Tensor, batch: int, length: int) -> Tensor:
        # (B, L, D) -> (B, H, L, Dh)
        return x.reshape(batch, length, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, hidden: Tensor,
                visibility: Optional[VisibilityLike] = None) -> Tensor:
        """Apply self-attention.

        Parameters
        ----------
        hidden:
            Input of shape ``(batch, length, dim)``.
        visibility:
            Optional boolean array of shape ``(batch, length, length)`` (or
            ``(length, length)``) — ``True`` means *visible* — or a
            precompiled :class:`AdditiveVisibilityMask` (built once per batch
            by the model, shared across layers).  Invisible pairs get
            ``MASKED_LOGIT`` added before the softmax.
        """
        batch, length, _ = hidden.shape
        q = self._split_heads(self.query(hidden), batch, length)
        k = self._split_heads(self.key(hidden), batch, length)
        v = self._split_heads(self.value(hidden), batch, length)

        logits = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(self.head_dim))
        if visibility is not None:
            if not isinstance(visibility, AdditiveVisibilityMask):
                visibility = AdditiveVisibilityMask(visibility)
            visibility.check_shape(batch, length)
            # Broadcast over the head axis; masked logits underflow to zero
            # probability exactly as the boolean reference path does.
            logits = logits + visibility.additive()

        weights = logits.softmax(axis=-1)
        weights = self.dropout(weights)
        context = weights @ v  # (B, H, L, Dh)
        context = context.transpose(0, 2, 1, 3).reshape(batch, length, self.dim)
        return self.output(context)

    def _reference_forward(self, hidden: Tensor,
                           visibility: Optional[VisibilityLike] = None
                           ) -> Tensor:
        """Pre-optimization forward: per-call boolean broadcast + masked_fill.

        The equivalence-test oracle and ``repro.bench`` baseline for the
        additive-mask fast path; must stay byte-for-byte the old behaviour.
        """
        batch, length, _ = hidden.shape
        q = self._split_heads(self.query(hidden), batch, length)
        k = self._split_heads(self.key(hidden), batch, length)
        v = self._split_heads(self.value(hidden), batch, length)

        logits = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(self.head_dim))
        if visibility is not None:
            if isinstance(visibility, AdditiveVisibilityMask):
                visibility = visibility.visibility
            mask = np.asarray(visibility, dtype=bool)
            if mask.ndim == 2:
                mask = np.broadcast_to(mask[None, :, :], (batch, length, length))
            if mask.shape != (batch, length, length):
                raise ValueError(
                    f"visibility shape {mask.shape} incompatible with ({batch}, {length}, {length})"
                )
            # Broadcast over the head axis.
            logits = logits.masked_fill(~mask[:, None, :, :], MASKED_LOGIT)

        weights = logits.softmax(axis=-1)
        weights = self.dropout(weights)
        context = weights @ v  # (B, H, L, Dh)
        context = context.transpose(0, 2, 1, 3).reshape(batch, length, self.dim)
        return self.output(context)
