"""Reverse-mode automatic differentiation over NumPy arrays.

The :class:`Tensor` class wraps a ``numpy.ndarray`` and records the operations
applied to it so gradients can be computed with :meth:`Tensor.backward`.  The
design follows the classic define-by-run tape: each op returns a new tensor
holding a closure that, given the upstream gradient, accumulates gradients
into its parents.

Only the operations needed by the TURL model family are implemented, but each
is implemented with full broadcasting support so the layers above can be
written naturally.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.nn.hooks import TAPE_HOOK
from repro.nn.sanitize import (
    SANITIZER,
    SanitizerError,
    assert_finite_array,
    op_name,
    record_tape_guard,
    verify_tape_guard,
)

ArrayLike = Union[np.ndarray, float, int, "Tensor"]

# Per-thread switch used by ``no_grad`` to disable graph construction during
# evaluation, which keeps inference memory flat.  Thread-local (rather than
# process-global) so concurrent serving workers can each run their own
# inference block without one worker's ``no_grad`` exit re-enabling gradient
# recording mid-predict on another; single-threaded behavior is unchanged.
_GRAD_STATE = threading.local()


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient tracking inside its block."""
    previous = getattr(_GRAD_STATE, "enabled", True)
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def is_grad_enabled() -> bool:
    """Whether new operations currently record into the autograd tape
    (on the calling thread)."""
    return getattr(_GRAD_STATE, "enabled", True)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, inverting NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were 1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


class Tensor:
    """A NumPy array with reverse-mode autograd.

    Parameters
    ----------
    data:
        Array contents; converted to ``float64`` for numerical robustness.
    requires_grad:
        Whether gradients should be accumulated into ``self.grad``.
    """

    __slots__ = ("_data", "grad", "requires_grad", "_backward", "_parents",
                 "_version", "_op", "_tape_guard", "_tape_path")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
    ):
        if isinstance(data, Tensor):
            data = data.data
        self._version = 0
        self._data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._parents = _parents if self.requires_grad or _parents else ()
        self._backward = _backward
        self._op: Optional[str] = None
        self._tape_guard = None
        self._tape_path = None

    @property
    def data(self) -> np.ndarray:
        """The wrapped array.

        Rebinding ``tensor.data`` bumps a per-tensor version counter so the
        opt-in sanitizer (:mod:`repro.nn.sanitize`) can detect updates to
        arrays the autograd tape still references.  Raw ``.data`` indexing or
        assignment outside :mod:`repro.nn` silently detaches gradients and is
        rejected by lint rule TEN001.
        """
        return self._data

    @data.setter
    def data(self, value: np.ndarray) -> None:
        self._data = value
        self._version += 1

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        if SANITIZER.enabled:
            assert_finite_array(data, f"output of op '{op_name(backward)}'")
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data)
        out = Tensor(data, requires_grad=True)
        out._parents = tuple(parents)
        out._backward = backward
        if SANITIZER.enabled:
            out._op = op_name(backward)
            out._tape_guard = record_tape_guard(out._parents)
        if TAPE_HOOK.enabled:
            out._tape_path = TAPE_HOOK.tag()
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if SANITIZER.enabled and grad.shape != self._data.shape:
            raise SanitizerError(
                f"gradient shape {grad.shape} != data shape {self._data.shape} "
                f"for tensor created by op '{self._op or '<leaf>'}'")
        if self.grad is None:
            self.grad = grad.copy() if grad.base is not None or grad.flags.writeable is False else grad
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to 1.0 and is only optional for scalar outputs.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without an explicit gradient requires a scalar output")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)
        sanitizing = SANITIZER.enabled
        if sanitizing and grad.shape != self._data.shape:
            raise SanitizerError(
                f"backward() gradient shape {grad.shape} != output shape "
                f"{self._data.shape}")

        # Topological order over the graph reachable from self.
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        if sanitizing and len(order) != len({id(node) for node in order}):
            raise SanitizerError(
                "topological sweep visited a node twice; the tape is corrupt")

        self._accumulate(grad)
        # Snapshot once: a hook toggled mid-backward must not split the pass.
        tape_hook = TAPE_HOOK if TAPE_HOOK.enabled else None
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                if sanitizing:
                    if node._tape_guard is not None:
                        verify_tape_guard(node._tape_guard, node._op or "<unknown>")
                    assert_finite_array(
                        node.grad,
                        f"gradient flowing into op '{node._op or '<leaf>'}'")
                if tape_hook is not None and node._tape_path is not None:
                    tape_hook.run(node._tape_path, node._backward, node.grad)
                else:
                    node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other_t.data

        def backward(g: np.ndarray) -> None:
            self._accumulate(_unbroadcast(g, self.shape))
            other_t._accumulate(_unbroadcast(g, other_t.shape))

        return Tensor._make(data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            self._accumulate(-g)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other_t.data

        def backward(g: np.ndarray) -> None:
            self._accumulate(_unbroadcast(g, self.shape))
            other_t._accumulate(_unbroadcast(-g, other_t.shape))

        return Tensor._make(data, (self, other_t), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other_t.data

        def backward(g: np.ndarray) -> None:
            self._accumulate(_unbroadcast(g * other_t.data, self.shape))
            other_t._accumulate(_unbroadcast(g * self.data, other_t.shape))

        return Tensor._make(data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other_t.data

        def backward(g: np.ndarray) -> None:
            self._accumulate(_unbroadcast(g / other_t.data, self.shape))
            other_t._accumulate(
                _unbroadcast(-g * self.data / (other_t.data**2), other_t.shape)
            )

        return Tensor._make(data, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        data = self.data**exponent

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        # Promote 1-D operands (NumPy matmul semantics) via reshape so the
        # batched backward below only ever sees >= 2-D arrays.
        if self.ndim == 1 and other_t.ndim == 1:
            return (self * other_t).sum()
        if self.ndim == 1:
            return (self.reshape(1, -1) @ other_t).squeeze(-2)
        if other_t.ndim == 1:
            return (self @ other_t.reshape(-1, 1)).squeeze(-1)
        data = self.data @ other_t.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                ga = g @ np.swapaxes(other_t.data, -1, -2)
                self._accumulate(_unbroadcast(ga, self.shape))
            if other_t.requires_grad:
                gb = np.swapaxes(self.data, -1, -2) @ g
                other_t._accumulate(_unbroadcast(gb, other_t.shape))

        return Tensor._make(data, (self, other_t), backward)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * data)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g / self.data)

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * (1.0 - data**2))

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable sigmoid: branch on sign to avoid overflow.
        data = np.empty_like(self.data)
        positive = self.data >= 0
        data[positive] = 1.0 / (1.0 + np.exp(-self.data[positive]))
        exp_x = np.exp(self.data[~positive])
        data[~positive] = exp_x / (1.0 + exp_x)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * data * (1.0 - data))

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * mask)

        return Tensor._make(data, (self,), backward)

    def gelu(self) -> "Tensor":
        """GELU activation (tanh approximation, as used by BERT)."""
        c = np.sqrt(2.0 / np.pi)
        x = self.data
        inner = c * (x + 0.044715 * x**3)
        t = np.tanh(inner)
        data = 0.5 * x * (1.0 + t)

        def backward(g: np.ndarray) -> None:
            dinner = c * (1.0 + 3 * 0.044715 * x**2)
            local = 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t**2) * dinner
            self._accumulate(g * local)

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    # ------------------------------------------------------------------
    # Reductions and shape ops
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            grad = g
            if axis is not None and not keepdims:
                axes = (axis,) if np.isscalar(axis) else tuple(axis)
                axes = tuple(a % self.ndim for a in axes)
                shape = [1 if i in axes else n for i, n in enumerate(self.shape)]
                grad = grad.reshape(shape)
            self._accumulate(np.broadcast_to(grad, self.shape).copy())

        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = (axis,) if np.isscalar(axis) else tuple(axis)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            grad = g
            expanded = data
            if axis is not None and not keepdims:
                axes = (axis,) if np.isscalar(axis) else tuple(axis)
                axes = tuple(a % self.ndim for a in axes)
                shape = [1 if i in axes else n for i, n in enumerate(self.shape)]
                grad = grad.reshape(shape)
                expanded = data.reshape(shape)
            mask = self.data == expanded
            # Split gradient evenly across ties to keep it a valid subgradient.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(np.broadcast_to(grad, self.shape) * mask / counts)

        return Tensor._make(data, (self,), backward)

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        data = self.data.reshape(shape)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g.reshape(original))

        return Tensor._make(data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g.transpose(inverse))

        return Tensor._make(data, (self,), backward)

    def squeeze(self, axis: int) -> "Tensor":
        """Drop a size-1 axis (implemented as a reshape)."""
        axis = axis % self.ndim
        if self.shape[axis] != 1:
            raise ValueError(f"cannot squeeze axis {axis} of shape {self.shape}")
        shape = list(self.shape)
        shape.pop(axis)
        return self.reshape(tuple(shape))

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(tuple(axes))

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(g: np.ndarray) -> None:
            grad = np.zeros_like(self.data)
            np.add.at(grad, index, g)
            self._accumulate(grad)

        return Tensor._make(data, (self,), backward)

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Embedding-style gather of rows; grad is scatter-added.

        ``indices`` may have any shape; result shape is ``indices.shape + (dim,)``.
        """
        indices = np.asarray(indices, dtype=np.int64)
        data = self.data[indices]

        def backward(g: np.ndarray) -> None:
            grad = np.zeros_like(self.data)
            np.add.at(grad, indices.reshape(-1), g.reshape(-1, self.shape[-1]))
            self._accumulate(grad)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Fused numerical ops
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(g: np.ndarray) -> None:
            dot = (g * data).sum(axis=axis, keepdims=True)
            self._accumulate(data * (g - dot))

        return Tensor._make(data, (self,), backward)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        data = shifted - log_norm
        softmax = np.exp(data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g - softmax * g.sum(axis=axis, keepdims=True))

        return Tensor._make(data, (self,), backward)

    def layer_norm(self, weight: "Tensor", bias: "Tensor", eps: float = 1e-5) -> "Tensor":
        """Fused layer normalization over the last axis."""
        mu = self.data.mean(axis=-1, keepdims=True)
        centered = self.data - mu
        var = (centered**2).mean(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + eps)
        normalized = centered * inv_std
        data = normalized * weight.data + bias.data

        def backward(g: np.ndarray) -> None:
            if weight.requires_grad:
                weight._accumulate(
                    _unbroadcast(g * normalized, weight.shape)
                )
            if bias.requires_grad:
                bias._accumulate(_unbroadcast(g, bias.shape))
            if self.requires_grad:
                gx_hat = g * weight.data
                mean_g = gx_hat.mean(axis=-1, keepdims=True)
                mean_gx = (gx_hat * normalized).mean(axis=-1, keepdims=True)
                self._accumulate(inv_std * (gx_hat - mean_g - normalized * mean_gx))

        return Tensor._make(data, (self, weight, bias), backward)

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Return a copy with positions where ``mask`` is True set to ``value``."""
        mask = np.asarray(mask, dtype=bool)
        data = np.where(mask, value, self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(np.where(mask, 0.0, g))

        return Tensor._make(data, (self,), backward)

    def dropout(self, rate: float, rng: np.random.Generator) -> "Tensor":
        """Inverted dropout; identity when ``rate`` is 0."""
        if rate <= 0.0:
            return self
        keep = 1.0 - rate
        mask = (rng.random(self.shape) < keep) / keep
        return self * Tensor(mask)


class Parameter(Tensor):
    """A trainable tensor; always requires grad."""

    def __init__(self, data: ArrayLike):
        super().__init__(data, requires_grad=True)


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = list(tensors)
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis if axis >= 0 else t.ndim + axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * g.ndim
            index[axis] = slice(start, stop)
            tensor._accumulate(g[tuple(index)])

    return Tensor._make(data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient routing."""
    tensors = list(tensors)
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray) -> None:
        pieces = np.split(g, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(data, tuple(tensors), backward)
