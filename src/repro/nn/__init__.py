"""Minimal neural-network substrate on NumPy.

This package implements everything TURL needs from a deep-learning framework:
a reverse-mode autograd :class:`~repro.nn.tensor.Tensor`, standard layers
(:class:`Linear`, :class:`Embedding`, :class:`LayerNorm`, :class:`Dropout`),
multi-head attention with additive masks, Transformer encoder blocks, the
Adam optimizer with linear learning-rate decay, and the loss functions used
by the pre-training and fine-tuning objectives.

The paper trains with PyTorch on GPUs; this substrate reproduces the same
computations on CPU so that the full pre-train/fine-tune pipeline runs
end-to-end without external dependencies.
"""

from repro.nn.tensor import (
    Tensor,
    Parameter,
    concat,
    stack,
    no_grad,
    is_grad_enabled,
)
from repro.nn.hooks import FORWARD_HOOK, TAPE_HOOK, ForwardHook, TapeHook
from repro.nn.sanitize import (
    SanitizerError,
    assert_finite_module,
    gradcheck,
    sanitize_ops,
    sanitizer_enabled,
)
from repro.nn.layers import (
    Module,
    Linear,
    Embedding,
    LayerNorm,
    Dropout,
    Sequential,
    ModuleList,
    eval_mode,
)
from repro.nn.attention import MultiHeadAttention
from repro.nn.transformer import TransformerBlock, TransformerEncoder
from repro.nn.optim import Adam, SGD, LinearDecaySchedule, ConstantSchedule, clip_grad_norm
from repro.nn.losses import (
    cross_entropy_logits,
    binary_cross_entropy_logits,
    masked_cross_entropy,
)
from repro.nn.serialization import save_state_dict, load_state_dict

__all__ = [
    "Tensor",
    "Parameter",
    "concat",
    "stack",
    "no_grad",
    "is_grad_enabled",
    "FORWARD_HOOK",
    "TAPE_HOOK",
    "ForwardHook",
    "TapeHook",
    "SanitizerError",
    "sanitize_ops",
    "sanitizer_enabled",
    "assert_finite_module",
    "gradcheck",
    "Module",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "Sequential",
    "ModuleList",
    "eval_mode",
    "MultiHeadAttention",
    "TransformerBlock",
    "TransformerEncoder",
    "Adam",
    "SGD",
    "LinearDecaySchedule",
    "ConstantSchedule",
    "clip_grad_norm",
    "cross_entropy_logits",
    "binary_cross_entropy_logits",
    "masked_cross_entropy",
    "save_state_dict",
    "load_state_dict",
]
