"""Instrumentation hook points for the module system and autograd tape.

Two process-global hooks let an external profiler observe the nn substrate
without the substrate importing it (``repro.obs`` depends on nothing in
``repro.nn``, and the dependency must not reverse):

- :data:`FORWARD_HOOK` — entered/exited around every ``Module.__call__``.
  The profiler installs ``enter(module)`` / ``exit(module)`` callbacks and
  attributes wall time + peak memory to the module's path.
- :data:`TAPE_HOOK` — consulted by :meth:`Tensor._make` to tag each tape
  node with the layer that created it (``tag()``), and by
  :meth:`Tensor.backward` to run a node's backward closure under the
  profiler's timing wrapper (``run(tag, backward_fn, grad)``).

Both hooks are disabled by default; the disabled-path cost is one
attribute read per module call / tape node.  This module performs no clock
reads itself — timing lives in the installer (``repro.obs.profiler``), so
the single-clock-gateway rule (CLK001) holds.
"""

from __future__ import annotations

from typing import Any, Callable, Optional


def _noop_module(module: Any) -> None:
    return None


def _noop_tag() -> Optional[Any]:
    return None


def _passthrough_run(tag: Any, backward_fn: Callable, grad: Any) -> None:
    backward_fn(grad)


class ForwardHook:
    """Enter/exit callbacks wrapped around every ``Module.__call__``."""

    __slots__ = ("enabled", "enter", "exit")

    def __init__(self):
        self.enabled = False
        self.enter: Callable[[Any], None] = _noop_module
        self.exit: Callable[[Any], None] = _noop_module

    def install(self, enter: Callable[[Any], None],
                exit: Callable[[Any], None]) -> None:
        if self.enabled:
            raise RuntimeError("a forward hook is already installed")
        self.enter = enter
        self.exit = exit
        self.enabled = True

    def uninstall(self) -> None:
        self.enabled = False
        self.enter = _noop_module
        self.exit = _noop_module


class TapeHook:
    """Tape-node tagging plus a timing wrapper for backward closures."""

    __slots__ = ("enabled", "tag", "run")

    def __init__(self):
        self.enabled = False
        #: returns the tag (layer path) for tensors created right now
        self.tag: Callable[[], Optional[Any]] = _noop_tag
        #: runs ``backward_fn(grad)`` attributing its cost to ``tag``
        self.run: Callable[[Any, Callable, Any], None] = _passthrough_run

    def install(self, tag: Callable[[], Optional[Any]],
                run: Callable[[Any, Callable, Any], None]) -> None:
        if self.enabled:
            raise RuntimeError("a tape hook is already installed")
        self.tag = tag
        self.run = run
        self.enabled = True

    def uninstall(self) -> None:
        self.enabled = False
        self.tag = _noop_tag
        self.run = _passthrough_run


FORWARD_HOOK = ForwardHook()
TAPE_HOOK = TapeHook()
