"""Optimizers and learning-rate schedules.

The paper pre-trains with Adam and a linearly decreasing learning rate
(Section 4.4, "Pre-training details"); both are implemented here, along with
plain SGD (used by baseline models) and global-norm gradient clipping.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.nn.tensor import Parameter


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.
    """
    parameters = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in parameters)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for parameter in parameters:
            parameter.grad = parameter.grad * scale
    return total


class ConstantSchedule:
    """Learning rate that never changes."""

    def __init__(self, learning_rate: float):
        self.learning_rate = learning_rate

    def __call__(self, step: int) -> float:
        return self.learning_rate


class LinearDecaySchedule:
    """Linear decay from ``learning_rate`` to ``final_fraction * learning_rate``.

    Matches the paper's "linearly decreasing learning rate" over a known
    number of total steps, with an optional linear warmup.
    """

    def __init__(self, learning_rate: float, total_steps: int,
                 warmup_steps: int = 0, final_fraction: float = 0.0):
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.learning_rate = learning_rate
        self.total_steps = total_steps
        self.warmup_steps = warmup_steps
        self.final_fraction = final_fraction

    def __call__(self, step: int) -> float:
        if self.warmup_steps and step < self.warmup_steps:
            return self.learning_rate * (step + 1) / self.warmup_steps
        progress = min(1.0, step / self.total_steps)
        fraction = 1.0 - (1.0 - self.final_fraction) * progress
        return self.learning_rate * max(self.final_fraction, fraction)


class Adam:
    """Adam optimizer (Kingma & Ba, 2015) with bias correction."""

    def __init__(self, parameters: Sequence[Parameter], learning_rate: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0, schedule=None):
        self.parameters: List[Parameter] = list(parameters)
        self.learning_rate = learning_rate
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.schedule = schedule if schedule is not None else ConstantSchedule(learning_rate)
        self.step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        lr = self.schedule(self.step_count)
        self.step_count += 1
        t = self.step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for i, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            self._m[i] = self.beta1 * self._m[i] + (1.0 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1.0 - self.beta2) * grad**2
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            parameter.data = parameter.data - lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.grad = None


class SGD:
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Sequence[Parameter], learning_rate: float = 0.01,
                 momentum: float = 0.0, schedule=None):
        self.parameters: List[Parameter] = list(parameters)
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.schedule = schedule if schedule is not None else ConstantSchedule(learning_rate)
        self.step_count = 0
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        lr = self.schedule(self.step_count)
        self.step_count += 1
        for i, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            if self.momentum:
                self._velocity[i] = self.momentum * self._velocity[i] + parameter.grad
                update = self._velocity[i]
            else:
                update = parameter.grad
            parameter.data = parameter.data - lr * update

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.grad = None
