"""Loss functions for pre-training and fine-tuning.

All losses take raw logits (pre-softmax/sigmoid) and integer or float targets
as plain NumPy arrays, returning a scalar :class:`Tensor`:

- :func:`cross_entropy_logits` — softmax CE used by MLM (Eqn. 5), MER
  (Eqn. 6) and the entity-linking fine-tuning objective.
- :func:`binary_cross_entropy_logits` — multi-label sigmoid CE used by column
  type annotation (Eqn. 11), relation extraction, row population (Eqn. 13)
  and schema augmentation.
- :func:`masked_cross_entropy` — CE over a subset of positions, for batched
  masked-objective training.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.tensor import Tensor


def cross_entropy_logits(logits: Tensor, targets: np.ndarray,
                         ignore_index: Optional[int] = None) -> Tensor:
    """Mean softmax cross-entropy.

    ``logits`` has shape ``(..., num_classes)``; ``targets`` has the leading
    shape with integer class ids.  Positions equal to ``ignore_index``
    contribute nothing.
    """
    targets = np.asarray(targets, dtype=np.int64)
    flat_logits = logits.reshape(-1, logits.shape[-1])
    flat_targets = targets.reshape(-1)
    if ignore_index is not None:
        keep = flat_targets != ignore_index
        if not keep.any():
            raise ValueError("all positions are ignored; empty loss")
        flat_logits = flat_logits[np.where(keep)[0]]
        flat_targets = flat_targets[keep]
    log_probs = flat_logits.log_softmax(axis=-1)
    picked = log_probs[np.arange(len(flat_targets)), flat_targets]
    return -picked.mean()


def binary_cross_entropy_logits(logits: Tensor, targets: np.ndarray,
                                weight: Optional[np.ndarray] = None) -> Tensor:
    """Mean element-wise sigmoid binary cross-entropy.

    Uses the numerically stable formulation
    ``max(x, 0) - x*y + log(1 + exp(-|x|))`` expressed through autograd ops.
    """
    targets = np.asarray(targets, dtype=np.float64)
    if targets.shape != logits.shape:
        raise ValueError(f"targets shape {targets.shape} != logits shape {logits.shape}")
    # Stable BCE: softplus(x) - x*y  ==  max(x,0) - x*y + log1p(exp(-|x|)).
    x = logits
    abs_x = x.relu() + (-x).relu()
    loss = x.relu() - x * Tensor(targets) + ((-abs_x).exp() + 1.0).log()
    if weight is not None:
        loss = loss * Tensor(np.asarray(weight, dtype=np.float64))
    return loss.mean()


def masked_cross_entropy(logits: Tensor, targets: np.ndarray,
                         mask: np.ndarray) -> Tensor:
    """Cross-entropy averaged over positions where ``mask`` is True.

    ``logits``: ``(batch, length, num_classes)``; ``targets``: ``(batch,
    length)``; ``mask``: boolean of the same leading shape.
    """
    mask = np.asarray(mask, dtype=bool)
    if not mask.any():
        raise ValueError("mask selects no positions")
    rows = np.where(mask.reshape(-1))[0]
    flat_logits = logits.reshape(-1, logits.shape[-1])[rows]
    flat_targets = np.asarray(targets, dtype=np.int64).reshape(-1)[mask.reshape(-1)]
    log_probs = flat_logits.log_softmax(axis=-1)
    picked = log_probs[np.arange(len(flat_targets)), flat_targets]
    return -picked.mean()
