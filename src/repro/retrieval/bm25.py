"""Okapi BM25 ranking over a document collection."""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import Dict, List, Sequence, Tuple

from repro.text.tokenizer import basic_tokenize


class BM25Index:
    """An inverted index with BM25 scoring.

    Parameters follow the classic Okapi defaults (``k1=1.5``, ``b=0.75``).
    Documents are identified by the string keys supplied at construction.
    """

    def __init__(self, documents: Dict[str, str], k1: float = 1.5, b: float = 0.75):
        self.k1 = k1
        self.b = b
        self.doc_ids: List[str] = list(documents)
        self._doc_terms: Dict[str, Counter] = {}
        self._doc_lengths: Dict[str, int] = {}
        self._postings: Dict[str, List[str]] = defaultdict(list)

        for doc_id, text in documents.items():
            terms = Counter(basic_tokenize(text))
            self._doc_terms[doc_id] = terms
            self._doc_lengths[doc_id] = sum(terms.values())
            for term in terms:
                self._postings[term].append(doc_id)

        n_docs = max(1, len(documents))
        self._avg_length = (sum(self._doc_lengths.values()) / n_docs) or 1.0
        self._idf: Dict[str, float] = {
            term: math.log(1.0 + (n_docs - len(docs) + 0.5) / (len(docs) + 0.5))
            for term, docs in self._postings.items()
        }

    def __len__(self) -> int:
        return len(self.doc_ids)

    def score(self, query: str, doc_id: str) -> float:
        """BM25 score of one document for ``query``."""
        terms = self._doc_terms.get(doc_id)
        if terms is None:
            raise KeyError(f"unknown document: {doc_id}")
        length_norm = 1.0 - self.b + self.b * self._doc_lengths[doc_id] / self._avg_length
        total = 0.0
        for term in basic_tokenize(query):
            tf = terms.get(term, 0)
            if not tf:
                continue
            idf = self._idf.get(term, 0.0)
            total += idf * tf * (self.k1 + 1.0) / (tf + self.k1 * length_norm)
        return total

    def search(self, query: str, k: int = 10) -> List[Tuple[str, float]]:
        """Top-``k`` documents for ``query`` as ``(doc_id, score)`` pairs."""
        candidates: set = set()
        for term in basic_tokenize(query):
            candidates.update(self._postings.get(term, ()))
        scored = [(doc_id, self.score(query, doc_id)) for doc_id in candidates]
        scored = [(doc_id, s) for doc_id, s in scored if s > 0]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored[:k]
