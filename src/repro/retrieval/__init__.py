"""Retrieval substrate used by candidate generation and baselines.

- :mod:`repro.retrieval.bm25` — Okapi BM25, the candidate-table retrieval
  used by the row-population experiments (Section 6.5);
- :mod:`repro.retrieval.tfidf` — tf-idf vectors + cosine similarity, used by
  the kNN schema-augmentation baseline (Section 6.7);
- :mod:`repro.retrieval.word2vec` — a from-scratch skip-gram model with
  negative sampling, the substrate behind the Table2Vec [11] and H2V
  baselines.
"""

from repro.retrieval.bm25 import BM25Index
from repro.retrieval.tfidf import TfIdfVectorizer, cosine_similarity
from repro.retrieval.word2vec import Word2Vec, Word2VecConfig

__all__ = [
    "BM25Index",
    "TfIdfVectorizer",
    "cosine_similarity",
    "Word2Vec",
    "Word2VecConfig",
]
