"""Skip-gram Word2Vec with negative sampling, from scratch on NumPy.

This is the substrate for the Table2Vec [11] baseline (fixed entity
embeddings trained on serialized tables) and the H2V cell-filling baseline
(header embeddings).  It deliberately reproduces what the paper criticizes
about [11]: a *shallow* model producing one fixed vector per item, with no
context sensitivity — the contrast TURL is evaluated against.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np


@dataclass
class Word2VecConfig:
    dim: int = 32
    window: int = 4
    negatives: int = 5
    epochs: int = 3
    learning_rate: float = 0.05
    min_count: int = 1
    seed: int = 0


class Word2Vec:
    """Skip-gram with negative sampling over token sequences.

    Tokens are arbitrary hashable strings — words, entity ids, or headers —
    so the same model trains word, entity and header embeddings.
    """

    def __init__(self, config: Word2VecConfig = Word2VecConfig()):
        self.config = config
        self.vocabulary: Dict[str, int] = {}
        self.inverse: List[str] = []
        self.input_vectors: np.ndarray = np.zeros((0, config.dim))
        self.output_vectors: np.ndarray = np.zeros((0, config.dim))
        self._sampling: Optional[np.ndarray] = None

    # -- vocabulary ----------------------------------------------------------
    def _build_vocab(self, sentences: Sequence[Sequence[str]]) -> None:
        counts: Counter = Counter()
        for sentence in sentences:
            counts.update(sentence)
        kept = [t for t, c in counts.most_common() if c >= self.config.min_count]
        self.vocabulary = {token: i for i, token in enumerate(kept)}
        self.inverse = kept
        frequencies = np.array([counts[t] for t in kept], dtype=np.float64)
        weights = frequencies**0.75
        self._sampling = weights / weights.sum()

    def __contains__(self, token: str) -> bool:
        return token in self.vocabulary

    # -- training --------------------------------------------------------
    def train(self, sentences: Sequence[Sequence[str]]) -> "Word2Vec":
        """Train on tokenized sentences (lists of string tokens)."""
        config = self.config
        rng = np.random.default_rng(config.seed)
        self._build_vocab(sentences)
        n = len(self.vocabulary)
        if n == 0:
            raise ValueError("empty vocabulary; nothing to train on")
        scale = 0.5 / config.dim
        self.input_vectors = rng.uniform(-scale, scale, size=(n, config.dim))
        self.output_vectors = np.zeros((n, config.dim))

        encoded = [
            [self.vocabulary[t] for t in sentence if t in self.vocabulary]
            for sentence in sentences
        ]
        encoded = [s for s in encoded if len(s) >= 2]

        for _ in range(config.epochs):
            order = rng.permutation(len(encoded))
            for sentence_index in order:
                sentence = encoded[int(sentence_index)]
                for position, center in enumerate(sentence):
                    window = int(rng.integers(1, config.window + 1))
                    start = max(0, position - window)
                    stop = min(len(sentence), position + window + 1)
                    for context_position in range(start, stop):
                        if context_position == position:
                            continue
                        context = sentence[context_position]
                        self._update(center, context, rng)
        return self

    def _update(self, center: int, context: int, rng: np.random.Generator) -> None:
        config = self.config
        negatives = rng.choice(len(self.vocabulary), size=config.negatives,
                               p=self._sampling)
        targets = np.concatenate([[context], negatives])
        labels = np.zeros(len(targets))
        labels[0] = 1.0

        v = self.input_vectors[center]
        u = self.output_vectors[targets]  # (1+neg, dim)
        scores = 1.0 / (1.0 + np.exp(-np.clip(u @ v, -30, 30)))
        gradient = (scores - labels)[:, None]  # d loss / d (u·v)
        grad_v = (gradient * u).sum(axis=0)
        self.output_vectors[targets] -= config.learning_rate * gradient * v[None, :]
        self.input_vectors[center] -= config.learning_rate * grad_v

    # -- queries ------------------------------------------------------------
    def vector(self, token: str) -> Optional[np.ndarray]:
        index = self.vocabulary.get(token)
        if index is None:
            return None
        return self.input_vectors[index]

    def similarity(self, a: str, b: str) -> float:
        va, vb = self.vector(a), self.vector(b)
        if va is None or vb is None:
            return 0.0
        norm = float(np.linalg.norm(va) * np.linalg.norm(vb))
        return float(va @ vb / norm) if norm else 0.0

    def most_similar(self, token: str, k: int = 10) -> List[tuple]:
        v = self.vector(token)
        if v is None:
            return []
        norms = np.linalg.norm(self.input_vectors, axis=1) * np.linalg.norm(v)
        norms[norms == 0] = 1e-12
        scores = self.input_vectors @ v / norms
        order = np.argsort(-scores)
        results = []
        for index in order:
            candidate = self.inverse[int(index)]
            if candidate == token:
                continue
            results.append((candidate, float(scores[int(index)])))
            if len(results) == k:
                break
        return results
