"""tf-idf vectorization and cosine similarity (kNN baseline substrate)."""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, List

import numpy as np

from repro.text.tokenizer import basic_tokenize


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two dense vectors (0 for zero vectors)."""
    norm = float(np.linalg.norm(a) * np.linalg.norm(b))
    if norm == 0.0:
        return 0.0
    return float(a @ b / norm)


class TfIdfVectorizer:
    """Fits idf weights on a corpus and produces dense tf-idf vectors."""

    def __init__(self):
        self.vocabulary: Dict[str, int] = {}
        self.idf: np.ndarray = np.zeros(0)

    def fit(self, documents: Iterable[str]) -> "TfIdfVectorizer":
        documents = list(documents)
        doc_frequency: Counter = Counter()
        for text in documents:
            doc_frequency.update(set(basic_tokenize(text)))
        self.vocabulary = {term: i for i, term in enumerate(sorted(doc_frequency))}
        n_docs = max(1, len(documents))
        self.idf = np.zeros(len(self.vocabulary))
        for term, index in self.vocabulary.items():
            self.idf[index] = math.log((1.0 + n_docs) / (1.0 + doc_frequency[term])) + 1.0
        return self

    def transform(self, text: str) -> np.ndarray:
        """L2-normalized tf-idf vector for ``text``."""
        if not self.vocabulary:
            raise RuntimeError("vectorizer is not fitted")
        vector = np.zeros(len(self.vocabulary))
        for term, count in Counter(basic_tokenize(text)).items():
            index = self.vocabulary.get(term)
            if index is not None:
                vector[index] = count * self.idf[index]
        norm = np.linalg.norm(vector)
        return vector / norm if norm else vector

    def transform_many(self, documents: Iterable[str]) -> np.ndarray:
        return np.stack([self.transform(text) for text in documents])
