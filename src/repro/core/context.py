"""End-to-end pipeline context.

:class:`TURLContext` bundles every artifact the downstream tasks need — the
knowledge base, corpus splits, tokenizer, entity vocabulary, linearizer and
the (optionally pre-trained) model — and :func:`build_context` constructs the
whole pipeline from two config objects, mirroring the paper's Section 5 + 4.4
procedure: synthesize corpus → identify relational tables → partition →
build vocabularies → pre-train.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.config import TURLConfig
from repro.core.candidates import CandidateBuilder
from repro.core.linearize import Linearizer, TableInstance
from repro.core.model import TURLModel
from repro.core.pretrain import Pretrainer, PretrainStats
from repro.core.stream import TableInstanceStream
from repro.data.corpus import CorpusSplits, TableCorpus
from repro.data.dataset import Dataset
from repro.data.preprocessing import filter_relational, partition_corpus
from repro.data.synthesis import SynthesisConfig, build_corpus
from repro.kb.generator import WorldConfig, generate_world
from repro.kb.knowledge_base import KnowledgeBase
from repro.obs import RunJournal
from repro.text.tokenizer import WordPieceTokenizer
from repro.text.vocab import EntityVocabulary


def as_corpus_splits(corpus: Dataset, seed: int = 0) -> CorpusSplits:
    """Materialize any :class:`~repro.data.dataset.Dataset` as splits.

    ``CorpusSplits`` pass through; an unpartitioned ``TableCorpus`` is
    partitioned with the paper's Section 5.1 procedure; anything else (e.g.
    a :class:`~repro.data.shards.ShardedDataset`) contributes its three
    named splits.
    """
    if isinstance(corpus, CorpusSplits):
        return corpus
    if isinstance(corpus, TableCorpus):
        return partition_corpus(corpus, seed=seed)
    return CorpusSplits(TableCorpus(corpus.instances("train")),
                        TableCorpus(corpus.instances("validation")),
                        TableCorpus(corpus.instances("test")))


def pretrain_streaming(dataset: Dataset,
                       model_config: TURLConfig = TURLConfig(),
                       pretrain_epochs: int = 3,
                       vocab_size: int = 4000,
                       entity_min_frequency: int = 2,
                       seed: int = 0,
                       journal: Optional[RunJournal] = None,
                       sanitize: bool = False,
                       shuffle: str = "flat"):
    """Pre-train directly off a dataset without materializing instances.

    The streaming counterpart of :func:`build_context`'s pre-training stage:
    vocabularies are built from the dataset's train split, but the epoch
    loop draws each table through a
    :class:`~repro.core.stream.TableInstanceStream` — decode + linearize
    happen per step, so peak memory stays bounded by one batch regardless of
    corpus size.  With ``shuffle="flat"`` the step sequence is bit-identical
    to the eager in-memory path over the same split; ``shuffle="shard"``
    adds shard-local bucketing for memory-mapped
    :class:`~repro.data.shards.ShardedDataset` corpora.

    Returns ``(model, tokenizer, entity_vocab, stats)``.
    """
    if hasattr(dataset, "metadata_texts"):
        texts = dataset.metadata_texts("train")
        counts = dataset.entity_counts("train")
    else:
        train = TableCorpus(dataset.instances("train"))
        texts = train.metadata_texts()
        counts = train.entity_counts()
    tokenizer = WordPieceTokenizer.train(texts, vocab_size=vocab_size)
    entity_vocab = EntityVocabulary.build_from_counts(
        counts, min_frequency=entity_min_frequency)

    model = TURLModel(len(tokenizer.vocab), len(entity_vocab), model_config,
                      seed=seed)
    linearizer = Linearizer(tokenizer, entity_vocab, model_config)
    candidate_builder = CandidateBuilder(dataset.instances("train"),
                                         entity_vocab, model_config)

    stats = None
    if pretrain_epochs > 0:
        stream = TableInstanceStream(dataset, linearizer, split="train")
        pretrainer = Pretrainer(model, stream, candidate_builder,
                                model_config, seed=seed, journal=journal,
                                sanitize=sanitize, shuffle=shuffle)
        stats = pretrainer.train(n_epochs=pretrain_epochs)
    return model, tokenizer, entity_vocab, stats


@dataclass
class TURLContext:
    """Everything needed to fine-tune / evaluate on downstream tasks."""

    kb: KnowledgeBase
    splits: CorpusSplits
    tokenizer: WordPieceTokenizer
    entity_vocab: EntityVocabulary
    config: TURLConfig
    model: TURLModel
    linearizer: Linearizer
    candidate_builder: CandidateBuilder
    pretrain_stats: Optional[PretrainStats] = None

    def instances_for(self, corpus: TableCorpus) -> List[TableInstance]:
        return [self.linearizer.encode(table) for table in corpus]

    def clone_model(self, seed: int = 0) -> TURLModel:
        """A fresh model with the pre-trained weights copied in — the
        starting point for each fine-tuning run, so tasks never disturb the
        shared pre-trained parameters."""
        clone = TURLModel(self.model.vocab_size, self.model.entity_vocab_size,
                          self.config, seed=seed)
        clone.load_state_dict(self.model.state_dict())
        return clone

    def fresh_model(self, seed: int = 0) -> TURLModel:
        """A randomly initialized model (the "w/o pre-training" ablations)."""
        return TURLModel(self.model.vocab_size, self.model.entity_vocab_size,
                         self.config, seed=seed)


def build_context(world_config: WorldConfig = WorldConfig(),
                  synthesis_config: SynthesisConfig = SynthesisConfig(),
                  model_config: TURLConfig = TURLConfig(),
                  pretrain_epochs: int = 3,
                  vocab_size: int = 4000,
                  entity_min_frequency: int = 2,
                  seed: int = 0,
                  journal: Optional[RunJournal] = None,
                  sanitize: bool = False,
                  shuffle: str = "flat",
                  corpus: Optional[Dataset] = None,
                  kb: Optional[KnowledgeBase] = None) -> TURLContext:
    """Build the full pipeline: world → corpus → vocabularies → pre-training.

    Set ``pretrain_epochs=0`` to skip pre-training (random initialization).
    ``journal`` (a :class:`repro.obs.RunJournal`) records one JSONL event
    per pre-training step; it never alters the seeded result.
    ``shuffle`` selects the pre-training epoch order: ``"flat"`` (the
    historical bit-identical default), ``"bucket"`` (length-bucketed batches
    with no padding waste) or ``"shard"`` (shard-local bucketing; both
    seeded-equivalent, not bit-equal, to flat).

    ``corpus`` accepts any :class:`~repro.data.dataset.Dataset`
    (``TableCorpus``, ``CorpusSplits`` or a memory-mapped
    :class:`~repro.data.shards.ShardedDataset`) in place of in-process
    synthesis; pass the matching ``kb`` for downstream task heads (a fresh
    world is generated from ``world_config`` otherwise).  A full context
    materializes the splits — for RAM-bounded streaming pre-training of a
    checkpoint use :func:`pretrain_streaming` instead.
    """
    if corpus is None:
        kb = generate_world(world_config) if kb is None else kb
        table_corpus = filter_relational(build_corpus(kb, synthesis_config))
        splits = partition_corpus(table_corpus, seed=seed)
    else:
        kb = generate_world(world_config) if kb is None else kb
        splits = as_corpus_splits(corpus, seed=seed)

    tokenizer = WordPieceTokenizer.train(splits.train.metadata_texts(),
                                         vocab_size=vocab_size)
    entity_vocab = EntityVocabulary.build_from_counts(
        splits.train.entity_counts(), min_frequency=entity_min_frequency)

    model = TURLModel(len(tokenizer.vocab), len(entity_vocab), model_config,
                      seed=seed)
    linearizer = Linearizer(tokenizer, entity_vocab, model_config)
    candidate_builder = CandidateBuilder(splits.train, entity_vocab, model_config)

    stats = None
    if pretrain_epochs > 0:
        instances = [linearizer.encode(table) for table in splits.train]
        pretrainer = Pretrainer(model, instances, candidate_builder,
                                model_config, seed=seed, journal=journal,
                                sanitize=sanitize, shuffle=shuffle)
        # With a journal attached, finish with the recovery probe so the
        # journal carries a probe event; the probe runs under no_grad with
        # its own fixed rng, so the trained weights are unaffected.
        eval_instances = None
        if journal is not None:
            eval_instances = [linearizer.encode(table)
                              for table in splits.validation]
        stats = pretrainer.train(n_epochs=pretrain_epochs,
                                 eval_instances=eval_instances)

    return TURLContext(
        kb=kb,
        splits=splits,
        tokenizer=tokenizer,
        entity_vocab=entity_vocab,
        config=model_config,
        model=model,
        linearizer=linearizer,
        candidate_builder=candidate_builder,
        pretrain_stats=stats,
    )
