"""End-to-end pipeline context.

:class:`TURLContext` bundles every artifact the downstream tasks need — the
knowledge base, corpus splits, tokenizer, entity vocabulary, linearizer and
the (optionally pre-trained) model — and :func:`build_context` constructs the
whole pipeline from two config objects, mirroring the paper's Section 5 + 4.4
procedure: synthesize corpus → identify relational tables → partition →
build vocabularies → pre-train.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.config import TURLConfig
from repro.core.candidates import CandidateBuilder
from repro.core.linearize import Linearizer, TableInstance
from repro.core.model import TURLModel
from repro.core.pretrain import Pretrainer, PretrainStats
from repro.data.corpus import CorpusSplits, TableCorpus
from repro.data.preprocessing import filter_relational, partition_corpus
from repro.data.synthesis import SynthesisConfig, build_corpus
from repro.kb.generator import WorldConfig, generate_world
from repro.kb.knowledge_base import KnowledgeBase
from repro.obs import RunJournal
from repro.text.tokenizer import WordPieceTokenizer
from repro.text.vocab import EntityVocabulary


@dataclass
class TURLContext:
    """Everything needed to fine-tune / evaluate on downstream tasks."""

    kb: KnowledgeBase
    splits: CorpusSplits
    tokenizer: WordPieceTokenizer
    entity_vocab: EntityVocabulary
    config: TURLConfig
    model: TURLModel
    linearizer: Linearizer
    candidate_builder: CandidateBuilder
    pretrain_stats: Optional[PretrainStats] = None

    def instances_for(self, corpus: TableCorpus) -> List[TableInstance]:
        return [self.linearizer.encode(table) for table in corpus]

    def clone_model(self, seed: int = 0) -> TURLModel:
        """A fresh model with the pre-trained weights copied in — the
        starting point for each fine-tuning run, so tasks never disturb the
        shared pre-trained parameters."""
        clone = TURLModel(self.model.vocab_size, self.model.entity_vocab_size,
                          self.config, seed=seed)
        clone.load_state_dict(self.model.state_dict())
        return clone

    def fresh_model(self, seed: int = 0) -> TURLModel:
        """A randomly initialized model (the "w/o pre-training" ablations)."""
        return TURLModel(self.model.vocab_size, self.model.entity_vocab_size,
                         self.config, seed=seed)


def build_context(world_config: WorldConfig = WorldConfig(),
                  synthesis_config: SynthesisConfig = SynthesisConfig(),
                  model_config: TURLConfig = TURLConfig(),
                  pretrain_epochs: int = 3,
                  vocab_size: int = 4000,
                  entity_min_frequency: int = 2,
                  seed: int = 0,
                  journal: Optional[RunJournal] = None,
                  sanitize: bool = False,
                  shuffle: str = "flat") -> TURLContext:
    """Build the full pipeline: world → corpus → vocabularies → pre-training.

    Set ``pretrain_epochs=0`` to skip pre-training (random initialization).
    ``journal`` (a :class:`repro.obs.RunJournal`) records one JSONL event
    per pre-training step; it never alters the seeded result.
    ``shuffle`` selects the pre-training epoch order: ``"flat"`` (the
    historical bit-identical default) or ``"bucket"`` (length-bucketed
    batches with no padding waste; seeded-equivalent, not bit-equal).
    """
    kb = generate_world(world_config)
    corpus = filter_relational(build_corpus(kb, synthesis_config))
    splits = partition_corpus(corpus, seed=seed)

    tokenizer = WordPieceTokenizer.train(splits.train.metadata_texts(),
                                         vocab_size=vocab_size)
    entity_vocab = EntityVocabulary.build_from_counts(
        splits.train.entity_counts(), min_frequency=entity_min_frequency)

    model = TURLModel(len(tokenizer.vocab), len(entity_vocab), model_config,
                      seed=seed)
    linearizer = Linearizer(tokenizer, entity_vocab, model_config)
    candidate_builder = CandidateBuilder(splits.train, entity_vocab, model_config)

    stats = None
    if pretrain_epochs > 0:
        instances = [linearizer.encode(table) for table in splits.train]
        pretrainer = Pretrainer(model, instances, candidate_builder,
                                model_config, seed=seed, journal=journal,
                                sanitize=sanitize, shuffle=shuffle)
        # With a journal attached, finish with the recovery probe so the
        # journal carries a probe event; the probe runs under no_grad with
        # its own fixed rng, so the trained weights are unaffected.
        eval_instances = None
        if journal is not None:
            eval_instances = [linearizer.encode(table)
                              for table in splits.validation]
        stats = pretrainer.train(n_epochs=pretrain_epochs,
                                 eval_instances=eval_instances)

    return TURLContext(
        kb=kb,
        splits=splits,
        tokenizer=tokenizer,
        entity_vocab=entity_vocab,
        config=model_config,
        model=model,
        linearizer=linearizer,
        candidate_builder=candidate_builder,
        pretrain_stats=stats,
    )
