"""Streaming bridge from a :class:`~repro.data.dataset.Dataset` to training.

:class:`TableInstanceStream` exposes one split of a corpus as an indexed
collection of :class:`~repro.core.linearize.TableInstance` — decoded and
linearized lazily, one record at a time, so an epoch over a memory-mapped
:class:`~repro.data.shards.ShardedDataset` never materializes the corpus.
Items handed to the engine are plain record positions; the pretraining task
resolves them through :meth:`fetch` at step time.

Because the linearizer is deterministic, a flat-shuffled epoch over a stream
is bit-identical to the same epoch over the eagerly-encoded instance list —
the property the ``corpus_stream`` bench case and ``tools/corpus_smoke.py``
pin down.  Per-item shard and bucket keys come straight from the shard
index (no decode), which is what makes ``shuffle="shard"`` epoch planning
free of I/O.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, Optional

import numpy as np

from repro.core.linearize import Linearizer, TableInstance
from repro.obs import get_registry


class TableInstanceStream:
    """Lazy, indexed view of one split, linearized on access.

    Works with any :class:`~repro.data.dataset.Dataset`; datasets that
    expose per-record index metadata (``split_indices`` / ``bucket_of`` /
    ``shard_of`` / ``fingerprint``, i.e.
    :class:`~repro.data.shards.ShardedDataset`) get exact shard/bucket keys,
    others fall back to single-shard behaviour.
    """

    def __init__(self, dataset, linearizer: Linearizer, split: str = "train"):
        self.dataset = dataset
        self.linearizer = linearizer
        self.split = split
        if hasattr(dataset, "split_indices"):
            self._records = np.asarray(dataset.split_indices(split))
        else:
            self._records = np.arange(len(dataset.instances(split)))
            self._instances = list(dataset.instances(split))

    def __len__(self) -> int:
        return int(self._records.shape[0])

    def __iter__(self) -> Iterator[TableInstance]:
        for position in range(len(self)):
            yield self.fetch(position)

    def fetch(self, position: int) -> TableInstance:
        """Decode + linearize the ``position``-th record of the split."""
        record = int(self._records[position])
        if hasattr(self.dataset, "table"):
            table = self.dataset.table(record)
        else:
            table = self._instances[record]
        get_registry().counter("corpus.stream.instances").inc()
        return self.linearizer.encode(table)

    def bucket_of(self, position: int) -> int:
        """The stored index shape key (no decode); 0 without an index."""
        if hasattr(self.dataset, "bucket_of"):
            return self.dataset.bucket_of(int(self._records[position]))
        return 0

    def shard_of(self, position: int) -> int:
        """The record's payload shard (no decode); 0 without an index."""
        if hasattr(self.dataset, "shard_of"):
            return self.dataset.shard_of(int(self._records[position]))
        return 0

    def fingerprint(self) -> Optional[str]:
        """Content id binding checkpointed stream positions to this corpus."""
        if hasattr(self.dataset, "fingerprint"):
            digest = hashlib.blake2b(digest_size=16)
            digest.update(self.dataset.fingerprint().encode("utf-8"))
            digest.update(self.split.encode("utf-8"))
            return digest.hexdigest()
        return None
