"""The visibility matrix (paper Section 4.3, Figures 4–5).

``M`` is a symmetric binary matrix over all linearized elements:

- caption tokens and the topic entity are visible to (and from) everything;
- header tokens see all metadata plus entity cells of their own column;
- entity cells see metadata of their column plus entity cells in the same
  row or the same column.

The matrix is used as an attention mask (see
:class:`repro.nn.attention.MultiHeadAttention`), restricting each element to
aggregate information only from structurally related elements.
"""

from __future__ import annotations

import numpy as np

from repro.core.linearize import (
    KIND_CAPTION,
    KIND_CELL,
    KIND_HEADER,
    KIND_TOPIC,
    TableInstance,
)


def build_visibility(instance: TableInstance) -> np.ndarray:
    """Build the boolean visibility matrix for one linearized table.

    Returns an ``(L, L)`` symmetric boolean array with ``True`` = visible.
    """
    kinds = instance.element_kinds()
    rows = instance.element_rows()
    cols = instance.element_cols()
    return visibility_from_structure(kinds, rows, cols)


def visibility_from_structure(kinds: np.ndarray, rows: np.ndarray,
                              cols: np.ndarray) -> np.ndarray:
    """Vectorized visibility construction from element structure arrays."""
    kinds = np.asarray(kinds)
    rows = np.asarray(rows)
    cols = np.asarray(cols)
    n = len(kinds)

    is_global = (kinds == KIND_CAPTION) | (kinds == KIND_TOPIC)
    is_header = kinds == KIND_HEADER
    is_cell = kinds == KIND_CELL

    same_col = cols[:, None] == cols[None, :]
    same_row = rows[:, None] == rows[None, :]

    visible = np.zeros((n, n), dtype=bool)
    # Caption tokens / topic entity: globally visible, symmetrically.
    visible |= is_global[:, None]
    visible |= is_global[None, :]
    # Header-header: all table metadata is mutually visible.
    visible |= is_header[:, None] & is_header[None, :]
    # Header <-> entity cell of the same column.
    header_cell = is_header[:, None] & is_cell[None, :] & same_col
    visible |= header_cell
    visible |= header_cell.T
    # Entity cell <-> entity cell in the same row or column.
    visible |= is_cell[:, None] & is_cell[None, :] & (same_row | same_col)
    # Self-visibility always holds.
    np.fill_diagonal(visible, True)
    return visible
