"""The visibility matrix (paper Section 4.3, Figures 4–5).

``M`` is a symmetric binary matrix over all linearized elements:

- caption tokens and the topic entity are visible to (and from) everything;
- header tokens see all metadata plus entity cells of their own column;
- entity cells see metadata of their column plus entity cells in the same
  row or the same column.

The matrix is used as an attention mask (see
:class:`repro.nn.attention.MultiHeadAttention`), restricting each element to
aggregate information only from structurally related elements.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import List, Tuple

import numpy as np

from repro.core.linearize import (
    KIND_CAPTION,
    KIND_CELL,
    KIND_HEADER,
    KIND_TOPIC,
    TableInstance,
)

#: Maximum number of distinct structure triples kept by the LRU cache.
VISIBILITY_CACHE_SIZE = 512

_cache: "OrderedDict[Tuple[bytes, bytes, bytes, int], np.ndarray]" = OrderedDict()
_cache_stats = {"hits": 0, "misses": 0}
# Serving fleets share this module-global cache across worker threads;
# OrderedDict reordering is not atomic, so every access takes the lock.
_cache_lock = threading.Lock()


def cached_visibility(kinds: np.ndarray, rows: np.ndarray,
                      cols: np.ndarray) -> np.ndarray:
    """LRU-cached :func:`visibility_from_structure`.

    The same table structure recurs every epoch (and identical structures
    recur across tables), so the matrix is memoized on the byte content of
    the ``(kinds, rows, cols)`` triple.  The returned array is **read-only**
    — callers that need to mutate it must copy.
    """
    kinds = np.ascontiguousarray(kinds)
    rows = np.ascontiguousarray(rows)
    cols = np.ascontiguousarray(cols)
    key = (kinds.tobytes(), rows.tobytes(), cols.tobytes(), len(kinds))
    with _cache_lock:
        cached = _cache.get(key)
        if cached is not None:
            _cache.move_to_end(key)
            _cache_stats["hits"] += 1
            return cached
    visible = visibility_from_structure(kinds, rows, cols)
    visible.setflags(write=False)
    with _cache_lock:
        _cache[key] = visible
        _cache_stats["misses"] += 1
        if len(_cache) > VISIBILITY_CACHE_SIZE:
            _cache.popitem(last=False)
    return visible


def visibility_cache_stats() -> dict:
    """Current hit/miss counts and entry count of the visibility cache."""
    with _cache_lock:
        return {**_cache_stats, "entries": len(_cache)}


def clear_visibility_cache() -> None:
    """Drop every cached matrix and reset the hit/miss counters."""
    with _cache_lock:
        _cache.clear()
        _cache_stats["hits"] = 0
        _cache_stats["misses"] = 0


def build_visibility(instance: TableInstance) -> np.ndarray:
    """Build the boolean visibility matrix for one linearized table.

    Returns an ``(L, L)`` symmetric boolean array with ``True`` = visible.
    The result comes from the structure-triple LRU cache and is read-only;
    copy before mutating.
    """
    kinds = instance.element_kinds()
    rows = instance.element_rows()
    cols = instance.element_cols()
    return cached_visibility(kinds, rows, cols)


def visibility_from_structure(kinds: np.ndarray, rows: np.ndarray,
                              cols: np.ndarray) -> np.ndarray:
    """Vectorized visibility construction from element structure arrays."""
    kinds = np.asarray(kinds)
    rows = np.asarray(rows)
    cols = np.asarray(cols)
    n = len(kinds)

    is_global = (kinds == KIND_CAPTION) | (kinds == KIND_TOPIC)
    is_header = kinds == KIND_HEADER
    is_cell = kinds == KIND_CELL

    same_col = cols[:, None] == cols[None, :]
    same_row = rows[:, None] == rows[None, :]

    visible = np.zeros((n, n), dtype=bool)
    # Caption tokens / topic entity: globally visible, symmetrically.
    visible |= is_global[:, None]
    visible |= is_global[None, :]
    # Header-header: all table metadata is mutually visible.
    visible |= is_header[:, None] & is_header[None, :]
    # Header <-> entity cell of the same column.
    header_cell = is_header[:, None] & is_cell[None, :] & same_col
    visible |= header_cell
    visible |= header_cell.T
    # Entity cell <-> entity cell in the same row or column.
    visible |= is_cell[:, None] & is_cell[None, :] & (same_row | same_col)
    # Self-visibility always holds.
    np.fill_diagonal(visible, True)
    return visible


def _reference_visibility_from_structure(kinds: np.ndarray, rows: np.ndarray,
                                         cols: np.ndarray) -> np.ndarray:
    """Index-by-index construction of the visibility matrix.

    The slow, obviously-correct oracle for :func:`visibility_from_structure`:
    one Python iteration per element pair, transcribing Section 4.3's rules
    literally.  Kept for the equivalence test suite and as the baseline the
    ``repro.bench`` visibility case measures speedups against.
    """
    kinds = np.asarray(kinds)
    rows = np.asarray(rows)
    cols = np.asarray(cols)
    n = len(kinds)
    is_global = (kinds == KIND_CAPTION) | (kinds == KIND_TOPIC)
    visible = np.zeros((n, n), dtype=bool)
    for i in range(n):
        for j in range(n):
            if i == j or is_global[i] or is_global[j]:
                visible[i, j] = True
                continue
            if kinds[i] == KIND_HEADER and kinds[j] == KIND_HEADER:
                visible[i, j] = True
            elif kinds[i] == KIND_HEADER and kinds[j] == KIND_CELL:
                visible[i, j] = cols[i] == cols[j]
            elif kinds[i] == KIND_CELL and kinds[j] == KIND_HEADER:
                visible[i, j] = cols[i] == cols[j]
            elif kinds[i] == KIND_CELL and kinds[j] == KIND_CELL:
                visible[i, j] = rows[i] == rows[j] or cols[i] == cols[j]
    return visible


def verify_visibility(visible: np.ndarray, kinds: np.ndarray,
                      rows: np.ndarray, cols: np.ndarray) -> List[str]:
    """Check a visibility matrix against the paper's structural invariants.

    Returns a list of human-readable failure strings (empty when the matrix
    is valid).  Used by ``python -m repro.lint --invariants`` and by the
    structural test suite; it re-derives each invariant element-wise rather
    than calling :func:`visibility_from_structure`, so a bug in the
    vectorized construction cannot hide itself.
    """
    visible = np.asarray(visible)
    kinds = np.asarray(kinds)
    rows = np.asarray(rows)
    cols = np.asarray(cols)
    n = len(kinds)
    failures: List[str] = []

    if visible.shape != (n, n):
        return [f"visibility shape {visible.shape} != ({n}, {n})"]
    if not np.array_equal(visible, visible.T):
        failures.append("visibility matrix is not symmetric")
    if not np.all(np.diagonal(visible)):
        failures.append("diagonal (self-visibility) is not all True")

    is_global = (kinds == KIND_CAPTION) | (kinds == KIND_TOPIC)
    is_header = kinds == KIND_HEADER
    is_cell = kinds == KIND_CELL
    for i in np.flatnonzero(is_global):
        if not (np.all(visible[i, :]) and np.all(visible[:, i])):
            failures.append(
                f"caption/topic element {i} is not globally reachable")
    for i in np.flatnonzero(is_header):
        for j in np.flatnonzero(is_header):
            if not visible[i, j]:
                failures.append(f"headers {i} and {j} are not mutually "
                                "visible")
        for j in np.flatnonzero(is_cell):
            expected = cols[i] == cols[j]
            if bool(visible[i, j]) != expected:
                failures.append(
                    f"header {i} / cell {j} visibility is "
                    f"{bool(visible[i, j])}, expected {expected} "
                    f"(cols {cols[i]} vs {cols[j]})")
    for i in np.flatnonzero(is_cell):
        for j in np.flatnonzero(is_cell):
            if i == j:
                continue
            expected = rows[i] == rows[j] or cols[i] == cols[j]
            if bool(visible[i, j]) != expected:
                failures.append(
                    f"cells {i} and {j} visibility is "
                    f"{bool(visible[i, j])}, expected {expected}")
    return failures
