"""The visibility matrix (paper Section 4.3, Figures 4–5).

``M`` is a symmetric binary matrix over all linearized elements:

- caption tokens and the topic entity are visible to (and from) everything;
- header tokens see all metadata plus entity cells of their own column;
- entity cells see metadata of their column plus entity cells in the same
  row or the same column.

The matrix is used as an attention mask (see
:class:`repro.nn.attention.MultiHeadAttention`), restricting each element to
aggregate information only from structurally related elements.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.linearize import (
    KIND_CAPTION,
    KIND_CELL,
    KIND_HEADER,
    KIND_TOPIC,
    TableInstance,
)


def build_visibility(instance: TableInstance) -> np.ndarray:
    """Build the boolean visibility matrix for one linearized table.

    Returns an ``(L, L)`` symmetric boolean array with ``True`` = visible.
    """
    kinds = instance.element_kinds()
    rows = instance.element_rows()
    cols = instance.element_cols()
    return visibility_from_structure(kinds, rows, cols)


def visibility_from_structure(kinds: np.ndarray, rows: np.ndarray,
                              cols: np.ndarray) -> np.ndarray:
    """Vectorized visibility construction from element structure arrays."""
    kinds = np.asarray(kinds)
    rows = np.asarray(rows)
    cols = np.asarray(cols)
    n = len(kinds)

    is_global = (kinds == KIND_CAPTION) | (kinds == KIND_TOPIC)
    is_header = kinds == KIND_HEADER
    is_cell = kinds == KIND_CELL

    same_col = cols[:, None] == cols[None, :]
    same_row = rows[:, None] == rows[None, :]

    visible = np.zeros((n, n), dtype=bool)
    # Caption tokens / topic entity: globally visible, symmetrically.
    visible |= is_global[:, None]
    visible |= is_global[None, :]
    # Header-header: all table metadata is mutually visible.
    visible |= is_header[:, None] & is_header[None, :]
    # Header <-> entity cell of the same column.
    header_cell = is_header[:, None] & is_cell[None, :] & same_col
    visible |= header_cell
    visible |= header_cell.T
    # Entity cell <-> entity cell in the same row or column.
    visible |= is_cell[:, None] & is_cell[None, :] & (same_row | same_col)
    # Self-visibility always holds.
    np.fill_diagonal(visible, True)
    return visible


def verify_visibility(visible: np.ndarray, kinds: np.ndarray,
                      rows: np.ndarray, cols: np.ndarray) -> List[str]:
    """Check a visibility matrix against the paper's structural invariants.

    Returns a list of human-readable failure strings (empty when the matrix
    is valid).  Used by ``python -m repro.lint --invariants`` and by the
    structural test suite; it re-derives each invariant element-wise rather
    than calling :func:`visibility_from_structure`, so a bug in the
    vectorized construction cannot hide itself.
    """
    visible = np.asarray(visible)
    kinds = np.asarray(kinds)
    rows = np.asarray(rows)
    cols = np.asarray(cols)
    n = len(kinds)
    failures: List[str] = []

    if visible.shape != (n, n):
        return [f"visibility shape {visible.shape} != ({n}, {n})"]
    if not np.array_equal(visible, visible.T):
        failures.append("visibility matrix is not symmetric")
    if not np.all(np.diagonal(visible)):
        failures.append("diagonal (self-visibility) is not all True")

    is_global = (kinds == KIND_CAPTION) | (kinds == KIND_TOPIC)
    is_header = kinds == KIND_HEADER
    is_cell = kinds == KIND_CELL
    for i in np.flatnonzero(is_global):
        if not (np.all(visible[i, :]) and np.all(visible[:, i])):
            failures.append(
                f"caption/topic element {i} is not globally reachable")
    for i in np.flatnonzero(is_header):
        for j in np.flatnonzero(is_header):
            if not visible[i, j]:
                failures.append(f"headers {i} and {j} are not mutually "
                                "visible")
        for j in np.flatnonzero(is_cell):
            expected = cols[i] == cols[j]
            if bool(visible[i, j]) != expected:
                failures.append(
                    f"header {i} / cell {j} visibility is "
                    f"{bool(visible[i, j])}, expected {expected} "
                    f"(cols {cols[i]} vs {cols[j]})")
    for i in np.flatnonzero(is_cell):
        for j in np.flatnonzero(is_cell):
            if i == j:
                continue
            expected = rows[i] == rows[j] or cols[i] == cols[j]
            if bool(visible[i, j]) != expected:
                failures.append(
                    f"cells {i} and {j} visibility is "
                    f"{bool(visible[i, j])}, expected {expected}")
    return failures
