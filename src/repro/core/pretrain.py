"""Pre-training loop (paper Section 4.4) and the Figure 7 evaluation probe.

The joint loss is MLM + MER cross-entropy (Eqn. 7), optimized with Adam
under a linearly decaying learning rate.  :meth:`Pretrainer.evaluate_object_prediction`
implements the ablation probe of Section 6.8: mask an object entity cell
(both entity embedding and mention), recover it from a candidate set, and
report top-1 accuracy.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config import TURLConfig
from repro.core.batching import batches_of, collate
from repro.core.candidates import CandidateBuilder
from repro.core.linearize import ETYPE_OBJECT, Linearizer, TableInstance
from repro.core.masking import IGNORE, MaskingPolicy
from repro.core.model import TURLModel
from repro.nn import Adam, LinearDecaySchedule, clip_grad_norm, masked_cross_entropy
from repro.nn.serialization import load_state_dict, save_state_dict
from repro.obs import RunJournal, get_registry, trace
from repro.text.tokenizer import WordPieceTokenizer
from repro.text.vocab import MASK_ID, SPECIAL_TOKENS, Vocabulary

_FIRST_REAL_ID = len(SPECIAL_TOKENS)


@dataclass
class PretrainStats:
    """Training history: per-step losses, probe accuracies and throughput."""

    losses: List[float] = field(default_factory=list)
    mlm_losses: List[float] = field(default_factory=list)
    mer_losses: List[float] = field(default_factory=list)
    eval_steps: List[int] = field(default_factory=list)
    eval_accuracies: List[float] = field(default_factory=list)
    wall_seconds: float = 0.0
    steps: int = 0

    @property
    def final_accuracy(self) -> Optional[float]:
        return self.eval_accuracies[-1] if self.eval_accuracies else None

    @property
    def throughput(self) -> float:
        """Optimization steps per wall-clock second."""
        return self.steps / self.wall_seconds if self.wall_seconds > 0 else 0.0


class Pretrainer:
    """Runs MLM + MER pre-training over linearized tables."""

    def __init__(self, model: TURLModel, instances: Sequence[TableInstance],
                 candidate_builder: CandidateBuilder,
                 config: Optional[TURLConfig] = None, seed: int = 0,
                 use_visibility: bool = True,
                 journal: Optional[RunJournal] = None):
        self.model = model
        self.instances = list(instances)
        self.candidates = candidate_builder
        self.config = config if config is not None else model.config
        self.masking = MaskingPolicy(self.config, model.vocab_size,
                                     model.entity_vocab_size)
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.use_visibility = use_visibility
        self.optimizer: Optional[Adam] = None
        self.journal = journal

    def _ensure_optimizer(self, total_steps: int) -> None:
        if self.optimizer is None:
            schedule = LinearDecaySchedule(self.config.learning_rate,
                                           total_steps=max(1, total_steps),
                                           final_fraction=0.1)
            self.optimizer = Adam(self.model.parameters(),
                                  learning_rate=self.config.learning_rate,
                                  weight_decay=self.config.weight_decay,
                                  schedule=schedule)

    # -- one optimization step -------------------------------------------
    def step(self, batch: Dict[str, np.ndarray]) -> Dict[str, float]:
        """Mask, forward, compute the joint loss, and update parameters.

        Besides the losses, the result carries per-phase wall seconds
        (``forward_seconds`` / ``backward_seconds`` / ``optimizer_seconds``),
        the pre-clip gradient norm and the learning rate applied this step.
        """
        with trace("pretrain/step"):
            masked = self.masking.apply(batch, self.rng)
            phase_start = time.perf_counter()
            with trace("pretrain/step/forward"):
                token_hidden, entity_hidden = self.model.encode(
                    masked.batch, use_visibility=self.use_visibility)

                losses: Dict[str, float] = {"mlm": 0.0, "mer": 0.0}
                total = None
                if masked.n_mlm:
                    mlm_logits = self.model.mlm_logits(token_hidden)
                    mlm_loss = masked_cross_entropy(
                        mlm_logits, np.maximum(masked.mlm_labels, 0),
                        masked.mlm_labels != IGNORE)
                    losses["mlm"] = mlm_loss.item()
                    total = mlm_loss
                if masked.n_mer:
                    candidate_ids, remapped = self.candidates.build(
                        batch["entity_ids"], masked.mer_labels, self.rng)
                    mer_logits = self.model.mer_logits(entity_hidden, candidate_ids)
                    mer_loss = masked_cross_entropy(
                        mer_logits, np.maximum(remapped, 0), remapped != IGNORE)
                    losses["mer"] = mer_loss.item()
                    total = mer_loss if total is None else total + mer_loss
            timings = {"forward_seconds": time.perf_counter() - phase_start,
                       "backward_seconds": 0.0, "optimizer_seconds": 0.0}
            if total is None:
                return {"loss": 0.0, **losses, **timings,
                        "grad_norm": 0.0, "lr": 0.0}

            self.model.zero_grad()
            phase_start = time.perf_counter()
            with trace("pretrain/step/backward"):
                total.backward()
                grad_norm = clip_grad_norm(self.model.parameters(),
                                           self.config.gradient_clip)
            timings["backward_seconds"] = time.perf_counter() - phase_start
            lr = self.optimizer.schedule(self.optimizer.step_count)
            phase_start = time.perf_counter()
            with trace("pretrain/step/optimizer"):
                self.optimizer.step()
            timings["optimizer_seconds"] = time.perf_counter() - phase_start
            losses["loss"] = total.item()

            registry = get_registry()
            registry.counter("pretrain.steps").inc()
            registry.histogram("pretrain.loss").observe(losses["loss"])
            registry.histogram("pretrain.grad_norm").observe(grad_norm)
            for phase, seconds in timings.items():
                registry.timer(f"pretrain.{phase[:-len('_seconds')]}").observe(seconds)
            return {**losses, **timings, "grad_norm": grad_norm, "lr": lr}

    # -- training loop ----------------------------------------------------
    def train(self, n_epochs: int = 1,
              eval_instances: Optional[Sequence[TableInstance]] = None,
              eval_every: Optional[int] = None,
              max_eval_tables: int = 50) -> PretrainStats:
        """Train for ``n_epochs`` passes over the corpus.

        When ``eval_instances`` is provided the object-entity-prediction
        probe runs every ``eval_every`` steps (and once at the end).

        When the pretrainer was built with a :class:`~repro.obs.RunJournal`,
        one header event plus one event per step / probe is appended.
        """
        stats = PretrainStats()
        steps_per_epoch = max(1, int(np.ceil(len(self.instances) / self.config.batch_size)))
        self._ensure_optimizer(steps_per_epoch * n_epochs)
        if self.journal is not None:
            self.journal.header(config=self.config.to_dict(), seed=self.seed,
                                n_instances=len(self.instances),
                                n_epochs=n_epochs)
        self.model.train()
        step_index = 0
        train_start = time.perf_counter()
        with trace("pretrain/train"):
            for _ in range(n_epochs):
                for batch in batches_of(self.instances, self.config.batch_size,
                                        self.rng):
                    step_start = time.perf_counter()
                    result = self.step(batch)
                    step_seconds = time.perf_counter() - step_start
                    stats.losses.append(result["loss"])
                    stats.mlm_losses.append(result["mlm"])
                    stats.mer_losses.append(result["mer"])
                    step_index += 1
                    if self.journal is not None:
                        tokens = int(batch["token_mask"].sum()
                                     + batch["entity_mask"].sum())
                        self.journal.step(
                            step_index,
                            loss=result["loss"], mlm=result["mlm"],
                            mer=result["mer"], lr=result["lr"],
                            grad_norm=result["grad_norm"], tokens=tokens,
                            seconds=step_seconds,
                            tokens_per_second=(tokens / step_seconds
                                               if step_seconds > 0 else 0.0),
                            forward_seconds=result["forward_seconds"],
                            backward_seconds=result["backward_seconds"],
                            optimizer_seconds=result["optimizer_seconds"])
                    if (eval_instances is not None and eval_every
                            and step_index % eval_every == 0):
                        self._run_probe(stats, step_index, eval_instances,
                                        max_eval_tables)
        if eval_instances is not None:
            self._run_probe(stats, step_index, eval_instances, max_eval_tables)
        stats.steps = step_index
        stats.wall_seconds = time.perf_counter() - train_start
        get_registry().gauge("pretrain.throughput").set(stats.throughput)
        return stats

    def _run_probe(self, stats: PretrainStats, step_index: int,
                   eval_instances: Sequence[TableInstance],
                   max_eval_tables: int) -> None:
        """One journaled evaluation probe; model mode is restored inside."""
        probe_start = time.perf_counter()
        accuracy = self.evaluate_object_prediction(
            eval_instances, max_tables=max_eval_tables)
        stats.eval_steps.append(step_index)
        stats.eval_accuracies.append(accuracy)
        if self.journal is not None:
            self.journal.probe(step_index, accuracy,
                               seconds=time.perf_counter() - probe_start)

    # -- Figure 7 probe ------------------------------------------------------
    def evaluate_object_prediction(self, instances: Sequence[TableInstance],
                                   max_tables: Optional[int] = None,
                                   max_cells_per_table: int = 3) -> float:
        """Top-1 accuracy of recovering masked object entities (Section 6.8).

        For each table, up to ``max_cells_per_table`` object entity cells are
        masked (entity and mention) one at a time, and the model ranks the
        MER candidate set; a hit means the true entity ranks first.  The
        caller's train/eval mode is restored on exit.
        """
        was_training = self.model.training
        self.model.eval()
        try:
            with trace("pretrain/probe"):
                return self._object_prediction_accuracy(
                    instances, max_tables, max_cells_per_table)
        finally:
            if was_training:
                self.model.train()

    def _object_prediction_accuracy(self, instances: Sequence[TableInstance],
                                    max_tables: Optional[int],
                                    max_cells_per_table: int) -> float:
        eval_rng = np.random.default_rng(12345)
        instances = list(instances)
        if max_tables is not None:
            instances = instances[:max_tables]

        correct = 0
        total = 0
        probes: List[TableInstance] = []
        probe_positions: List[int] = []
        probe_truth: List[int] = []
        for instance in instances:
            object_positions = [
                i for i in range(instance.n_entities)
                if instance.entity_type[i] == ETYPE_OBJECT
                and instance.entity_ids[i] >= _FIRST_REAL_ID
            ]
            if not object_positions:
                continue
            if len(object_positions) > max_cells_per_table:
                chosen = eval_rng.choice(len(object_positions),
                                         size=max_cells_per_table, replace=False)
                object_positions = [object_positions[int(i)] for i in chosen]
            for position in object_positions:
                probes.append(instance)
                probe_positions.append(position)
                probe_truth.append(int(instance.entity_ids[position]))

        batch_size = self.config.batch_size
        from repro.nn import no_grad
        for start in range(0, len(probes), batch_size):
            chunk = probes[start:start + batch_size]
            positions = probe_positions[start:start + batch_size]
            truths = probe_truth[start:start + batch_size]
            batch = collate(chunk)
            mention_masked = np.zeros(batch["entity_ids"].shape, dtype=bool)
            labels = np.full(batch["entity_ids"].shape, IGNORE, dtype=np.int64)
            for i, (position, truth) in enumerate(zip(positions, truths)):
                batch["entity_ids"][i, position] = MASK_ID
                mention_masked[i, position] = True
                labels[i, position] = truth
            batch["mention_masked"] = mention_masked

            candidate_ids, remapped = self.candidates.build(
                batch["entity_ids"], labels, eval_rng)
            with no_grad():
                _, entity_hidden = self.model.encode(
                    batch, use_visibility=self.use_visibility)
                logits = self.model.mer_logits(entity_hidden, candidate_ids)
            predictions = logits.data.argmax(axis=-1)
            for i, position in enumerate(positions):
                total += 1
                if predictions[i, position] == remapped[i, position]:
                    correct += 1
        return correct / total if total else 0.0


# -- checkpointing -----------------------------------------------------------

def save_checkpoint(directory: str, model: TURLModel,
                    tokenizer: WordPieceTokenizer,
                    entity_vocab: Vocabulary) -> None:
    """Persist model weights, config, tokenizer and entity vocabulary."""
    os.makedirs(directory, exist_ok=True)
    save_state_dict(model.state_dict(), os.path.join(directory, "model.npz"))
    with open(os.path.join(directory, "tokenizer.json"), "w") as handle:
        handle.write(tokenizer.to_json())
    with open(os.path.join(directory, "entity_vocab.json"), "w") as handle:
        handle.write(entity_vocab.to_json())
    import json

    with open(os.path.join(directory, "config.json"), "w") as handle:
        json.dump(model.config.to_dict(), handle)


def load_checkpoint(directory: str):
    """Inverse of :func:`save_checkpoint`.

    Returns ``(model, tokenizer, entity_vocab)``.
    """
    import json

    with open(os.path.join(directory, "config.json")) as handle:
        config = TURLConfig.from_dict(json.load(handle))
    with open(os.path.join(directory, "tokenizer.json")) as handle:
        tokenizer = WordPieceTokenizer.from_json(handle.read())
    with open(os.path.join(directory, "entity_vocab.json")) as handle:
        entity_vocab = Vocabulary.from_json(handle.read())
    model = TURLModel(len(tokenizer.vocab), len(entity_vocab), config)
    model.load_state_dict(load_state_dict(os.path.join(directory, "model.npz")))
    return model, tokenizer, entity_vocab
