"""Pre-training (paper Section 4.4) as a task on the shared engine.

The joint loss is MLM + MER cross-entropy (Eqn. 7), optimized with Adam
under a linearly decaying learning rate.  Since PR 2 the loop itself lives
in :mod:`repro.train` — :class:`Pretrainer` builds a
:class:`~repro.train.TrainableTask` (:class:`PretrainObjective`) and drives
the same :class:`~repro.train.Trainer` as every fine-tuning head, which is
where optimizer construction, shuffling, clipping, stats, journaling and
checkpointing now live.  :meth:`Pretrainer.evaluate_object_prediction`
implements the ablation probe of Section 6.8: mask an object entity cell
(both entity embedding and mention), recover it from a candidate set, and
report top-1 accuracy.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.config import TURLConfig
from repro.core.batching import bucket_key, collate
from repro.core.candidates import CandidateBuilder
from repro.core.linearize import ETYPE_OBJECT, TableInstance
from repro.core.masking import IGNORE, MaskingPolicy
from repro.core.model import TURLModel
from repro.core.stream import TableInstanceStream
from repro.nn import eval_mode, masked_cross_entropy
from repro.nn.serialization import load_state, save_state_dict
from repro.obs import RunJournal, trace
from repro.text.tokenizer import WordPieceTokenizer
from repro.text.vocab import MASK_ID, SPECIAL_TOKENS, Vocabulary
from repro.train import StepOutput, TrainableTask, Trainer, TrainSpec, build_optimizer

_FIRST_REAL_ID = len(SPECIAL_TOKENS)


@dataclass
class PretrainStats:
    """Training history: per-step losses, probe accuracies and throughput."""

    losses: List[float] = field(default_factory=list)
    mlm_losses: List[float] = field(default_factory=list)
    mer_losses: List[float] = field(default_factory=list)
    eval_steps: List[int] = field(default_factory=list)
    eval_accuracies: List[float] = field(default_factory=list)
    wall_seconds: float = 0.0
    steps: int = 0

    @property
    def final_accuracy(self) -> Optional[float]:
        return self.eval_accuracies[-1] if self.eval_accuracies else None

    @property
    def throughput(self) -> float:
        """Optimization steps per wall-clock second."""
        return self.steps / self.wall_seconds if self.wall_seconds > 0 else 0.0


class PretrainObjective(TrainableTask):
    """MLM + MER as a :class:`TrainableTask` on the shared engine.

    Items are :class:`TableInstance` objects — or, when the pretrainer wraps
    a :class:`~repro.core.stream.TableInstanceStream`, plain record
    positions that :meth:`loss` resolves (decode + linearize) only at step
    time, so a streaming epoch never materializes the corpus.  The engine's
    ``batch_size`` chunks items and :meth:`loss` collates each chunk (an
    already-collated batch dictionary is also accepted, for direct
    :meth:`Pretrainer.step` calls).
    """

    name = "pretrain"

    def __init__(self, pretrainer: "Pretrainer",
                 eval_instances: Optional[Sequence[TableInstance]] = None,
                 max_eval_tables: int = 50):
        self.pretrainer = pretrainer
        self.module = pretrainer.model
        self.eval_instances = eval_instances
        self.max_eval_tables = max_eval_tables

    @property
    def _stream(self) -> Optional[TableInstanceStream]:
        instances = self.pretrainer.instances
        return instances if isinstance(instances, TableInstanceStream) else None

    def build_batches(self) -> Sequence[Any]:
        stream = self._stream
        if stream is not None:
            return list(range(len(stream)))
        return list(self.pretrainer.instances)

    def _resolve(self, item: Union[int, TableInstance]) -> TableInstance:
        if isinstance(item, (int, np.integer)):
            return self._stream.fetch(int(item))
        return item

    def loss(self, batch: Union[Dict[str, np.ndarray], List[TableInstance],
                                TableInstance, int],
             rng: np.random.Generator) -> StepOutput:
        if not isinstance(batch, dict):
            chunk = batch if isinstance(batch, list) else [batch]
            batch = collate([self._resolve(item) for item in chunk])
        return self.pretrainer.compute_loss(batch, rng)

    def bucket_key(self, item: Union[int, TableInstance]):
        if isinstance(item, (int, np.integer)):
            return self._stream.bucket_of(int(item))
        return bucket_key(item)

    def shard_key(self, item: Union[int, TableInstance]) -> int:
        if isinstance(item, (int, np.integer)):
            return self._stream.shard_of(int(item))
        return 0

    def stream_fingerprint(self) -> Optional[str]:
        stream = self._stream
        return stream.fingerprint() if stream is not None else None

    def eval_metric(self) -> Optional[float]:
        if self.eval_instances is None:
            return None
        return self.pretrainer.evaluate_object_prediction(
            self.eval_instances, max_tables=self.max_eval_tables)

    def config_dict(self) -> dict:
        return self.pretrainer.config.to_dict()


class Pretrainer:
    """Runs MLM + MER pre-training over linearized tables.

    ``instances`` is either an eager ``Sequence[TableInstance]`` (the
    historical in-memory path, bit-identical as ever) or a
    :class:`~repro.core.stream.TableInstanceStream`, in which case records
    are decoded and linearized lazily at step time and
    ``shuffle="shard"`` orders epochs shard-locally.
    """

    def __init__(self, model: TURLModel,
                 instances: Union[Sequence[TableInstance],
                                  TableInstanceStream],
                 candidate_builder: CandidateBuilder,
                 config: Optional[TURLConfig] = None, seed: int = 0,
                 use_visibility: bool = True,
                 journal: Optional[RunJournal] = None,
                 sanitize: bool = False, shuffle: str = "flat"):
        self.model = model
        self.instances = (instances
                          if isinstance(instances, TableInstanceStream)
                          else list(instances))
        self.candidates = candidate_builder
        self.config = config if config is not None else model.config
        self.masking = MaskingPolicy(self.config, model.vocab_size,
                                     model.entity_vocab_size)
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.use_visibility = use_visibility
        self.optimizer = None
        self.journal = journal
        self.sanitize = sanitize
        self.shuffle = shuffle

    def _spec(self, n_epochs: int = 1,
              eval_every: Optional[int] = None) -> TrainSpec:
        """The paper's pre-training recipe as an engine spec."""
        return TrainSpec(epochs=n_epochs,
                         learning_rate=self.config.learning_rate,
                         weight_decay=self.config.weight_decay,
                         schedule="linear", final_lr_fraction=0.1,
                         gradient_clip=self.config.gradient_clip,
                         batch_size=self.config.batch_size,
                         shuffle=self.shuffle,
                         seed=self.seed, eval_every=eval_every,
                         eval_at_end=True, sanitize=self.sanitize)

    def _ensure_optimizer(self, total_steps: int) -> None:
        if self.optimizer is None:
            self.optimizer = build_optimizer(self.model.parameters(),
                                             self._spec(), max(1, total_steps))

    # -- joint objective --------------------------------------------------
    def compute_loss(self, batch: Dict[str, np.ndarray],
                     rng: np.random.Generator) -> StepOutput:
        """Mask ``batch`` and evaluate the joint MLM + MER loss (Eqn. 7)."""
        masked = self.masking.apply(batch, rng)
        token_hidden, entity_hidden = self.model.encode(
            masked.batch, use_visibility=self.use_visibility)

        extras: Dict[str, float] = {"mlm": 0.0, "mer": 0.0}
        total = None
        if masked.n_mlm:
            mlm_logits = self.model.mlm_logits(token_hidden)
            mlm_loss = masked_cross_entropy(
                mlm_logits, np.maximum(masked.mlm_labels, 0),
                masked.mlm_labels != IGNORE)
            extras["mlm"] = mlm_loss.item()
            total = mlm_loss
        if masked.n_mer:
            candidate_ids, remapped = self.candidates.build(
                batch["entity_ids"], masked.mer_labels, rng)
            mer_logits = self.model.mer_logits(entity_hidden, candidate_ids)
            mer_loss = masked_cross_entropy(
                mer_logits, np.maximum(remapped, 0), remapped != IGNORE)
            extras["mer"] = mer_loss.item()
            total = mer_loss if total is None else total + mer_loss
        extras["tokens"] = int(batch["token_mask"].sum()
                               + batch["entity_mask"].sum())
        return StepOutput(loss=total, extras=extras)

    # -- one optimization step -------------------------------------------
    def step(self, batch: Dict[str, np.ndarray]) -> Dict[str, float]:
        """Mask, forward, compute the joint loss, and update parameters.

        Delegates to the engine's step executor; besides the losses, the
        result carries per-phase wall seconds (``forward_seconds`` /
        ``backward_seconds`` / ``optimizer_seconds``), the pre-clip gradient
        norm and the learning rate applied this step.
        """
        executor = Trainer(PretrainObjective(self), self._spec(),
                           rng=self.rng, optimizer=self.optimizer)
        result = executor.run_step(batch)
        self.optimizer = executor.optimizer
        return result

    # -- training loop ----------------------------------------------------
    def train(self, n_epochs: int = 1,
              eval_instances: Optional[Sequence[TableInstance]] = None,
              eval_every: Optional[int] = None,
              max_eval_tables: int = 50) -> PretrainStats:
        """Train for ``n_epochs`` passes over the corpus on the shared engine.

        When ``eval_instances`` is provided the object-entity-prediction
        probe runs every ``eval_every`` steps (and once at the end).

        When the pretrainer was built with a :class:`~repro.obs.RunJournal`,
        one header event plus one event per step / probe is appended.
        """
        steps_per_epoch = max(1, int(np.ceil(len(self.instances)
                                             / self.config.batch_size)))
        self._ensure_optimizer(steps_per_epoch * n_epochs)
        task = PretrainObjective(self, eval_instances, max_eval_tables)
        trainer = Trainer(task, self._spec(n_epochs, eval_every=eval_every),
                          journal=self.journal, rng=self.rng,
                          optimizer=self.optimizer)
        engine_stats = trainer.fit()
        return PretrainStats(
            losses=engine_stats.losses,
            mlm_losses=engine_stats.extras.get("mlm", []),
            mer_losses=engine_stats.extras.get("mer", []),
            eval_steps=engine_stats.eval_steps,
            eval_accuracies=engine_stats.eval_values,
            wall_seconds=engine_stats.wall_seconds,
            steps=engine_stats.steps,
        )

    # -- Figure 7 probe ------------------------------------------------------
    def evaluate_object_prediction(self, instances: Sequence[TableInstance],
                                   max_tables: Optional[int] = None,
                                   max_cells_per_table: int = 3) -> float:
        """Top-1 accuracy of recovering masked object entities (Section 6.8).

        For each table, up to ``max_cells_per_table`` object entity cells are
        masked (entity and mention) one at a time, and the model ranks the
        MER candidate set; a hit means the true entity ranks first.  The
        caller's train/eval mode is restored on exit.
        """
        with eval_mode(self.model), trace("pretrain/probe"):
            return self._object_prediction_accuracy(
                instances, max_tables, max_cells_per_table)

    def _object_prediction_accuracy(self, instances: Sequence[TableInstance],
                                    max_tables: Optional[int],
                                    max_cells_per_table: int) -> float:
        eval_rng = np.random.default_rng(12345)
        instances = list(instances)
        if max_tables is not None:
            instances = instances[:max_tables]

        correct = 0
        total = 0
        probes: List[TableInstance] = []
        probe_positions: List[int] = []
        probe_truth: List[int] = []
        for instance in instances:
            object_positions = [
                i for i in range(instance.n_entities)
                if instance.entity_type[i] == ETYPE_OBJECT
                and instance.entity_ids[i] >= _FIRST_REAL_ID
            ]
            if not object_positions:
                continue
            if len(object_positions) > max_cells_per_table:
                chosen = eval_rng.choice(len(object_positions),
                                         size=max_cells_per_table, replace=False)
                object_positions = [object_positions[int(i)] for i in chosen]
            for position in object_positions:
                probes.append(instance)
                probe_positions.append(position)
                probe_truth.append(int(instance.entity_ids[position]))

        batch_size = self.config.batch_size
        from repro.nn import no_grad
        for start in range(0, len(probes), batch_size):
            chunk = probes[start:start + batch_size]
            positions = probe_positions[start:start + batch_size]
            truths = probe_truth[start:start + batch_size]
            batch = collate(chunk)
            mention_masked = np.zeros(batch["entity_ids"].shape, dtype=bool)
            labels = np.full(batch["entity_ids"].shape, IGNORE, dtype=np.int64)
            for i, (position, truth) in enumerate(zip(positions, truths)):
                batch["entity_ids"][i, position] = MASK_ID
                mention_masked[i, position] = True
                labels[i, position] = truth
            batch["mention_masked"] = mention_masked

            candidate_ids, remapped = self.candidates.build(
                batch["entity_ids"], labels, eval_rng)
            with no_grad():
                _, entity_hidden = self.model.encode(
                    batch, use_visibility=self.use_visibility)
                logits = self.model.mer_logits(entity_hidden, candidate_ids)
            predictions = logits.data.argmax(axis=-1)
            for i, position in enumerate(positions):
                total += 1
                if predictions[i, position] == remapped[i, position]:
                    correct += 1
        return correct / total if total else 0.0


# -- checkpointing -----------------------------------------------------------

def save_checkpoint(directory: str, model: TURLModel,
                    tokenizer: WordPieceTokenizer,
                    entity_vocab: Vocabulary,
                    compress: bool = False) -> None:
    """Persist model weights, config, tokenizer and entity vocabulary.

    ``model.npz`` is stored uncompressed by default so serving workers can
    memory-map it zero-copy (``load_checkpoint(..., mmap=True)``); pass
    ``compress=True`` to trade that for a smaller archive.
    """
    os.makedirs(directory, exist_ok=True)
    save_state_dict(model.state_dict(), os.path.join(directory, "model.npz"),
                    compress=compress)
    with open(os.path.join(directory, "tokenizer.json"), "w") as handle:
        handle.write(tokenizer.to_json())
    with open(os.path.join(directory, "entity_vocab.json"), "w") as handle:
        handle.write(entity_vocab.to_json())
    import json

    with open(os.path.join(directory, "config.json"), "w") as handle:
        json.dump(model.config.to_dict(), handle)


def load_checkpoint(directory: str, mmap: Union[bool, str] = False):
    """Inverse of :func:`save_checkpoint`.

    Returns ``(model, tokenizer, entity_vocab)``.

    ``mmap=True`` binds the model's weights as read-only zero-copy views
    into ``model.npz`` (requires an uncompressed archive — the
    :func:`save_checkpoint` default); ``mmap="auto"`` tries the zero-copy
    path and silently falls back to the eager heap load for legacy
    compressed archives.
    """
    import json

    with open(os.path.join(directory, "config.json")) as handle:
        config = TURLConfig.from_dict(json.load(handle))
    with open(os.path.join(directory, "tokenizer.json")) as handle:
        tokenizer = WordPieceTokenizer.from_json(handle.read())
    with open(os.path.join(directory, "entity_vocab.json")) as handle:
        entity_vocab = Vocabulary.from_json(handle.read())
    model = TURLModel(len(tokenizer.vocab), len(entity_vocab), config)
    weights_path = os.path.join(directory, "model.npz")
    use_mmap = bool(mmap)
    if mmap == "auto":
        try:
            state = load_state(weights_path, mmap=True)
        except ValueError:
            state, use_mmap = load_state(weights_path), False
    else:
        state = load_state(weights_path, mmap=use_mmap)
    model.load_state_dict(state, copy=not use_mmap)
    return model, tokenizer, entity_vocab
