"""MLM and MER masking policies (paper Section 4.4).

Masking operates on a collated batch (vectorized across the whole batch) and
returns a modified copy plus label arrays:

- **MLM** selects 20 % of real metadata tokens; of those 80 % become
  ``[MASK]``, 10 % a random token, 10 % stay unchanged (Example 4.2).
- **MER** selects 60 % of linked entity cells; of those 10 % stay fully
  intact, 63 % have both entity embedding and mention masked, and 27 % keep
  the mention while the entity embedding is masked — with 10 % of that last
  group receiving a *random* entity embedding as injected noise
  (Example 4.3).

Labels hold original vocabulary ids at selected positions and ``IGNORE``
elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.config import TURLConfig
from repro.core.linearize import ETYPE_TOPIC
from repro.text.vocab import MASK_ID, PAD_ID, SPECIAL_TOKENS, UNK_ID

IGNORE = -100
_FIRST_REAL_ID = len(SPECIAL_TOKENS)


@dataclass
class MaskedInstance:
    """A masked batch: modified inputs plus MLM/MER label arrays."""

    batch: Dict[str, np.ndarray]
    mlm_labels: np.ndarray  # (B, Lt), token ids or IGNORE
    mer_labels: np.ndarray  # (B, Le), entity-vocabulary ids or IGNORE

    @property
    def n_mlm(self) -> int:
        return int((self.mlm_labels != IGNORE).sum())

    @property
    def n_mer(self) -> int:
        return int((self.mer_labels != IGNORE).sum())


class MaskingPolicy:
    """Applies the paper's masking mechanisms to collated batches."""

    def __init__(self, config: TURLConfig, vocab_size: int, entity_vocab_size: int):
        config.validate()
        self.config = config
        self.vocab_size = vocab_size
        self.entity_vocab_size = entity_vocab_size

    # -- MLM ------------------------------------------------------------
    def _apply_mlm(self, batch: Dict[str, np.ndarray],
                   rng: np.random.Generator) -> np.ndarray:
        config = self.config
        token_ids = batch["token_ids"]
        eligible = batch["token_mask"] & (token_ids != PAD_ID) & (token_ids != UNK_ID)
        selected = eligible & (rng.random(token_ids.shape) < config.mlm_probability)

        labels = np.where(selected, token_ids, IGNORE)
        action = rng.random(token_ids.shape)
        to_mask = selected & (action < config.mlm_mask_fraction)
        to_random = selected & (action >= config.mlm_mask_fraction) & (
            action < config.mlm_mask_fraction + config.mlm_random_fraction)

        new_ids = token_ids.copy()
        new_ids[to_mask] = MASK_ID
        if to_random.any():
            new_ids[to_random] = rng.integers(
                _FIRST_REAL_ID, self.vocab_size, size=int(to_random.sum()))
        batch["token_ids"] = new_ids
        return labels

    # -- MER --------------------------------------------------------------
    def _apply_mer(self, batch: Dict[str, np.ndarray],
                   rng: np.random.Generator) -> np.ndarray:
        config = self.config
        entity_ids = batch["entity_ids"]
        eligible = (
            batch["entity_mask"]
            & (entity_ids != PAD_ID)
            & (entity_ids != UNK_ID)
            & (entity_ids != MASK_ID)
            & (batch["entity_type"] != ETYPE_TOPIC)
        )
        selected = eligible & (rng.random(entity_ids.shape) < config.mer_probability)
        labels = np.where(selected, entity_ids, IGNORE)

        action = rng.random(entity_ids.shape)
        keep = selected & (action < config.mer_keep_fraction)
        rest = selected & ~keep
        sub_action = rng.random(entity_ids.shape)
        full_mask = rest & (sub_action < config.mer_full_mask_fraction)
        mention_kept = rest & ~full_mask

        noise_action = rng.random(entity_ids.shape)
        random_entity = mention_kept & (noise_action < config.mer_random_entity_fraction)
        entity_masked = (full_mask | mention_kept) & ~random_entity

        new_ids = entity_ids.copy()
        new_ids[entity_masked] = MASK_ID
        if random_entity.any():
            new_ids[random_entity] = rng.integers(
                _FIRST_REAL_ID, self.entity_vocab_size, size=int(random_entity.sum()))
        batch["entity_ids"] = new_ids

        mention_masked = batch.get(
            "mention_masked", np.zeros(entity_ids.shape, dtype=bool)).copy()
        mention_masked |= full_mask
        batch["mention_masked"] = mention_masked
        return labels

    # -- public API --------------------------------------------------------
    def apply(self, batch: Dict[str, np.ndarray],
              rng: np.random.Generator) -> MaskedInstance:
        """Mask a collated batch; the input dict is not modified."""
        masked = {key: value.copy() for key, value in batch.items()}
        mlm_labels = self._apply_mlm(masked, rng)
        mer_labels = self._apply_mer(masked, rng)
        return MaskedInstance(masked, mlm_labels, mer_labels)
