"""The TURL model (paper Figure 2).

Three modules: the embedding layer (Section 4.2), N stacked structure-aware
Transformer blocks (Section 4.3) and projection heads for the pre-training
objectives (Section 4.4).  :meth:`TURLModel.encode` returns contextualized
representations for every element; the heads implement Eqns. 5 and 6:

- MLM: ``P(w) ∝ exp(LINEAR(h_t) · w)`` over the token vocabulary;
- MER: ``P(e) ∝ exp(LINEAR(h_e) · e_e)`` over a candidate entity set.

Both heads tie output embeddings to the input embedding tables, as in BERT.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.config import TURLConfig
from repro.core.embedding import TableEmbedding
from repro.nn import Linear, Module, Tensor, TransformerEncoder, is_grad_enabled
from repro.nn.attention import AdditiveVisibilityMask
from repro.obs import trace


class TURLModel(Module):
    """Structure-aware table encoder with MLM and MER heads."""

    def __init__(self, vocab_size: int, entity_vocab_size: int,
                 config: TURLConfig = TURLConfig(), seed: int = 0):
        super().__init__()
        config.validate()
        self.config = config
        self.vocab_size = vocab_size
        self.entity_vocab_size = entity_vocab_size
        rng = np.random.default_rng(seed)
        self.embedding = TableEmbedding(vocab_size, entity_vocab_size, config, rng)
        self.encoder = TransformerEncoder(
            config.num_layers, config.dim, config.num_heads,
            config.intermediate_dim, rng, dropout=config.dropout,
            spawn_dropout_rng=config.spawn_dropout_rng)
        self.mlm_project = Linear(config.dim, config.dim, rng)
        self.mer_project = Linear(config.dim, config.dim, rng)
        #: Optional :class:`repro.serve.EncodeCache` (duck-typed so ``core``
        #: never imports ``serve``).  Installed by the serving layer; only
        #: consulted when the model is in eval mode with gradients off.
        self.encode_cache = None

    # -- encoding -----------------------------------------------------------
    def encode(self, batch: Dict[str, np.ndarray],
               use_visibility: bool = True) -> Tuple[Tensor, Tensor]:
        """Run the encoder; return ``(token_hidden, entity_hidden)``.

        ``use_visibility=False`` drops the structure mask (the Figure 7a
        ablation): every element attends to every other element.
        """
        cache = self.encode_cache
        if cache is not None and (self.training or is_grad_enabled()):
            # Cached activations carry no autograd tape and no dropout
            # noise, so they are only valid for inference-mode encodes.
            cache = None
        key = None
        if cache is not None:
            key = cache.key_for(batch, use_visibility)
            cached = cache.get(key)
            if cached is not None:
                return cached
        with trace("model/encode/embedding"):
            hidden = self.embedding(batch)
        visibility = None
        if use_visibility:
            # Precompile the boolean matrix into the additive float mask once
            # per batch; every attention layer then shares it.
            visibility = AdditiveVisibilityMask(batch["visibility"])
        with trace("model/encode/encoder"):
            encoded = self.encoder(hidden, visibility)
        n_tokens = batch["token_ids"].shape[1]
        token_hidden = encoded[:, :n_tokens]
        entity_hidden = encoded[:, n_tokens:]
        if cache is not None:
            cache.put(key, (token_hidden, entity_hidden))
        return token_hidden, entity_hidden

    # -- heads ---------------------------------------------------------------
    def mlm_logits(self, token_hidden: Tensor) -> Tensor:
        """(B, Lt, |W|) token prediction logits (Eqn. 5), tied weights."""
        projected = self.mlm_project(token_hidden)
        return projected @ self.embedding.word.weight.transpose()

    def mer_logits(self, entity_hidden: Tensor,
                   candidate_ids: np.ndarray) -> Tensor:
        """(B, Le, C) entity ranking logits over a candidate set (Eqn. 6)."""
        projected = self.mer_project(entity_hidden)
        candidates = self.embedding.entity.weight.take_rows(
            np.asarray(candidate_ids, dtype=np.int64))
        return projected @ candidates.transpose()

    def mer_logits_against(self, entity_hidden: Tensor,
                           candidate_vectors: Tensor) -> Tensor:
        """MER scoring against externally built candidate representations
        (used by entity linking, where candidates come from the KB)."""
        projected = self.mer_project(entity_hidden)
        return projected @ candidate_vectors.transpose()
