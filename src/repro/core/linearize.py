"""Table linearization (paper Figure 3).

A table is converted into a sequence of *elements*: caption tokens, header
tokens, then entity cells scanned row by row (topic entity first).  Text
columns contribute their header tokens only — like the paper, cell content
enters the model solely through entity cells and metadata.

The result is a :class:`TableInstance`: flat NumPy arrays describing each
element's kind, row, column and position, ready for embedding, visibility
construction and masking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.config import TURLConfig
from repro.data.table import Table
from repro.text.tokenizer import WordPieceTokenizer
from repro.text.vocab import MASK_ID, PAD_ID, Vocabulary

# Element kinds (shared with repro.core.visibility).
KIND_CAPTION = 0
KIND_HEADER = 1
KIND_TOPIC = 2
KIND_CELL = 3

# Entity cell types for the type embedding t_e (Section 4.2).
ETYPE_TOPIC = 0
ETYPE_SUBJECT = 1
ETYPE_OBJECT = 2


@dataclass
class TableInstance:
    """A linearized table.

    Token arrays have length ``Lt``; entity arrays have length ``Le``.
    ``mention_ids`` is padded with ``PAD_ID`` to ``(Le, max_mention_tokens)``.
    ``entity_kb_ids`` keeps original KB ids (``None`` for unlinked cells) so
    downstream tasks can build labels without re-reading the table.
    """

    table_id: str
    token_ids: np.ndarray
    token_kind: np.ndarray   # KIND_CAPTION or KIND_HEADER
    token_col: np.ndarray    # -1 for caption tokens
    token_pos: np.ndarray    # position within its segment

    entity_ids: np.ndarray   # entity-vocabulary ids
    entity_kind: np.ndarray  # KIND_TOPIC or KIND_CELL
    entity_row: np.ndarray   # -1 for the topic entity
    entity_col: np.ndarray   # -1 for the topic entity
    entity_type: np.ndarray  # ETYPE_*
    mention_ids: np.ndarray  # (Le, max_mention_tokens), PAD_ID padded
    entity_kb_ids: List[Optional[str]] = field(default_factory=list)

    @property
    def n_tokens(self) -> int:
        return len(self.token_ids)

    @property
    def n_entities(self) -> int:
        return len(self.entity_ids)

    @property
    def length(self) -> int:
        return self.n_tokens + self.n_entities

    def element_kinds(self) -> np.ndarray:
        return np.concatenate([self.token_kind, self.entity_kind])

    def element_rows(self) -> np.ndarray:
        return np.concatenate([np.full(self.n_tokens, -1, dtype=np.int64), self.entity_row])

    def element_cols(self) -> np.ndarray:
        return np.concatenate([self.token_col, self.entity_col])


class Linearizer:
    """Converts :class:`Table` objects into :class:`TableInstance` arrays."""

    def __init__(self, tokenizer: WordPieceTokenizer, entity_vocab: Vocabulary,
                 config: TURLConfig = TURLConfig()):
        self.tokenizer = tokenizer
        self.entity_vocab = entity_vocab
        self.config = config

    def _mention_ids(self, mention: str) -> np.ndarray:
        ids = self.tokenizer.encode(mention, max_length=self.config.max_mention_tokens)
        padded = np.full(self.config.max_mention_tokens, PAD_ID, dtype=np.int64)
        padded[: len(ids)] = ids
        return padded

    def encode(self, table: Table,
               extra_entity_slots: int = 0) -> TableInstance:
        """Linearize ``table``.

        ``extra_entity_slots`` appends that many [MASK] entity placeholders
        at the end (used by row population / schema augmentation / cell
        filling fine-tuning, which rank candidates from a [MASK] position).
        """
        config = self.config
        token_ids: List[int] = []
        token_kind: List[int] = []
        token_col: List[int] = []
        token_pos: List[int] = []

        caption_ids = self.tokenizer.encode(table.caption_text(),
                                            max_length=config.max_caption_tokens)
        token_ids.extend(caption_ids)
        token_kind.extend([KIND_CAPTION] * len(caption_ids))
        token_col.extend([-1] * len(caption_ids))
        token_pos.extend(range(len(caption_ids)))

        n_columns = min(table.n_columns, config.max_columns)
        for col in range(n_columns):
            header_ids = self.tokenizer.encode(table.columns[col].header,
                                               max_length=config.max_header_tokens)
            token_ids.extend(header_ids)
            token_kind.extend([KIND_HEADER] * len(header_ids))
            token_col.extend([col] * len(header_ids))
            token_pos.extend(range(len(header_ids)))

        entity_ids: List[int] = []
        entity_kind: List[int] = []
        entity_row: List[int] = []
        entity_col: List[int] = []
        entity_type: List[int] = []
        mention_rows: List[np.ndarray] = []
        kb_ids: List[Optional[str]] = []

        if table.topic_entity is not None:
            entity_ids.append(self.entity_vocab.id_of(table.topic_entity))
            entity_kind.append(KIND_TOPIC)
            entity_row.append(-1)
            entity_col.append(-1)
            entity_type.append(ETYPE_TOPIC)
            topic_name = ""
            mention_rows.append(self._mention_ids(topic_name))
            kb_ids.append(table.topic_entity)

        entity_columns = [c for c in table.entity_columns() if c < n_columns]
        n_rows = min(table.n_rows, config.max_rows)
        for row in range(n_rows):
            for col in entity_columns:
                cell = table.columns[col].cells[row]
                if cell.entity_id is not None:
                    entity_ids.append(self.entity_vocab.id_of(cell.entity_id))
                else:
                    entity_ids.append(PAD_ID)  # no entity embedding; mention only
                entity_kind.append(KIND_CELL)
                entity_row.append(row)
                entity_col.append(col)
                entity_type.append(ETYPE_SUBJECT if col == table.subject_column
                                   else ETYPE_OBJECT)
                mention_rows.append(self._mention_ids(cell.mention))
                kb_ids.append(cell.entity_id)

        for _ in range(extra_entity_slots):
            entity_ids.append(MASK_ID)
            entity_kind.append(KIND_CELL)
            entity_row.append(n_rows)  # a fresh row below the table
            entity_col.append(table.subject_column)
            entity_type.append(ETYPE_SUBJECT)
            mention_rows.append(np.full(config.max_mention_tokens, PAD_ID, dtype=np.int64))
            kb_ids.append(None)

        mention_ids = (np.stack(mention_rows)
                       if mention_rows
                       else np.zeros((0, config.max_mention_tokens), dtype=np.int64))
        return TableInstance(
            table_id=table.table_id,
            token_ids=np.asarray(token_ids, dtype=np.int64),
            token_kind=np.asarray(token_kind, dtype=np.int64),
            token_col=np.asarray(token_col, dtype=np.int64),
            token_pos=np.asarray(token_pos, dtype=np.int64),
            entity_ids=np.asarray(entity_ids, dtype=np.int64),
            entity_kind=np.asarray(entity_kind, dtype=np.int64),
            entity_row=np.asarray(entity_row, dtype=np.int64),
            entity_col=np.asarray(entity_col, dtype=np.int64),
            entity_type=np.asarray(entity_type, dtype=np.int64),
            mention_ids=mention_ids,
            entity_kb_ids=kb_ids,
        )
