"""Batching: padding a list of :class:`TableInstance` into dense arrays.

Padding is made inert through the visibility matrix — pad elements are
invisible to every real element, so their (meaningless) hidden states can
never contaminate real positions — and through boolean masks that exclude
pads from every loss.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.linearize import TableInstance
from repro.core.visibility import build_visibility
from repro.text.vocab import PAD_ID


def collate(instances: Sequence[TableInstance]) -> Dict[str, np.ndarray]:
    """Pad ``instances`` into a single batch dictionary.

    Keys: ``token_ids / token_kind / token_col / token_pos / token_mask``
    (``(B, Lt)``), ``entity_ids / entity_type / entity_row / entity_col /
    entity_mask`` (``(B, Le)``), ``mention_ids`` (``(B, Le, Lm)``) and
    ``visibility`` (``(B, L, L)`` with ``L = Lt + Le``).
    """
    if not instances:
        raise ValueError("cannot collate an empty batch")
    batch_size = len(instances)
    max_tokens = max(instance.n_tokens for instance in instances)
    max_entities = max(instance.n_entities for instance in instances)
    mention_width = instances[0].mention_ids.shape[1] if max_entities else 0

    token_ids = np.full((batch_size, max_tokens), PAD_ID, dtype=np.int64)
    token_kind = np.zeros((batch_size, max_tokens), dtype=np.int64)
    token_col = np.full((batch_size, max_tokens), -1, dtype=np.int64)
    token_pos = np.zeros((batch_size, max_tokens), dtype=np.int64)
    token_mask = np.zeros((batch_size, max_tokens), dtype=bool)

    entity_ids = np.full((batch_size, max_entities), PAD_ID, dtype=np.int64)
    entity_type = np.zeros((batch_size, max_entities), dtype=np.int64)
    entity_row = np.full((batch_size, max_entities), -1, dtype=np.int64)
    entity_col = np.full((batch_size, max_entities), -1, dtype=np.int64)
    entity_mask = np.zeros((batch_size, max_entities), dtype=bool)
    mention_ids = np.full((batch_size, max_entities, mention_width), PAD_ID, dtype=np.int64)

    length = max_tokens + max_entities
    visibility = np.zeros((batch_size, length, length), dtype=bool)

    for i, instance in enumerate(instances):
        nt, ne = instance.n_tokens, instance.n_entities
        token_ids[i, :nt] = instance.token_ids
        token_kind[i, :nt] = instance.token_kind
        token_col[i, :nt] = instance.token_col
        token_pos[i, :nt] = instance.token_pos
        token_mask[i, :nt] = True

        entity_ids[i, :ne] = instance.entity_ids
        entity_type[i, :ne] = instance.entity_type
        entity_row[i, :ne] = instance.entity_row
        entity_col[i, :ne] = instance.entity_col
        entity_mask[i, :ne] = True
        if ne:
            mention_ids[i, :ne] = instance.mention_ids

        local = build_visibility(instance)  # (nt+ne, nt+ne)
        # Scatter into padded coordinates: tokens at [0, nt), entities at
        # [max_tokens, max_tokens+ne).
        index = np.concatenate([np.arange(nt), max_tokens + np.arange(ne)])
        visibility[i][np.ix_(index, index)] = local
        # Pad positions must attend somewhere for a well-defined softmax; let
        # every pad see itself (outputs are discarded via the masks anyway).
        diagonal = np.arange(length)
        visibility[i, diagonal, diagonal] = True

    return {
        "token_ids": token_ids,
        "token_kind": token_kind,
        "token_col": token_col,
        "token_pos": token_pos,
        "token_mask": token_mask,
        "entity_ids": entity_ids,
        "entity_type": entity_type,
        "entity_row": entity_row,
        "entity_col": entity_col,
        "entity_mask": entity_mask,
        "mention_ids": mention_ids,
        "visibility": visibility,
    }


def group_by_table(items: Sequence[Any],
                   table_of: Optional[Callable[[Any], Any]] = None
                   ) -> Dict[str, List[Any]]:
    """Group ``items`` by their table id, preserving insertion order.

    ``table_of`` maps an item to its :class:`~repro.data.tables.Table`
    (default: the item's ``table`` attribute).  Fine-tuning tasks train and
    predict on per-table groups so each table is encoded exactly once per
    step; this is the shared implementation of the ``by_table`` pattern used
    across the task heads and the training engine.
    """
    if table_of is None:
        table_of = lambda item: item.table
    groups: Dict[str, List[Any]] = {}
    for item in items:
        groups.setdefault(table_of(item).table_id, []).append(item)
    return groups


def encode_table(linearizer, table, extra_entity_slots: int = 0
                 ) -> Tuple[TableInstance, Dict[str, np.ndarray]]:
    """Linearize one table and collate it into a batch of size one.

    Returns ``(instance, batch)`` — the single-table encoding step shared by
    every task head's training and prediction paths.
    """
    instance = linearizer.encode(table, extra_entity_slots=extra_entity_slots)
    return instance, collate([instance])


#: Supported epoch orders for :func:`batches_of` and ``TrainSpec.shuffle``.
SHUFFLE_MODES = ("flat", "bucket")


def bucket_key(instance: TableInstance) -> Tuple[int, int]:
    """The padding-equivalence class of an instance.

    Instances sharing ``(n_tokens, n_entities)`` collate with zero padding
    waste; length-bucketed batching groups by this key.
    """
    return (instance.n_tokens, instance.n_entities)


def bucketed_chunk_indices(keys: Sequence[Any], batch_size: int,
                           order: np.ndarray,
                           rng: Optional[np.random.Generator] = None
                           ) -> List[List[int]]:
    """Split a (possibly permuted) index ``order`` into same-key chunks.

    Each chunk holds at most ``batch_size`` indices, all sharing a key, so
    collating a chunk pads nothing.  Every index in ``order`` appears in
    exactly one chunk.  When ``rng`` is given the chunk order is shuffled —
    otherwise buckets would be visited in a systematic (first-appearance)
    order, biasing training towards same-shape runs.
    """
    groups: Dict[Any, List[int]] = {}
    for i in order:
        groups.setdefault(keys[int(i)], []).append(int(i))
    chunks: List[List[int]] = []
    for members in groups.values():
        chunks.extend(members[start:start + batch_size]
                      for start in range(0, len(members), batch_size))
    if rng is not None and len(chunks) > 1:
        chunks = [chunks[int(i)] for i in rng.permutation(len(chunks))]
    return chunks


def shard_bucketed_chunk_indices(shard_ids: Sequence[int], keys: Sequence[Any],
                                 batch_size: int, rng: np.random.Generator
                                 ) -> List[List[int]]:
    """Shard-local bucketed epoch order (``TrainSpec.shuffle="shard"``).

    Shards are visited in a seeded random order; within each shard its items
    are permuted and grouped into same-``key`` chunks of at most
    ``batch_size`` (via :func:`bucketed_chunk_indices`).  Every item appears
    in exactly one chunk, and consecutive chunks stay inside one payload
    shard, so a memory-mapped dataset touches one shard's pages at a time.
    Keys come from the shard *index* (e.g. the packed ``rows << 16 | cols``
    shape code), so planning an epoch reads no payload bytes at all.
    """
    shards: Dict[int, List[int]] = {}
    for position, shard in enumerate(shard_ids):
        shards.setdefault(int(shard), []).append(position)
    visit = sorted(shards)
    visit = [visit[int(i)] for i in rng.permutation(len(visit))]
    chunks: List[List[int]] = []
    for shard in visit:
        members = shards[shard]
        order = np.asarray(members)[rng.permutation(len(members))]
        chunks.extend(bucketed_chunk_indices(keys, batch_size, order, rng))
    return chunks


def batches_of(instances: List[TableInstance], batch_size: int,
               rng: np.random.Generator = None, shuffle: str = "flat"):
    """Yield collated batches, optionally shuffling instance order.

    ``shuffle="flat"`` (the default) keeps the historical order bit-for-bit:
    one optional permutation over all instances, then sequential chunks of
    ``batch_size``.  ``shuffle="bucket"`` groups instances by
    :func:`bucket_key` so each batch collates like-shaped instances with no
    padding waste; coverage is identical (every instance appears exactly
    once per pass) but the order is only seeded-equivalent, not bit-equal,
    to the flat path.
    """
    if shuffle not in SHUFFLE_MODES:
        raise ValueError(f"unknown shuffle mode {shuffle!r}; "
                         f"expected one of {SHUFFLE_MODES}")
    order = np.arange(len(instances))
    if rng is not None:
        order = rng.permutation(len(instances))
    if shuffle == "bucket":
        keys = [bucket_key(instance) for instance in instances]
        for chunk in bucketed_chunk_indices(keys, batch_size, order, rng):
            yield collate([instances[i] for i in chunk])
        return
    for start in range(0, len(instances), batch_size):
        chunk = [instances[int(i)] for i in order[start:start + batch_size]]
        yield collate(chunk)
