"""Input embeddings (paper Section 4.2).

Tokens: ``x_t = w + t + p`` — word + type (caption/header) + position
(Eqn. 1).  Entity cells: ``x_e = LINEAR([e_e; e_m]) + t_e`` where ``e_m`` is
the average word embedding of the mention tokens (Eqns. 2–3) and ``t_e``
distinguishes topic / subject / object cells.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.config import TURLConfig
from repro.nn import Dropout, Embedding, LayerNorm, Linear, Module, Tensor, concat
from repro.text.vocab import MASK_ID, PAD_ID


class TableEmbedding(Module):
    """Embeds the token and entity parts of a linearized table batch."""

    def __init__(self, vocab_size: int, entity_vocab_size: int,
                 config: TURLConfig, rng: np.random.Generator):
        super().__init__()
        self.config = config
        dim = config.dim
        self.word = Embedding(vocab_size, dim, rng)
        self.position = Embedding(max(config.max_caption_tokens,
                                      config.max_header_tokens), dim, rng)
        self.token_type = Embedding(2, dim, rng)  # 0 caption, 1 header
        self.entity = Embedding(entity_vocab_size, dim, rng)
        self.entity_type = Embedding(3, dim, rng)  # topic/subject/object
        self.fuse = Linear(2 * dim, dim, rng)
        self.norm = LayerNorm(dim)
        self.dropout = Dropout(config.dropout, rng=np.random.default_rng(rng.integers(2**31)))

    # -- pieces ------------------------------------------------------------
    def token_embeddings(self, batch: Dict[str, np.ndarray]) -> Tensor:
        """(B, Lt, d) input embeddings for metadata tokens (Eqn. 1)."""
        words = self.word(batch["token_ids"])
        types = self.token_type(np.clip(batch["token_kind"], 0, 1))
        positions = self.position(batch["token_pos"])
        return words + types + positions

    def mention_embeddings(self, mention_ids: np.ndarray,
                           mention_masked: np.ndarray) -> Tensor:
        """(B, Le, d) mean word embedding of mention tokens (Eqn. 3).

        ``mention_masked`` marks cells whose mention is hidden by MER; those
        receive the [MASK] word embedding instead of their true mention.
        """
        batch, length, width = mention_ids.shape
        effective = mention_ids.copy()
        # Replace the first slot of masked mentions by [MASK], rest by PAD.
        effective[mention_masked] = PAD_ID
        effective[mention_masked, 0] = MASK_ID

        token_vectors = self.word(effective)  # (B, Le, Lm, d)
        valid = (effective != PAD_ID).astype(np.float64)  # (B, Le, Lm)
        counts = np.maximum(valid.sum(axis=-1, keepdims=True), 1.0)
        weights = Tensor(valid[..., None] / counts[..., None])
        return (token_vectors * weights).sum(axis=2)

    def entity_embeddings(self, batch: Dict[str, np.ndarray]) -> Tensor:
        """(B, Le, d) entity-cell input embeddings (Eqn. 2)."""
        entity_vectors = self.entity(batch["entity_ids"])
        mention_masked = batch.get(
            "mention_masked",
            np.zeros(batch["entity_ids"].shape, dtype=bool))
        mention_vectors = self.mention_embeddings(batch["mention_ids"], mention_masked)
        fused = self.fuse(concat([entity_vectors, mention_vectors], axis=-1))
        types = self.entity_type(batch["entity_type"])
        return fused + types

    # -- combined -----------------------------------------------------------
    def forward(self, batch: Dict[str, np.ndarray]) -> Tensor:
        """(B, L, d) embeddings for the full element sequence."""
        tokens = self.token_embeddings(batch)
        entities = self.entity_embeddings(batch)
        combined = concat([tokens, entities], axis=1)
        return self.dropout(self.norm(combined))
