"""MER candidate-set construction (paper Section 4.4).

Ranking over the full 926 K entity vocabulary is infeasible, so the paper
ranks masked entities against a candidate set combining (1) entities in the
current table, (2) entities that co-occur with those in the table corpus,
and (3) randomly sampled negatives.  :class:`CandidateBuilder` precomputes a
co-occurrence index over the training corpus and assembles per-batch
candidate arrays plus remapped labels.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Set, Tuple

import numpy as np

from repro.config import TURLConfig
from repro.core.masking import IGNORE
from repro.data.corpus import TableCorpus
from repro.text.vocab import SPECIAL_TOKENS, Vocabulary

_FIRST_REAL_ID = len(SPECIAL_TOKENS)


def _first_occurrence(values: np.ndarray) -> List[int]:
    """Distinct values in first-appearance order, as Python ints.

    Inserting this list into a ``set`` reproduces the exact internal layout
    of inserting the raw (duplicated) stream, because re-inserting a present
    element never mutates the hash table — which is what keeps the
    ``rng.choice`` draws over set-iteration-ordered pools bit-identical
    between :meth:`CandidateBuilder.build` and its reference.
    """
    if not len(values):
        return []
    _, index = np.unique(values, return_index=True)
    return values[np.sort(index)].tolist()


class CandidateBuilder:
    """Builds candidate entity sets for MER training and evaluation."""

    def __init__(self, corpus: TableCorpus, entity_vocab: Vocabulary,
                 config: TURLConfig = TURLConfig(), max_cooccurrences: int = 200):
        self.entity_vocab = entity_vocab
        self.config = config
        self.cooccurrence: Dict[int, Set[int]] = defaultdict(set)
        for table in corpus:
            vocab_ids = {
                entity_vocab.id_of(entity_id)
                for entity_id in table.linked_entities()
            }
            vocab_ids = {v for v in vocab_ids if v >= _FIRST_REAL_ID}
            for vocab_id in vocab_ids:
                bucket = self.cooccurrence[vocab_id]
                if len(bucket) < max_cooccurrences:
                    bucket |= vocab_ids - {vocab_id}

    def build(self, batch_entity_ids: np.ndarray, mer_labels: np.ndarray,
              rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
        """Assemble the candidate array and remap labels onto it.

        Returns ``(candidate_ids, remapped_labels)`` where
        ``candidate_ids`` has shape ``(C,)`` (entity-vocabulary ids) and
        ``remapped_labels`` matches ``mer_labels``'s shape with candidate
        indexes (or ``IGNORE``).

        Vectorized: id extraction, the over-budget trim, and label remapping
        run as numpy set operations over sorted arrays instead of per-element
        Python loops.  Output is bit-identical to :meth:`_reference_build`
        for the same ``rng`` state: the co-occurrence pool is still assembled
        through the same Python-set operations (its *iteration order* feeds
        ``rng.choice``, so it must be preserved exactly), and the deduplicated
        ids are inserted in first-occurrence order, which leaves every set's
        internal layout identical to inserting the raw duplicated stream.
        """
        config = self.config
        labels = np.asarray(mer_labels).reshape(-1)
        true_ids = set(_first_occurrence(labels[labels != IGNORE]))
        entities = np.asarray(batch_entity_ids).reshape(-1)
        table_ids = set(_first_occurrence(entities[entities >= _FIRST_REAL_ID]))
        candidates: Set[int] = true_ids | table_ids

        cooccurring: Set[int] = set()
        for vocab_id in table_ids | true_ids:
            cooccurring |= self.cooccurrence.get(vocab_id, set())
        cooccurring -= candidates
        if cooccurring:
            pool = np.fromiter(cooccurring, dtype=np.int64,
                               count=len(cooccurring))
            take = min(len(pool), config.n_cooccurrence_candidates)
            chosen = rng.choice(len(pool), size=take, replace=False)
            candidates.update(pool[chosen].tolist())

        n_random = config.n_random_negatives
        if n_random and len(self.entity_vocab) > _FIRST_REAL_ID:
            negatives = rng.integers(_FIRST_REAL_ID, len(self.entity_vocab),
                                     size=n_random)
            candidates.update(negatives.tolist())

        candidate_ids = np.sort(np.fromiter(candidates, dtype=np.int64,
                                            count=len(candidates)))
        if len(candidate_ids) > config.max_candidates:
            # Never drop true ids; trim from the non-true remainder.
            keep = np.sort(np.fromiter(true_ids, dtype=np.int64,
                                       count=len(true_ids)))
            others = np.setdiff1d(candidate_ids, keep, assume_unique=True)
            chosen = rng.choice(len(others),
                                size=max(0, config.max_candidates - len(keep)),
                                replace=False)
            candidate_ids = np.sort(np.concatenate([keep, others[chosen]]))

        remapped = np.full(mer_labels.shape, IGNORE, dtype=np.int64)
        selected = mer_labels != IGNORE
        remapped[selected] = np.searchsorted(candidate_ids,
                                             mer_labels[selected])
        return candidate_ids, remapped

    def _reference_build(self, batch_entity_ids: np.ndarray,
                         mer_labels: np.ndarray,
                         rng: np.random.Generator
                         ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-element Python-set implementation of :meth:`build`.

        The pre-optimization original, kept as the equivalence-test oracle
        and the ``repro.bench`` candidate-build baseline; :meth:`build` must
        produce bit-identical output from an identical ``rng`` state.
        """
        config = self.config
        true_ids = set(int(v) for v in mer_labels[mer_labels != IGNORE])
        table_ids = set(int(v) for v in batch_entity_ids.reshape(-1)
                        if v >= _FIRST_REAL_ID)
        candidates: Set[int] = true_ids | table_ids

        cooccurring: Set[int] = set()
        for vocab_id in table_ids | true_ids:
            cooccurring |= self.cooccurrence.get(vocab_id, set())
        cooccurring -= candidates
        if cooccurring:
            pool = np.fromiter(cooccurring, dtype=np.int64)
            take = min(len(pool), config.n_cooccurrence_candidates)
            chosen = rng.choice(len(pool), size=take, replace=False)
            candidates |= {int(pool[int(i)]) for i in chosen}

        n_random = config.n_random_negatives
        if n_random and len(self.entity_vocab) > _FIRST_REAL_ID:
            negatives = rng.integers(_FIRST_REAL_ID, len(self.entity_vocab),
                                     size=n_random)
            candidates |= {int(v) for v in negatives}

        ordered = sorted(candidates)
        if len(ordered) > config.max_candidates:
            # Never drop true ids; trim from the non-true remainder.
            keep = sorted(true_ids)
            others = [v for v in ordered if v not in true_ids]
            chosen = rng.choice(len(others),
                                size=max(0, config.max_candidates - len(keep)),
                                replace=False)
            ordered = sorted(keep + [others[int(i)] for i in chosen])

        candidate_ids = np.asarray(ordered, dtype=np.int64)
        position = {vocab_id: index for index, vocab_id in enumerate(ordered)}
        remapped = np.full(mer_labels.shape, IGNORE, dtype=np.int64)
        selected = mer_labels != IGNORE
        remapped[selected] = [position[int(v)] for v in mer_labels[selected]]
        return candidate_ids, remapped
