"""TURL core: the paper's primary contribution.

- :mod:`repro.core.linearize` — table → token/entity sequence (Figure 3);
- :mod:`repro.core.visibility` — the structure visibility matrix (Section 4.3);
- :mod:`repro.core.embedding` — input embeddings for tokens and entity cells
  (Section 4.2, Eqns. 1–3);
- :mod:`repro.core.model` — the structure-aware encoder with MLM/MER
  projection heads (Figure 2);
- :mod:`repro.core.masking` — MLM and MER masking policies (Section 4.4);
- :mod:`repro.core.candidates` — MER candidate-set construction;
- :mod:`repro.core.pretrain` — the pre-training loop and the object-entity
  prediction probe used by the Figure 7 ablations.
"""

from repro.core.linearize import TableInstance, Linearizer
from repro.core.visibility import build_visibility
from repro.core.model import TURLModel
from repro.core.masking import MaskingPolicy, MaskedInstance
from repro.core.candidates import CandidateBuilder
from repro.core.pretrain import Pretrainer, PretrainStats

__all__ = [
    "TableInstance",
    "Linearizer",
    "build_visibility",
    "TURLModel",
    "MaskingPolicy",
    "MaskedInstance",
    "CandidateBuilder",
    "Pretrainer",
    "PretrainStats",
]
