"""Cell filling (paper Section 6.6, Table 9).

Given a subject entity and an object-column header, predict the object
entity.  All methods share the candidate-finding module from [36]: entities
that appear in the same row as the subject anywhere in the pre-training
corpus, filtered by header relatedness ``P(h'|h) > 0`` (Eqn. 14, estimated
from header co-occurrence statistics).

TURL needs **no fine-tuning** here: the query is exactly the MER
pre-training task — a one-row partial table with the object cell masked —
and the pre-trained MER head ranks the candidates (Eqn. 6).
"""

from __future__ import annotations

import warnings
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.batching import encode_table
from repro.core.linearize import Linearizer
from repro.core.model import TURLModel
from repro.data.corpus import TableCorpus
from repro.data.table import Column, EntityCell, Table
from repro.nn import eval_mode, no_grad
from repro.obs import get_registry, trace
from repro.tasks.metrics import TaskMetrics, precision_at_k
from repro.tasks.schema_augmentation import normalize_header
from repro.text.vocab import MASK_ID


@dataclass
class FillingInstance:
    """One (subject entity, object header) -> object entity query."""

    table: Table
    subject_id: str
    subject_mention: str
    object_header: str
    true_object: str


def build_filling_instances(corpus: TableCorpus, min_pairs: int = 3
                            ) -> List[FillingInstance]:
    """Queries from held-out subject–object column pairs (Section 6.6)."""
    instances = []
    for table in corpus:
        subject_col = table.subject_column
        subjects = table.columns[subject_col].cells
        for col in table.entity_columns():
            if col == subject_col:
                continue
            column = table.columns[col]
            pairs = [
                (s, o) for s, o in zip(subjects, column.cells)
                if s.is_linked and o.is_linked
            ]
            if len(pairs) < min_pairs:
                continue
            for subject_cell, object_cell in pairs:
                instances.append(FillingInstance(
                    table, subject_cell.entity_id, subject_cell.mention,
                    column.header, object_cell.entity_id))
    return instances


class HeaderStatistics:
    """Header relatedness ``P(h'|h)`` from corpus co-occurrence (Eqn. 14).

    ``n(h', h)`` counts table pairs that contain the same object entity for
    the same subject entity under headers ``h'`` and ``h``.
    """

    def __init__(self, corpus: TableCorpus):
        # (anchor, value) -> headers under which the value appeared in the
        # same row as the anchor (matches the broadened candidate finding).
        pair_headers: Dict[Tuple[str, str], Set[str]] = defaultdict(set)
        for table in corpus:
            entity_cols = table.entity_columns()
            headers = {col: normalize_header(table.columns[col].header)
                       for col in entity_cols}
            for row in range(table.n_rows):
                linked = [(col, table.columns[col].cells[row])
                          for col in entity_cols
                          if table.columns[col].cells[row].is_linked]
                for col_a, cell_a in linked:
                    for col_b, cell_b in linked:
                        if col_a == col_b:
                            continue
                        pair_headers[(cell_a.entity_id, cell_b.entity_id)].add(
                            headers[col_b])

        self.n: Counter = Counter()
        for headers in pair_headers.values():
            headers = sorted(headers)
            for i, h1 in enumerate(headers):
                for h2 in headers[i:]:
                    self.n[(h1, h2)] += 1
                    if h1 != h2:
                        self.n[(h2, h1)] += 1

        self._totals: Counter = Counter()
        for (h1, h2), count in self.n.items():
            self._totals[h2] += count

    def probability(self, source_header: str, target_header: str) -> float:
        """``P(h'|h) = n(h', h) / sum_h'' n(h'', h)``."""
        source = normalize_header(source_header)
        target = normalize_header(target_header)
        total = self._totals.get(target, 0)
        if not total:
            return 0.0
        return self.n.get((source, target), 0) / total


class CellFillingCandidates:
    """Row-co-occurrence candidate finding with header filtering."""

    def __init__(self, corpus: TableCorpus, statistics: HeaderStatistics):
        self.statistics = statistics
        # entity -> list of (same-row entity, source header of that entity).
        # The paper's candidate finding uses *all* entities appearing in the
        # same row as the query subject anywhere in the corpus.
        self.row_neighbors: Dict[str, List[Tuple[str, str]]] = defaultdict(list)
        for table in corpus:
            entity_cols = table.entity_columns()
            headers = {col: normalize_header(table.columns[col].header)
                       for col in entity_cols}
            for row in range(table.n_rows):
                cells = [(col, table.columns[col].cells[row])
                         for col in entity_cols]
                linked = [(col, cell) for col, cell in cells if cell.is_linked]
                for col_a, cell_a in linked:
                    for col_b, cell_b in linked:
                        if col_a == col_b:
                            continue
                        self.row_neighbors[cell_a.entity_id].append(
                            (cell_b.entity_id, headers[col_b]))

    def candidates_for(self, subject_id: str, object_header: str,
                       filter_related: bool = True
                       ) -> List[Tuple[str, List[str]]]:
        """Candidates as ``(entity, source headers)``; optionally filtered to
        ``P(h'|h) > 0`` (the paper's recall/size trade-off)."""
        grouped: Dict[str, Set[str]] = defaultdict(set)
        for object_id, header in self.row_neighbors.get(subject_id, ()):
            grouped[object_id].add(header)
        results = []
        for object_id, headers in grouped.items():
            if filter_related:
                headers = {h for h in headers
                           if self.statistics.probability(h, object_header) > 0}
                if not headers:
                    continue
            results.append((object_id, sorted(headers)))
        return sorted(results)

    def recall(self, instances: Sequence[FillingInstance],
               filter_related: bool = True) -> Tuple[float, float]:
        """(recall, mean candidate count) of candidate finding."""
        hits, sizes = [], []
        for instance in instances:
            candidates = self.candidates_for(instance.subject_id,
                                             instance.object_header,
                                             filter_related)
            ids = {c for c, _ in candidates}
            hits.append(1.0 if instance.true_object in ids else 0.0)
            sizes.append(len(ids))
        return (float(np.mean(hits)) if hits else 0.0,
                float(np.mean(sizes)) if sizes else 0.0)


class TURLCellFiller:
    """Zero-shot cell filling via the pre-trained MER head."""

    def __init__(self, model: TURLModel, linearizer: Linearizer):
        self.model = model
        self.linearizer = linearizer

    def _query_table(self, instance: FillingInstance) -> Table:
        source = instance.table
        return Table(
            table_id=f"{source.table_id}_fill",
            page_title=source.page_title,
            section_title=source.section_title,
            caption=source.caption,
            topic_entity=source.topic_entity,
            subject_column=0,
            columns=[
                Column(source.columns[source.subject_column].header, "entity",
                       [EntityCell(instance.subject_id, instance.subject_mention)]),
                Column(instance.object_header, "entity",
                       [EntityCell(None, "")]),
            ],
        )

    def rank(self, instance: FillingInstance,
             candidates: Sequence[str]) -> List[str]:
        """Rank candidate object entities for the masked cell."""
        if not candidates:
            return []
        encoded, batch = encode_table(self.linearizer,
                                      self._query_table(instance))
        # The object cell is the last entity position; mask it fully.
        object_position = encoded.n_entities - 1
        batch["entity_ids"][0, object_position] = MASK_ID
        mention_masked = np.zeros(batch["entity_ids"].shape, dtype=bool)
        mention_masked[0, object_position] = True
        batch["mention_masked"] = mention_masked

        vocab_ids = np.asarray(
            [self.linearizer.entity_vocab.id_of(c) for c in candidates],
            dtype=np.int64)
        get_registry().counter("task.cell_filling.rankings").inc()
        with trace("task/cell_filling/rank"), eval_mode(self.model), no_grad():
            _, entity_hidden = self.model.encode(batch)
            logits = self.model.mer_logits(entity_hidden, vocab_ids).data
        scores = logits[0, object_position]
        order = np.argsort(-scores)
        return [candidates[int(i)] for i in order]

    def evaluate(self, instances: Sequence[FillingInstance],
                 candidate_finder: CellFillingCandidates,
                 ks: Sequence[int] = (1, 3, 5, 10)) -> TaskMetrics:
        """P@K over instances whose truth survives candidate finding."""
        per_k: Dict[int, List[float]] = {k: [] for k in ks}
        for instance in instances:
            candidates = [c for c, _ in candidate_finder.candidates_for(
                instance.subject_id, instance.object_header)]
            if instance.true_object not in candidates:
                continue
            ranked = self.rank(instance, candidates)
            for k in ks:
                per_k[k].append(precision_at_k(ranked, {instance.true_object}, k))
        values = {f"p@{k}": float(np.mean(v)) if v else 0.0
                  for k, v in per_k.items()}
        return TaskMetrics(task="cell_filling", values=values,
                           primary=f"p@{min(ks)}" if ks else "")

    def evaluate_precision_at(self, instances: Sequence[FillingInstance],
                              candidate_finder: CellFillingCandidates,
                              ks: Sequence[int] = (1, 3, 5, 10)) -> Dict[int, float]:
        """Deprecated alias of :meth:`evaluate`; returns ``{k: P@K}``."""
        warnings.warn("evaluate_precision_at() is deprecated; use "
                      "evaluate(...).values['p@<k>']", DeprecationWarning,
                      stacklevel=2)
        metrics = self.evaluate(instances, candidate_finder, ks=ks)
        return {k: metrics.values[f"p@{k}"] for k in ks}
