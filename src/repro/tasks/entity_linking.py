"""Entity linking (paper Section 6.2, Table 4).

The task follows the paper's two-stage setting: a lookup service proposes up
to 50 candidates per mention (candidate generation), and the model under
test disambiguates.  TURL encodes the table with every cell's entity
embedding masked — only cell text and metadata are available, exactly the
downstream condition — and scores each KB candidate by matching the cell's
contextualized representation against a candidate representation built from
the candidate's *name, description and types* (Eqn. 8).

Scoring counts follow the paper: a false positive is a wrong link; a mention
with no candidates yields no prediction and only hurts recall.  The "Oracle"
row counts an instance correct whenever the truth is among the candidates.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.batching import encode_table, group_by_table
from repro.core.context import TURLContext
from repro.core.linearize import Linearizer
from repro.core.model import TURLModel
from repro.data.corpus import TableCorpus
from repro.data.dataset import coerce_training_instances
from repro.data.table import Table
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.lookup import LookupService
from repro.nn import (
    Embedding,
    Linear,
    Module,
    Parameter,
    Tensor,
    concat,
    cross_entropy_logits,
    eval_mode,
    no_grad,
    stack,
)
from repro.obs import RunJournal, trace
from repro.train import TrainableTask, Trainer, TrainSpec
from repro.tasks.metrics import PrecisionRecallF1
from repro.text.tokenizer import WordPieceTokenizer
from repro.text.vocab import MASK_ID, PAD_ID


@dataclass
class LinkingInstance:
    """One mention to disambiguate."""

    table: Table
    row: int
    col: int
    mention: str
    true_id: str
    candidates: List[str]
    candidate_scores: List[float] = field(default_factory=list)

    @property
    def truth_in_candidates(self) -> bool:
        return self.true_id in self.candidates


def build_linking_dataset(corpus: TableCorpus, lookup: LookupService,
                          max_candidates: int = 50,
                          require_truth: bool = False,
                          max_instances: Optional[int] = None,
                          seed: int = 0) -> List[LinkingInstance]:
    """Extract linked mentions with lookup candidates.

    ``require_truth=True`` reproduces the paper's *training* filtering: drop
    mentions whose ground truth the lookup fails to propose.  Evaluation sets
    keep every mention.
    """
    instances: List[LinkingInstance] = []
    for table in corpus:
        for row, col, cell in table.all_entity_cells():
            if not cell.is_linked:
                continue
            results = lookup.lookup(cell.mention, k=max_candidates)
            candidates = [r.entity_id for r in results]
            scores = [r.score for r in results]
            instance = LinkingInstance(table, row, col, cell.mention,
                                       cell.entity_id, candidates, scores)
            if require_truth and not instance.truth_in_candidates:
                continue
            instances.append(instance)
    if max_instances is not None and len(instances) > max_instances:
        rng = np.random.default_rng(seed)
        chosen = rng.choice(len(instances), size=max_instances, replace=False)
        instances = [instances[int(i)] for i in sorted(chosen)]
    return instances


def evaluate_linking(predictions: Sequence[Optional[str]],
                     instances: Sequence[LinkingInstance]) -> PrecisionRecallF1:
    """Paper scoring: FP = wrong link; no-prediction only hurts recall."""
    tp = fp = 0
    for predicted, instance in zip(predictions, instances):
        if predicted is None:
            continue
        if predicted == instance.true_id:
            tp += 1
        else:
            fp += 1
    fn = len(instances) - tp
    return PrecisionRecallF1.from_counts(tp, fp, fn)


def oracle_metrics(instances: Sequence[LinkingInstance]) -> PrecisionRecallF1:
    """Lookup (Oracle): correct whenever the truth is among candidates."""
    predictions = [instance.true_id if instance.truth_in_candidates else
                   (instance.candidates[0] if instance.candidates else None)
                   for instance in instances]
    return evaluate_linking(predictions, instances)


class EntityLinkingTask(TrainableTask):
    """Entity disambiguation as an engine task (one item = one table group).

    Only trainable mentions — truth among the candidates and more than one
    candidate — are kept, matching the paper's training filter.
    """

    name = "task/entity_linking"

    def __init__(self, linker: "TURLEntityLinker",
                 instances: Sequence[LinkingInstance]):
        self.module = linker
        self.linker = linker
        self.instances = list(instances)

    def build_batches(self) -> List[List[LinkingInstance]]:
        eligible = [instance for instance in self.instances
                    if instance.truth_in_candidates
                    and len(instance.candidates) > 1]
        by_table = group_by_table(eligible)
        return [by_table[table_id] for table_id in sorted(by_table)]

    def item_size(self, group: List[LinkingInstance]) -> int:
        return len(group)

    def loss(self, group: List[LinkingInstance],
             rng: np.random.Generator) -> Optional[Tensor]:
        linker = self.linker
        entity_hidden, coordinates = linker._cell_hidden(group[0].table)
        position_of = {coord: i for i, coord in enumerate(coordinates)}
        total = None
        for instance in group:
            position = position_of.get((instance.row, instance.col))
            if position is None:
                continue
            logits = linker._score_cell(entity_hidden[position],
                                        instance.candidates,
                                        instance.candidate_scores).reshape(1, -1)
            target = np.asarray([instance.candidates.index(instance.true_id)])
            loss = cross_entropy_logits(logits, target)
            total = loss if total is None else total + loss
        if total is None:
            return None
        return total * (1.0 / len(group))


class TURLEntityLinker(Module):
    """TURL fine-tuned for entity disambiguation.

    Candidate representation (Eqn. 8):
    ``e_kb = [MEAN(name words); MEAN(description words); MEAN(type embeddings)]``
    with name/description words embedded by the shared word-embedding table
    and a type-embedding table learned during fine-tuning.  The matching
    score projects the cell representation to the 3d candidate space.
    """

    def __init__(self, model: TURLModel, linearizer: Linearizer, kb: KnowledgeBase,
                 type_names: Sequence[str], seed: int = 0,
                 use_description: bool = True, use_types: bool = True,
                 use_entity_embedding: bool = True,
                 max_description_tokens: int = 16, max_name_tokens: int = 6):
        super().__init__()
        self.model = model
        self.linearizer = linearizer
        self.kb = kb
        self.use_description = use_description
        self.use_types = use_types
        # The paper omits pre-trained entity embeddings here because its
        # target KB (DBpedia) is disjoint from the corpus entity vocabulary.
        # Our synthetic KB *is* the corpus vocabulary, so the MER head can
        # contribute its co-occurrence knowledge as an extra coherence term
        # (documented adaptation — see DESIGN.md).
        self.use_entity_embedding = use_entity_embedding
        self.type_index = {name: i for i, name in enumerate(type_names)}
        rng = np.random.default_rng(seed)
        dim = model.config.dim
        self.type_embedding = Embedding(max(1, len(type_names)), dim, rng)
        self.match = Linear(dim, 3 * dim, rng)
        # The paper's full-scale model learns sub-word string matching inside
        # the encoder; at our compact scale we supply the candidate
        # generator's string score as an extra logit with a learned weight
        # (documented substitution — see DESIGN.md).
        self.string_weight = Parameter(np.array([4.0]))
        self.coherence_weight = Parameter(np.array([1.0]))
        self._logit_scale = 1.0 / np.sqrt(3 * dim)
        self._mer_scale = 1.0 / np.sqrt(dim)
        self._token_cache: Dict[str, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        self.max_description_tokens = max_description_tokens
        self.max_name_tokens = max_name_tokens

    # -- candidate representations -------------------------------------------
    def _entity_tokens(self, entity_id: str) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        cached = self._token_cache.get(entity_id)
        if cached is not None:
            return cached
        entity = self.kb.get(entity_id)
        tokenizer = self.linearizer.tokenizer
        name_ids = np.asarray(
            tokenizer.encode(entity.name, max_length=self.max_name_tokens) or [PAD_ID],
            dtype=np.int64)
        description_ids = np.asarray(
            tokenizer.encode(entity.description,
                             max_length=self.max_description_tokens) or [PAD_ID],
            dtype=np.int64)
        type_ids = np.asarray(
            [self.type_index[t] for t in entity.all_types() if t in self.type_index]
            or [0], dtype=np.int64)
        self._token_cache[entity_id] = (name_ids, description_ids, type_ids)
        return self._token_cache[entity_id]

    def candidate_representation(self, entity_id: str) -> Tensor:
        """(3d,) candidate vector per Eqn. 8, honoring the ablation flags."""
        name_ids, description_ids, type_ids = self._entity_tokens(entity_id)
        word = self.model.embedding.word
        dim = self.model.config.dim
        name_part = word(name_ids).mean(axis=0)
        if self.use_description:
            description_part = word(description_ids).mean(axis=0)
        else:
            description_part = Tensor(np.zeros(dim))
        if self.use_types:
            type_part = self.type_embedding(type_ids).mean(axis=0)
        else:
            type_part = Tensor(np.zeros(dim))
        return concat([name_part, description_part, type_part], axis=-1)

    # -- encoding ------------------------------------------------------------
    def _cell_hidden(self, table: Table) -> Tuple[Tensor, List[Tuple[int, int]]]:
        """Encode ``table`` with all entity embeddings masked; return entity
        hidden states and the (row, col) of each entity position."""
        instance, batch = encode_table(self.linearizer, table)
        # Downstream condition: entity ids unknown -> masked; mentions kept.
        masked_ids = batch["entity_ids"].copy()
        masked_ids[batch["entity_mask"]] = MASK_ID
        batch["entity_ids"] = masked_ids
        _, entity_hidden = self.model.encode(batch)
        coordinates = list(zip(instance.entity_row.tolist(),
                               instance.entity_col.tolist()))
        return entity_hidden[0], coordinates

    def _score_cell(self, cell_hidden: Tensor, candidates: List[str],
                    string_scores: Optional[Sequence[float]] = None) -> Tensor:
        projected = self.match(cell_hidden)  # (3d,)
        candidate_matrix = stack(
            [self.candidate_representation(c) for c in candidates], axis=0)
        logits = (candidate_matrix @ projected.reshape(-1, 1)).reshape(-1) * self._logit_scale
        if string_scores is not None and len(string_scores) == len(candidates):
            logits = logits + self.string_weight * Tensor(
                np.asarray(string_scores, dtype=np.float64))
        if self.use_entity_embedding:
            vocab_ids = np.asarray(
                [self.linearizer.entity_vocab.id_of(c) for c in candidates],
                dtype=np.int64)
            # Deliberately frozen: the pre-trained co-occurrence knowledge is
            # consumed as a feature, not re-trained (re-training it memorizes
            # the fine-tuning mentions and destroys generalization).  detach()
            # severs the tape on purpose; the gather itself stays a tensor op.
            vectors = self.model.embedding.entity.weight.detach().take_rows(vocab_ids)
            mer = (vectors @ self.model.mer_project(cell_hidden).reshape(-1, 1))
            logits = logits + self.coherence_weight * (mer.reshape(-1) * self._mer_scale)
        return logits

    # -- fine-tuning -----------------------------------------------------------
    def training_task(self, instances: Sequence[LinkingInstance]) -> EntityLinkingTask:
        """This head's fine-tuning objective for :class:`repro.train.Trainer`."""
        return EntityLinkingTask(self, instances)

    def finetune(self, instances: Sequence[LinkingInstance], epochs: int = 3,
                 batch_size: int = 1, lr: float = 1e-3, seed: int = 0,
                 spec: Optional[TrainSpec] = None,
                 max_instances: Optional[int] = None,
                 schedule: str = "constant",
                 gradient_clip: Optional[float] = None,
                 journal: Optional[RunJournal] = None,
                 learning_rate: Optional[float] = None) -> List[float]:
        """Cross-entropy over candidates; all parameters are trained.

        Runs on the shared :class:`repro.train.Trainer`; returns per-epoch
        losses.  ``schedule="linear"`` / ``gradient_clip`` opt into the
        paper's recipe; ``max_instances`` subsamples whole tables.  An
        explicit ``spec`` overrides the keyword recipe wholesale;
        ``learning_rate`` is a deprecated alias of ``lr``.  ``instances``
        accepts any :class:`repro.data.Dataset` (its train split is used);
        bare lists still work behind a ``DeprecationWarning``.
        """
        instances, _ = coerce_training_instances(
            instances, owner="TURLEntityLinker.finetune")
        if learning_rate is not None:
            warnings.warn("finetune(learning_rate=...) is deprecated; "
                          "pass lr=...", DeprecationWarning, stacklevel=2)
            lr = learning_rate
        if spec is None:
            spec = TrainSpec(epochs=epochs, batch_size=batch_size,
                             learning_rate=lr, schedule=schedule,
                             gradient_clip=gradient_clip, seed=seed,
                             max_items=max_instances)
        stats = Trainer(self.training_task(instances), spec,
                        journal=journal).fit()
        return stats.epoch_losses

    # -- inference -----------------------------------------------------------
    def predict(self, instances: Sequence[LinkingInstance],
                batch_size: Optional[int] = None) -> List[Optional[str]]:
        """Disambiguate every mention; ``batch_size`` bounds how many table
        groups are encoded per chunk (predictions are identical for any
        value — each table is scored independently)."""
        by_table = group_by_table(enumerate(instances),
                                  table_of=lambda pair: pair[1].table)
        groups = list(by_table.values())
        chunk = batch_size if batch_size and batch_size > 0 else len(groups) or 1
        results: Dict[int, Optional[str]] = {}
        with trace("task/entity_linking/predict"), eval_mode(self), no_grad():
            for start in range(0, len(groups), chunk):
                for group in groups[start:start + chunk]:
                    entity_hidden, coordinates = self._cell_hidden(group[0][1].table)
                    position_of = {coord: i for i, coord in enumerate(coordinates)}
                    for original_index, instance in group:
                        if not instance.candidates:
                            results[original_index] = None
                            continue
                        position = position_of.get((instance.row, instance.col))
                        if position is None:
                            results[original_index] = instance.candidates[0]
                            continue
                        scores = self._score_cell(entity_hidden[position],
                                                  instance.candidates,
                                                  instance.candidate_scores).data.reshape(-1)
                        results[original_index] = instance.candidates[int(scores.argmax())]
        return [results[i] for i in range(len(instances))]

    def evaluate(self, instances: Sequence[LinkingInstance]) -> PrecisionRecallF1:
        return evaluate_linking(self.predict(instances), instances)
