"""Shared encoding utilities for fine-tuning tasks.

Downstream tasks feed tables to the encoder under different *input
ablations* (paper Tables 4–7): with/without table metadata, with/without
pre-trained entity embeddings, with/without entity mentions.  This module
centralizes those switches plus the column-pooling of Eqn. 9.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.linearize import KIND_HEADER, TableInstance
from repro.data.table import Table
from repro.nn import Tensor, concat
from repro.text.vocab import MASK_ID, PAD_ID


@dataclass
class InputAblation:
    """Which input signals reach the encoder (paper Tables 5 and 7 rows)."""

    use_metadata: bool = True
    use_entity_embedding: bool = True
    use_mention: bool = True

    @classmethod
    def full(cls) -> "InputAblation":
        return cls()

    @classmethod
    def only_mention(cls) -> "InputAblation":
        return cls(use_metadata=False, use_entity_embedding=False)

    @classmethod
    def without_metadata(cls) -> "InputAblation":
        return cls(use_metadata=False)

    @classmethod
    def without_entity_embedding(cls) -> "InputAblation":
        return cls(use_entity_embedding=False)

    @classmethod
    def only_metadata(cls) -> "InputAblation":
        return cls(use_entity_embedding=False, use_mention=False)

    @classmethod
    def only_entity_embedding(cls) -> "InputAblation":
        return cls(use_metadata=False, use_mention=False)


def strip_metadata(table: Table) -> Table:
    """A copy of ``table`` with caption and headers blanked out."""
    stripped = copy.deepcopy(table)
    stripped.page_title = ""
    stripped.section_title = ""
    stripped.caption = ""
    for column in stripped.columns:
        column.header = ""
    return stripped


def apply_ablation_to_batch(batch: Dict[str, np.ndarray],
                            ablation: InputAblation) -> Dict[str, np.ndarray]:
    """Mask entity embeddings / mentions in a collated batch in place."""
    if not ablation.use_entity_embedding:
        real = batch["entity_mask"] & (batch["entity_ids"] != PAD_ID)
        ids = batch["entity_ids"].copy()
        ids[real] = MASK_ID
        batch["entity_ids"] = ids
    if not ablation.use_mention:
        batch["mention_masked"] = batch["entity_mask"].copy()
    return batch


def column_header_positions(instance: TableInstance, col: int) -> np.ndarray:
    return np.where((instance.token_kind == KIND_HEADER)
                    & (instance.token_col == col))[0]


def column_entity_positions(instance: TableInstance, col: int) -> np.ndarray:
    return np.where(instance.entity_col == col)[0]


def column_representation(token_hidden: Tensor, entity_hidden: Tensor,
                          instance: TableInstance, col: int) -> Tensor:
    """Eqn. 9: ``h_c = [MEAN(header token reps); MEAN(entity cell reps)]``.

    ``token_hidden`` / ``entity_hidden`` are single-table slices of shape
    ``(Lt, d)`` / ``(Le, d)``.  Missing headers or entities contribute a zero
    half, so ablated inputs still produce well-formed vectors.
    """
    dim = token_hidden.shape[-1]
    header_positions = column_header_positions(instance, col)
    entity_positions = column_entity_positions(instance, col)
    if len(header_positions):
        header_part = token_hidden[header_positions].mean(axis=0)
    else:
        header_part = Tensor(np.zeros(dim))
    if len(entity_positions):
        entity_part = entity_hidden[entity_positions].mean(axis=0)
    else:
        entity_part = Tensor(np.zeros(dim))
    return concat([header_part, entity_part], axis=-1)
