"""Relation extraction (paper Section 6.4, Table 7, Figure 6).

Subject–object column pairs are annotated with the KB relations shared by
more than half of their linked entity pairs (majority voting, exactly the
paper's labeling rule).  TURL pools both columns per Eqn. 9 and classifies
the concatenation with per-relation sigmoids (Eqn. 12).  The MAP-vs-steps
curve used in Figure 6 is produced by :meth:`TURLRelationExtractor.finetune`
with ``map_every`` set.
"""

from __future__ import annotations

import warnings
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.batching import encode_table
from repro.core.linearize import Linearizer
from repro.core.model import TURLModel
from repro.data.corpus import TableCorpus
from repro.data.dataset import SPLIT_NAMES, DatasetMetadata, strategy_counter
from repro.data.table import Table
from repro.kb.knowledge_base import KnowledgeBase
from repro.nn import Linear, Module, Tensor, binary_cross_entropy_logits, eval_mode, no_grad, stack
from repro.obs import RunJournal, trace
from repro.train import TrainableTask, Trainer, TrainSpec
from repro.tasks.encoding import (
    InputAblation,
    apply_ablation_to_batch,
    column_representation,
    strip_metadata,
)
from repro.tasks.metrics import PrecisionRecallF1, average_precision, multilabel_micro_prf


@dataclass
class RelationInstance:
    """One labeled subject–object column pair."""

    table: Table
    subject_col: int
    object_col: int
    relations: Set[str]


@dataclass
class RelationDataset:
    """Labeled column pairs per split; implements the
    :class:`repro.data.Dataset` protocol."""

    relation_names: List[str]
    train: List[RelationInstance] = field(default_factory=list)
    validation: List[RelationInstance] = field(default_factory=list)
    test: List[RelationInstance] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.train) + len(self.validation) + len(self.test)

    def __iter__(self):
        yield from self.train
        yield from self.validation
        yield from self.test

    def instances(self, split: str = "train") -> List[RelationInstance]:
        try:
            return list(getattr(self, split))
        except AttributeError:
            raise KeyError(f"unknown split {split!r}; "
                           f"expected one of {SPLIT_NAMES}") from None

    @property
    def metadata(self) -> DatasetMetadata:
        return DatasetMetadata(
            source="memory", n_records=len(self),
            split_sizes={name: len(getattr(self, name))
                         for name in SPLIT_NAMES},
            strategy_counts=strategy_counter(self),
            extra={"n_relations": len(self.relation_names)})

    @property
    def relation_index(self) -> Dict[str, int]:
        return {name: i for i, name in enumerate(self.relation_names)}

    def label_vector(self, instance: RelationInstance) -> np.ndarray:
        vector = np.zeros(len(self.relation_names))
        index = self.relation_index
        for relation in instance.relations:
            if relation in index:
                vector[index[relation]] = 1.0
        return vector


def column_pair_relations(table: Table, subject_col: int, object_col: int,
                          kb: KnowledgeBase, min_pairs: int = 3) -> Optional[Set[str]]:
    """Relations shared by more than half of the linked entity pairs."""
    pairs = []
    subjects = table.columns[subject_col].cells
    objects = table.columns[object_col].cells
    for subject_cell, object_cell in zip(subjects, objects):
        if subject_cell.is_linked and object_cell.is_linked:
            if subject_cell.entity_id in kb and object_cell.entity_id in kb:
                pairs.append((subject_cell.entity_id, object_cell.entity_id))
    if len(pairs) < min_pairs:
        return None
    counts: Counter = Counter()
    for subject, object_ in pairs:
        for relation in kb.relations_between(subject, object_):
            counts[relation] += 1
    shared = {r for r, c in counts.items() if c > len(pairs) / 2}
    return shared or None


def build_relation_dataset(kb: KnowledgeBase, train: TableCorpus,
                           validation: TableCorpus, test: TableCorpus,
                           min_relation_instances: int = 20) -> RelationDataset:
    def collect(corpus: TableCorpus) -> List[RelationInstance]:
        instances = []
        for table in corpus:
            subject = table.subject_column
            for col in table.entity_columns():
                if col == subject:
                    continue
                relations = column_pair_relations(table, subject, col, kb)
                if relations:
                    instances.append(RelationInstance(table, subject, col, relations))
        return instances

    train_instances = collect(train)
    counts: Counter = Counter()
    for instance in train_instances:
        counts.update(instance.relations)
    relation_names = sorted(r for r, c in counts.items()
                            if c >= min_relation_instances)
    kept = set(relation_names)

    def restrict(instances: List[RelationInstance]) -> List[RelationInstance]:
        out = []
        for instance in instances:
            relations = instance.relations & kept
            if relations:
                out.append(RelationInstance(instance.table, instance.subject_col,
                                            instance.object_col, relations))
        return out

    return RelationDataset(
        relation_names=relation_names,
        train=restrict(train_instances),
        validation=restrict(collect(validation)),
        test=restrict(collect(test)),
    )


class RelationExtractionTask(TrainableTask):
    """Relation extraction as an engine task (one item = one column pair)."""

    name = "task/relation_extraction"

    def __init__(self, extractor: "TURLRelationExtractor",
                 dataset: RelationDataset, map_instances: int = 40):
        self.module = extractor
        self.extractor = extractor
        self.dataset = dataset
        self.map_instances = map_instances

    def build_batches(self) -> List[RelationInstance]:
        return list(self.dataset.train)

    def loss(self, instance: RelationInstance,
             rng: np.random.Generator) -> Tensor:
        logits = self.extractor.pair_logits(instance).reshape(1, -1)
        labels = self.dataset.label_vector(instance).reshape(1, -1)
        return binary_cross_entropy_logits(logits, labels)

    def eval_metric(self) -> float:
        return self.extractor.validation_map(self.dataset,
                                             max_instances=self.map_instances)

    def config_dict(self) -> Dict[str, int]:
        return {"n_relations": len(self.dataset.relation_names)}


class TURLRelationExtractor(Module):
    """TURL fine-tuned for column-pair relation extraction (Eqn. 12)."""

    def __init__(self, model: TURLModel, linearizer: Linearizer,
                 n_relations: int, seed: int = 0,
                 ablation: InputAblation = InputAblation.full()):
        super().__init__()
        self.model = model
        self.linearizer = linearizer
        self.ablation = ablation
        rng = np.random.default_rng(seed)
        self.classifier = Linear(4 * model.config.dim, n_relations, rng)

    def _pair_representation(self, instance: RelationInstance) -> Tensor:
        table = (instance.table if self.ablation.use_metadata
                 else strip_metadata(instance.table))
        encoded, batch = encode_table(self.linearizer, table)
        apply_ablation_to_batch(batch, self.ablation)
        token_hidden, entity_hidden = self.model.encode(batch)
        subject = column_representation(token_hidden[0], entity_hidden[0],
                                        encoded, instance.subject_col)
        object_ = column_representation(token_hidden[0], entity_hidden[0],
                                        encoded, instance.object_col)
        return stack([subject, object_], axis=0).reshape(-1)

    def pair_logits(self, instance: RelationInstance) -> Tensor:
        return self.classifier(self._pair_representation(instance))

    # -- training ---------------------------------------------------------
    def training_task(self, dataset: RelationDataset,
                      map_instances: int = 40) -> RelationExtractionTask:
        """This head's fine-tuning objective for :class:`repro.train.Trainer`."""
        return RelationExtractionTask(self, dataset, map_instances=map_instances)

    def finetune(self, dataset: RelationDataset, epochs: int = 3,
                 batch_size: int = 1, lr: float = 1e-3, seed: int = 0,
                 spec: Optional[TrainSpec] = None,
                 max_instances: Optional[int] = None,
                 map_every: Optional[int] = None,
                 map_instances: int = 40, schedule: str = "constant",
                 gradient_clip: Optional[float] = None,
                 journal: Optional[RunJournal] = None,
                 learning_rate: Optional[float] = None) -> Dict[str, List[float]]:
        """Fine-tune; optionally record validation MAP every ``map_every``
        steps (Figure 6).  Returns ``{"losses": [...], "map_steps": [...],
        "map_values": [...]}``.

        Runs on the shared :class:`repro.train.Trainer`; ``schedule="linear"``
        / ``gradient_clip`` opt into the paper's recipe.  An explicit ``spec``
        overrides the keyword recipe wholesale; ``learning_rate`` is a
        deprecated alias of ``lr``.
        """
        if learning_rate is not None:
            warnings.warn("finetune(learning_rate=...) is deprecated; "
                          "pass lr=...", DeprecationWarning, stacklevel=2)
            lr = learning_rate
        if spec is None:
            spec = TrainSpec(epochs=epochs, batch_size=batch_size,
                             learning_rate=lr, schedule=schedule,
                             gradient_clip=gradient_clip, seed=seed,
                             max_items=max_instances, eval_every=map_every)
        task = self.training_task(dataset, map_instances=map_instances)
        stats = Trainer(task, spec, journal=journal).fit()
        return {"losses": stats.losses, "map_steps": stats.eval_steps,
                "map_values": stats.eval_values}

    # -- inference -----------------------------------------------------------
    def predict(self, instances: Sequence[RelationInstance],
                dataset: RelationDataset, threshold: float = 0.5) -> List[Set[str]]:
        predictions = []
        with trace("task/relation_extraction/predict"), eval_mode(self), no_grad():
            for instance in instances:
                logits = self.pair_logits(instance).data
                probabilities = 1.0 / (1.0 + np.exp(-logits))
                predicted = {dataset.relation_names[j]
                             for j in np.where(probabilities >= threshold)[0]}
                if not predicted:
                    predicted = {dataset.relation_names[int(probabilities.argmax())]}
                predictions.append(predicted)
        return predictions

    def evaluate(self, instances: Sequence[RelationInstance],
                 dataset: RelationDataset) -> PrecisionRecallF1:
        predictions = self.predict(instances, dataset)
        return multilabel_micro_prf(predictions, [i.relations for i in instances])

    def validation_map(self, dataset: RelationDataset,
                       max_instances: int = 40) -> float:
        """Mean average precision over ranked relations (Figure 6 metric)."""
        instances = dataset.validation[:max_instances]
        scores = []
        with eval_mode(self), no_grad():
            for instance in instances:
                logits = self.pair_logits(instance).data
                ranked = [dataset.relation_names[j] for j in np.argsort(-logits)]
                scores.append(average_precision(ranked, instance.relations))
        return float(np.mean(scores)) if scores else 0.0
