"""Evaluation metrics used across the benchmark tasks.

- Micro precision / recall / F1 for classification-style tasks (entity
  linking, column type annotation, relation extraction);
- average precision / MAP for ranking tasks (row population, schema
  augmentation, the Figure 6 curve);
- precision@K for cell filling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set


@dataclass
class TaskMetrics:
    """Uniform evaluation result shared by every task head's ``evaluate``.

    ``values`` maps metric names to numbers (``{"map": 0.41}``,
    ``{"p@1": ..., "p@3": ...}``); ``primary`` names the headline metric the
    paper reports for the task.  Heads whose natural result is a single
    number still return a ``TaskMetrics`` so callers — the serve layer, the
    CLI, the benchmark harness — consume one shape for all six tasks.
    """

    task: str
    values: Dict[str, float] = field(default_factory=dict)
    primary: str = ""

    @property
    def primary_value(self) -> float:
        """The headline metric (first value when ``primary`` is unset)."""
        if self.primary:
            return self.values[self.primary]
        return next(iter(self.values.values()), 0.0)

    def to_dict(self) -> Dict:
        return {"task": self.task, "primary": self.primary,
                "values": dict(self.values)}

    def __str__(self) -> str:
        rendered = " ".join(f"{name}={value:.4f}"
                            for name, value in self.values.items())
        return f"[{self.task}] {rendered}"


@dataclass
class PrecisionRecallF1:
    """Micro-averaged classification metrics."""

    precision: float
    recall: float
    f1: float

    @classmethod
    def from_counts(cls, true_positives: int, false_positives: int,
                    false_negatives: int) -> "PrecisionRecallF1":
        precision = (true_positives / (true_positives + false_positives)
                     if true_positives + false_positives else 0.0)
        recall = (true_positives / (true_positives + false_negatives)
                  if true_positives + false_negatives else 0.0)
        f1 = (2 * precision * recall / (precision + recall)
              if precision + recall else 0.0)
        return cls(precision, recall, f1)

    def as_percentages(self) -> "PrecisionRecallF1":
        return PrecisionRecallF1(self.precision * 100, self.recall * 100, self.f1 * 100)

    def __str__(self) -> str:
        return f"F1={self.f1:.4f} P={self.precision:.4f} R={self.recall:.4f}"


def multilabel_micro_prf(predictions: Sequence[Set], truths: Sequence[Set]) -> PrecisionRecallF1:
    """Micro P/R/F1 over multi-label prediction sets."""
    tp = fp = fn = 0
    for predicted, truth in zip(predictions, truths):
        tp += len(predicted & truth)
        fp += len(predicted - truth)
        fn += len(truth - predicted)
    return PrecisionRecallF1.from_counts(tp, fp, fn)


def average_precision(ranked: Sequence, relevant: Set) -> float:
    """AP of a ranked list against a relevant set (0 if nothing relevant)."""
    if not relevant:
        return 0.0
    hits = 0
    total = 0.0
    for index, item in enumerate(ranked, start=1):
        if item in relevant:
            hits += 1
            total += hits / index
    return total / len(relevant)


def mean_average_precision(ranked_lists: Iterable[Sequence],
                           relevant_sets: Iterable[Set]) -> float:
    """MAP over parallel iterables of rankings and relevance sets."""
    scores = [average_precision(ranked, relevant)
              for ranked, relevant in zip(ranked_lists, relevant_sets)]
    return float(sum(scores) / len(scores)) if scores else 0.0


def precision_at_k(ranked: Sequence, relevant: Set, k: int) -> float:
    """1.0 if any of the top-``k`` items is relevant, else 0.0.

    Cell filling has exactly one correct entity per instance, so P@K reduces
    to hit@K, matching the paper's usage.
    """
    return 1.0 if any(item in relevant for item in ranked[:k]) else 0.0


def recall_at_k(ranked: Sequence, relevant: Set, k: int) -> float:
    """Fraction of relevant items found in the top ``k``."""
    if not relevant:
        return 0.0
    found = sum(1 for item in ranked[:k] if item in relevant)
    return found / len(relevant)
