"""Schema augmentation (paper Section 6.7, Tables 10–11).

Given a caption and zero or more seed headers, recommend headers from a
header vocabulary collected over the pre-training corpus (headers appearing
in at least ``min_tables`` tables, normalized).  TURL encodes the caption +
seed headers + a ``[MASK]`` slot and scores the vocabulary with a learned
header-embedding matrix, fine-tuned with binary cross-entropy.
"""

from __future__ import annotations

import re
import warnings
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.core.batching import encode_table
from repro.core.linearize import Linearizer
from repro.core.model import TURLModel
from repro.data.corpus import TableCorpus
from repro.data.dataset import coerce_training_instances
from repro.data.table import Column, Table
from repro.nn import Module, Parameter, Tensor, binary_cross_entropy_logits, eval_mode, no_grad
from repro.obs import RunJournal, trace
from repro.train import TrainableTask, Trainer, TrainSpec
from repro.tasks.metrics import TaskMetrics, average_precision, mean_average_precision

_WS = re.compile(r"\s+")


def normalize_header(header: str) -> str:
    """Simple normalization: lower-case, collapse whitespace, strip."""
    return _WS.sub(" ", header.strip().lower())


def build_header_vocabulary(corpus: TableCorpus, min_tables: int = 3) -> List[str]:
    """Headers appearing in at least ``min_tables`` distinct tables."""
    counts: Counter = Counter()
    for table in corpus:
        for header in {normalize_header(h) for h in table.headers if h.strip()}:
            counts[header] += 1
    return sorted(h for h, c in counts.items() if c >= min_tables)


@dataclass
class SchemaInstance:
    """A schema-augmentation query."""

    table: Table
    seed_headers: List[str]
    target_headers: Set[str]

    @property
    def caption(self) -> str:
        return self.table.caption_text()


def build_schema_instances(corpus: TableCorpus, header_vocabulary: Sequence[str],
                           n_seed: int = 0) -> List[SchemaInstance]:
    vocabulary = set(header_vocabulary)
    instances = []
    for table in corpus:
        headers = [normalize_header(h) for h in table.headers if h.strip()]
        headers = [h for h in headers if h in vocabulary]
        if len(headers) <= n_seed:
            continue
        seeds = headers[:n_seed]
        targets = set(headers[n_seed:]) - set(seeds)
        if targets:
            instances.append(SchemaInstance(table, seeds, targets))
    return instances


class SchemaAugmentationTask(TrainableTask):
    """Header recommendation as an engine task (one item = one query).

    Queries whose targets fall outside the header vocabulary are skipped.
    """

    name = "task/schema_augmentation"

    def __init__(self, augmenter: "TURLSchemaAugmenter",
                 instances: Sequence[SchemaInstance]):
        self.module = augmenter
        self.augmenter = augmenter
        self.instances = list(instances)

    def build_batches(self) -> List[SchemaInstance]:
        return list(self.instances)

    def loss(self, instance: SchemaInstance,
             rng: np.random.Generator) -> Optional[Tensor]:
        augmenter = self.augmenter
        labels = np.zeros(len(augmenter.header_vocabulary))
        for header in instance.target_headers:
            position = augmenter.header_index.get(header)
            if position is not None:
                labels[position] = 1.0
        if labels.sum() == 0:
            return None
        logits = augmenter.header_logits(instance)
        return binary_cross_entropy_logits(logits, labels)

    def config_dict(self) -> Dict[str, int]:
        return {"n_headers": len(self.augmenter.header_vocabulary)}


class TURLSchemaAugmenter(Module):
    """TURL fine-tuned for header recommendation."""

    def __init__(self, model: TURLModel, linearizer: Linearizer,
                 header_vocabulary: Sequence[str], seed: int = 0):
        super().__init__()
        self.model = model
        self.linearizer = linearizer
        self.header_vocabulary = list(header_vocabulary)
        self.header_index = {h: i for i, h in enumerate(self.header_vocabulary)}
        # Header embeddings initialized from mean word embeddings.
        dim = model.config.dim
        word = model.embedding.word.weight.data
        matrix = np.zeros((len(self.header_vocabulary), dim))
        for i, header in enumerate(self.header_vocabulary):
            ids = linearizer.tokenizer.encode(header)
            if ids:
                matrix[i] = word[ids].mean(axis=0)
        self.header_embeddings = Parameter(matrix)

    def _query_table(self, instance: SchemaInstance) -> Table:
        """Caption + seed headers as empty columns."""
        source = instance.table
        columns = [Column(header, "text", []) for header in instance.seed_headers]
        if not columns:
            columns = [Column("", "text", [])]
        return Table(
            table_id=f"{source.table_id}_schema",
            page_title=source.page_title,
            section_title=source.section_title,
            caption=source.caption,
            topic_entity=None,
            subject_column=0,
            columns=columns,
        )

    def _mask_hidden(self, instance: SchemaInstance) -> Tensor:
        encoded, batch = encode_table(self.linearizer,
                                      self._query_table(instance),
                                      extra_entity_slots=1)
        _, entity_hidden = self.model.encode(batch)
        return entity_hidden[0, encoded.n_entities - 1]

    def header_logits(self, instance: SchemaInstance) -> Tensor:
        hidden = self._mask_hidden(instance).reshape(1, -1)
        return (hidden @ self.header_embeddings.transpose()).reshape(-1)

    def training_task(self, instances: Sequence[SchemaInstance]
                      ) -> SchemaAugmentationTask:
        """This head's fine-tuning objective for :class:`repro.train.Trainer`."""
        return SchemaAugmentationTask(self, instances)

    def finetune(self, instances: Sequence[SchemaInstance], epochs: int = 2,
                 batch_size: int = 1, lr: float = 1e-3, seed: int = 0,
                 spec: Optional[TrainSpec] = None,
                 max_instances: Optional[int] = None,
                 schedule: str = "constant",
                 gradient_clip: Optional[float] = None,
                 journal: Optional[RunJournal] = None,
                 learning_rate: Optional[float] = None) -> List[float]:
        """BCE fine-tuning on the shared :class:`repro.train.Trainer`;
        returns per-epoch losses.

        An explicit ``spec`` overrides the keyword recipe wholesale;
        ``learning_rate`` is a deprecated alias of ``lr``.  ``instances``
        accepts any :class:`repro.data.Dataset` (its train split is used);
        bare lists still work behind a ``DeprecationWarning``.
        """
        instances, _ = coerce_training_instances(
            instances, owner="TURLSchemaAugmenter.finetune")
        if learning_rate is not None:
            warnings.warn("finetune(learning_rate=...) is deprecated; "
                          "pass lr=...", DeprecationWarning, stacklevel=2)
            lr = learning_rate
        if spec is None:
            spec = TrainSpec(epochs=epochs, batch_size=batch_size,
                             learning_rate=lr, schedule=schedule,
                             gradient_clip=gradient_clip, seed=seed,
                             max_items=max_instances)
        stats = Trainer(self.training_task(instances), spec,
                        journal=journal).fit()
        return stats.epoch_losses

    def rank(self, instance: SchemaInstance) -> List[str]:
        with trace("task/schema_augmentation/rank"), eval_mode(self), no_grad():
            logits = self.header_logits(instance).data
        order = np.argsort(-logits)
        seeds = set(instance.seed_headers)
        return [self.header_vocabulary[int(i)] for i in order
                if self.header_vocabulary[int(i)] not in seeds]

    def evaluate(self, instances: Sequence[SchemaInstance]) -> TaskMetrics:
        """MAP over header rankings (paper Table 10)."""
        rankings = [self.rank(instance) for instance in instances]
        truths = [instance.target_headers for instance in instances]
        return TaskMetrics(
            task="schema_augmentation",
            values={"map": mean_average_precision(rankings, truths)},
            primary="map")

    def evaluate_map(self, instances: Sequence[SchemaInstance]) -> float:
        """Deprecated alias of :meth:`evaluate`; returns the bare MAP."""
        warnings.warn("evaluate_map() is deprecated; use "
                      "evaluate(...).values['map']", DeprecationWarning,
                      stacklevel=2)
        return self.evaluate(instances).primary_value

    def average_precision_for(self, instance: SchemaInstance) -> float:
        """Per-query AP (paper Table 11 case study)."""
        return average_precision(self.rank(instance), instance.target_headers)
