"""TUBE: the table understanding benchmark (paper Section 6).

Six tasks, each with a dataset builder over the corpus splits, a TURL
fine-tuning routine, and evaluation producing the metrics reported in the
paper's tables:

=====================  =======================  ====================
Task                   Paper artifact           Module
=====================  =======================  ====================
Entity linking         Table 4                  entity_linking
Column type annot.     Tables 5–6               column_type
Relation extraction    Table 7, Figure 6        relation_extraction
Row population         Table 8                  row_population
Cell filling           Table 9                  cell_filling
Schema augmentation    Tables 10–11             schema_augmentation
=====================  =======================  ====================
"""

from repro.tasks.metrics import (
    PrecisionRecallF1,
    TaskMetrics,
    average_precision,
    mean_average_precision,
    precision_at_k,
)

__all__ = [
    "PrecisionRecallF1",
    "TaskMetrics",
    "average_precision",
    "mean_average_precision",
    "precision_at_k",
]
