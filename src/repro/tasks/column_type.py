"""Column type annotation (paper Section 6.3, Tables 5–6).

Columns are annotated with the set of KB types common to all their linked
entities (multi-label).  TURL pools each column per Eqn. 9 and classifies
with per-type sigmoids (Eqns. 10–11); input ablations reproduce the rows of
Table 5.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.core.batching import encode_table, group_by_table
from repro.core.context import TURLContext
from repro.core.linearize import Linearizer
from repro.core.model import TURLModel
from repro.data.corpus import TableCorpus
from repro.data.dataset import SPLIT_NAMES, DatasetMetadata, strategy_counter
from repro.data.table import Table
from repro.kb.knowledge_base import KnowledgeBase
from repro.nn import Linear, Module, Tensor, binary_cross_entropy_logits, eval_mode, no_grad, stack
from repro.obs import RunJournal, get_registry, trace
from repro.train import TrainableTask, Trainer, TrainSpec
from repro.tasks.encoding import (
    InputAblation,
    apply_ablation_to_batch,
    column_representation,
    strip_metadata,
)
from repro.tasks.metrics import PrecisionRecallF1, multilabel_micro_prf


@dataclass
class ColumnInstance:
    """One labeled column."""

    table: Table
    col: int
    types: Set[str]


@dataclass
class ColumnTypeDataset:
    """Train/validation/test column instances plus the type vocabulary.

    Implements the :class:`repro.data.Dataset` protocol (``__len__`` /
    ``__iter__`` / ``instances`` / ``metadata``) so it plugs into any
    dataset-driven entry point.
    """

    type_names: List[str]
    train: List[ColumnInstance] = field(default_factory=list)
    validation: List[ColumnInstance] = field(default_factory=list)
    test: List[ColumnInstance] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.train) + len(self.validation) + len(self.test)

    def __iter__(self):
        yield from self.train
        yield from self.validation
        yield from self.test

    def instances(self, split: str = "train") -> List[ColumnInstance]:
        try:
            return list(getattr(self, split))
        except AttributeError:
            raise KeyError(f"unknown split {split!r}; "
                           f"expected one of {SPLIT_NAMES}") from None

    @property
    def metadata(self) -> DatasetMetadata:
        return DatasetMetadata(
            source="memory", n_records=len(self),
            split_sizes={name: len(getattr(self, name))
                         for name in SPLIT_NAMES},
            strategy_counts=strategy_counter(self),
            extra={"n_types": len(self.type_names)})

    @property
    def type_index(self) -> Dict[str, int]:
        return {name: i for i, name in enumerate(self.type_names)}

    def label_vector(self, instance: ColumnInstance) -> np.ndarray:
        vector = np.zeros(len(self.type_names))
        index = self.type_index
        for type_name in instance.types:
            if type_name in index:
                vector[index[type_name]] = 1.0
        return vector


def column_types(table: Table, col: int, kb: KnowledgeBase,
                 min_linked: int = 3) -> Optional[Set[str]]:
    """Types shared by every linked entity of the column (paper's
    'common types of its entities'), or None if under-linked."""
    linked = [cell.entity_id for cell in table.columns[col].cells if cell.is_linked]
    linked = [e for e in linked if e in kb]
    if len(linked) < min_linked:
        return None
    common: Optional[Set[str]] = None
    for entity_id in linked:
        types = set(kb.types_of(entity_id))
        common = types if common is None else common & types
    return common or None


def build_column_type_dataset(kb: KnowledgeBase, train: TableCorpus,
                              validation: TableCorpus, test: TableCorpus,
                              min_type_instances: int = 20) -> ColumnTypeDataset:
    """Collect labeled columns and the filtered type vocabulary."""

    def collect(corpus: TableCorpus) -> List[ColumnInstance]:
        instances = []
        for table in corpus:
            for col in table.entity_columns():
                types = column_types(table, col, kb)
                if types:
                    instances.append(ColumnInstance(table, col, types))
        return instances

    train_instances = collect(train)
    counts: Dict[str, int] = {}
    for instance in train_instances:
        for type_name in instance.types:
            counts[type_name] = counts.get(type_name, 0) + 1
    type_names = sorted(t for t, c in counts.items() if c >= min_type_instances)
    kept = set(type_names)

    def restrict(instances: List[ColumnInstance]) -> List[ColumnInstance]:
        restricted = []
        for instance in instances:
            types = instance.types & kept
            if types:
                restricted.append(ColumnInstance(instance.table, instance.col, types))
        return restricted

    return ColumnTypeDataset(
        type_names=type_names,
        train=restrict(train_instances),
        validation=restrict(collect(validation)),
        test=restrict(collect(test)),
    )


class ColumnTypeTask(TrainableTask):
    """Column type annotation as an engine task (one item = one table group)."""

    name = "task/column_type"

    def __init__(self, annotator: "TURLColumnTypeAnnotator",
                 dataset: ColumnTypeDataset):
        self.module = annotator
        self.annotator = annotator
        self.dataset = dataset

    def build_batches(self) -> List[List[ColumnInstance]]:
        by_table = group_by_table(self.dataset.train)
        return [by_table[table_id] for table_id in sorted(by_table)]

    def item_size(self, group: List[ColumnInstance]) -> int:
        return len(group)

    def loss(self, group: List[ColumnInstance], rng: np.random.Generator) -> Tensor:
        cols = [g.col for g in group]
        labels = np.stack([self.dataset.label_vector(g) for g in group])
        logits = self.annotator.column_logits(group[0].table, cols)
        return binary_cross_entropy_logits(logits, labels)

    def eval_metric(self) -> Optional[float]:
        if not self.dataset.validation:
            return None
        return self.annotator.evaluate(self.dataset.validation, self.dataset).f1

    def config_dict(self) -> Dict[str, int]:
        return {"n_types": len(self.dataset.type_names)}


class TURLColumnTypeAnnotator(Module):
    """TURL fine-tuned for multi-label column type annotation."""

    def __init__(self, model: TURLModel, linearizer: Linearizer,
                 n_types: int, seed: int = 0,
                 ablation: InputAblation = InputAblation.full()):
        super().__init__()
        self.model = model
        self.linearizer = linearizer
        self.ablation = ablation
        rng = np.random.default_rng(seed)
        self.classifier = Linear(2 * model.config.dim, n_types, rng)

    def _encode_table(self, table: Table):
        source = table if self.ablation.use_metadata else strip_metadata(table)
        instance, batch = encode_table(self.linearizer, source)
        apply_ablation_to_batch(batch, self.ablation)
        token_hidden, entity_hidden = self.model.encode(batch)
        return instance, token_hidden[0], entity_hidden[0]

    def column_logits(self, table: Table, cols: Sequence[int]) -> Tensor:
        """(n_cols, n_types) logits for the requested columns of one table."""
        instance, token_hidden, entity_hidden = self._encode_table(table)
        pooled = [column_representation(token_hidden, entity_hidden, instance, col)
                  for col in cols]
        return self.classifier(stack(pooled, axis=0))

    # -- training ---------------------------------------------------------
    def training_task(self, dataset: ColumnTypeDataset) -> ColumnTypeTask:
        """This head's fine-tuning objective for :class:`repro.train.Trainer`."""
        return ColumnTypeTask(self, dataset)

    def finetune(self, dataset: ColumnTypeDataset, epochs: int = 5,
                 batch_size: int = 1, lr: float = 1e-3, seed: int = 0,
                 spec: Optional[TrainSpec] = None,
                 max_instances: Optional[int] = None,
                 schedule: str = "constant",
                 gradient_clip: Optional[float] = None,
                 journal: Optional[RunJournal] = None,
                 learning_rate: Optional[float] = None) -> List[float]:
        """Fine-tune all parameters with BCE loss; returns per-epoch losses.

        Runs on the shared :class:`repro.train.Trainer`; ``schedule="linear"``
        and ``gradient_clip`` opt into the paper's pre-training recipe, and
        ``max_instances`` subsamples whole tables (see
        :func:`repro.train.subsample_items`).  An explicit ``spec`` overrides
        the keyword recipe wholesale; ``learning_rate`` is a deprecated alias
        of ``lr``.
        """
        if learning_rate is not None:
            warnings.warn("finetune(learning_rate=...) is deprecated; "
                          "pass lr=...", DeprecationWarning, stacklevel=2)
            lr = learning_rate
        if spec is None:
            spec = TrainSpec(epochs=epochs, batch_size=batch_size,
                             learning_rate=lr, schedule=schedule,
                             gradient_clip=gradient_clip, seed=seed,
                             max_items=max_instances)
        stats = Trainer(self.training_task(dataset), spec, journal=journal).fit()
        return stats.epoch_losses

    # -- inference -----------------------------------------------------------
    def predict(self, instances: Sequence[ColumnInstance],
                dataset: ColumnTypeDataset, threshold: float = 0.5) -> List[Set[str]]:
        by_table = group_by_table(enumerate(instances),
                                  table_of=lambda pair: pair[1].table)
        get_registry().counter("task.column_type.predictions").inc(len(instances))
        results: Dict[int, Set[str]] = {}
        with trace("task/column_type/predict"), eval_mode(self), no_grad():
            for group in by_table.values():
                cols = [inst.col for _, inst in group]
                logits = self.column_logits(group[0][1].table, cols).data
                probabilities = 1.0 / (1.0 + np.exp(-logits))
                for (original_index, _), row in zip(group, probabilities):
                    predicted = {dataset.type_names[j]
                                 for j in np.where(row >= threshold)[0]}
                    if not predicted:  # always emit the single best type
                        predicted = {dataset.type_names[int(row.argmax())]}
                    results[original_index] = predicted
        return [results[i] for i in range(len(instances))]

    def evaluate(self, instances: Sequence[ColumnInstance],
                 dataset: ColumnTypeDataset) -> PrecisionRecallF1:
        predictions = self.predict(instances, dataset)
        truths = [instance.types for instance in instances]
        return multilabel_micro_prf(predictions, truths)

    def per_type_f1(self, instances: Sequence[ColumnInstance],
                    dataset: ColumnTypeDataset,
                    type_names: Sequence[str]) -> Dict[str, float]:
        """Per-type F1 (paper Table 6)."""
        predictions = self.predict(instances, dataset)
        report: Dict[str, float] = {}
        for type_name in type_names:
            tp = fp = fn = 0
            for predicted, instance in zip(predictions, instances):
                has = type_name in instance.types
                said = type_name in predicted
                tp += has and said
                fp += said and not has
                fn += has and not said
            report[type_name] = PrecisionRecallF1.from_counts(tp, fp, fn).f1
        return report
