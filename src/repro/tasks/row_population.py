"""Row population (paper Section 6.5, Table 8).

Given a partial table (caption + optional seed subject entities), rank
candidate entities to fill the subject column.  All methods share one
candidate generation module, as in the paper: a BM25 search over the
pre-training corpus (query = caption, or seed-entity mentions when seeds
exist) whose retrieved tables contribute their subject entities as
candidates — so Recall is identical across methods and only MAP
differentiates them.

TURL appends a ``[MASK]`` entity slot to the partial table and ranks
candidates with ``P(e) = sigmoid(LINEAR(h_mask) · e_e)``, fine-tuned with
the multi-label soft-margin loss of Eqn. 13.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.batching import encode_table
from repro.core.linearize import Linearizer
from repro.core.model import TURLModel
from repro.data.corpus import TableCorpus
from repro.data.dataset import coerce_training_instances
from repro.data.table import Column, EntityCell, Table
from repro.nn import Module, Parameter, Tensor, binary_cross_entropy_logits, eval_mode, no_grad
from repro.obs import RunJournal, trace
from repro.train import TrainableTask, Trainer, TrainSpec
from repro.retrieval.bm25 import BM25Index
from repro.tasks.metrics import TaskMetrics, mean_average_precision, recall_at_k
from repro.text.vocab import SPECIAL_TOKENS

_FIRST_REAL_ID = len(SPECIAL_TOKENS)


@dataclass
class PopulationInstance:
    """A partial table: caption, seed subject entities, and the targets."""

    table: Table
    seed_entities: List[str]
    target_entities: Set[str]

    @property
    def caption(self) -> str:
        return self.table.caption_text()


def build_population_instances(corpus: TableCorpus, n_seed: int,
                               min_subject_entities: int) -> List[PopulationInstance]:
    """One instance per table with enough linked subject entities."""
    instances = []
    for table in corpus:
        subjects = table.subject_entities()
        if len(subjects) <= max(min_subject_entities, n_seed):
            continue
        seeds = subjects[:n_seed]
        targets = set(subjects[n_seed:]) - set(seeds)
        if targets:
            instances.append(PopulationInstance(table, seeds, targets))
    return instances


def partial_table(instance: PopulationInstance, kb=None) -> Table:
    """The visible part of the table: caption + subject column seeds."""
    source = instance.table
    subject = source.columns[source.subject_column]
    cells = []
    for cell in subject.cells:
        if cell.is_linked and cell.entity_id in instance.seed_entities:
            cells.append(EntityCell(cell.entity_id, cell.mention))
        if len(cells) == len(instance.seed_entities):
            break
    return Table(
        table_id=f"{source.table_id}_partial",
        page_title=source.page_title,
        section_title=source.section_title,
        caption=source.caption,
        topic_entity=source.topic_entity,
        subject_column=0,
        columns=[Column(subject.header, "entity", cells)],
    )


class PopulationCandidateGenerator:
    """BM25 candidate generation shared by every method (Section 6.5)."""

    def __init__(self, corpus: TableCorpus, k_tables: int = 20):
        self.corpus = corpus
        self.k_tables = k_tables
        self.index = BM25Index({t.table_id: t.caption_text() for t in corpus})
        self._subjects: Dict[str, List[str]] = {
            t.table_id: t.subject_entities() for t in corpus}
        self._mentions: Dict[str, str] = {}
        for table in corpus:
            for cell in table.subject_cells():
                if cell.is_linked and cell.entity_id not in self._mentions:
                    self._mentions[cell.entity_id] = cell.mention

    def query_for(self, instance: PopulationInstance) -> str:
        if instance.seed_entities:
            mentions = [self._mentions.get(e, "") for e in instance.seed_entities]
            return instance.caption + " " + " ".join(mentions)
        return instance.caption

    def candidates_for(self, instance: PopulationInstance) -> List[str]:
        """Ranked-by-retrieval candidate entities (deduplicated)."""
        results = self.index.search(self.query_for(instance), k=self.k_tables)
        seen: Dict[str, None] = {}
        for table_id, _score in results:
            for entity_id in self._subjects.get(table_id, ()):
                if entity_id not in seen and entity_id not in instance.seed_entities:
                    seen[entity_id] = None
        return list(seen)

    def retrieved_tables(self, instance: PopulationInstance) -> List[str]:
        return [table_id for table_id, _ in
                self.index.search(self.query_for(instance), k=self.k_tables)]

    def recall(self, instances: Sequence[PopulationInstance]) -> float:
        """Candidate-set recall, identical for every ranking method."""
        scores = []
        for instance in instances:
            candidates = set(self.candidates_for(instance))
            scores.append(len(candidates & instance.target_entities)
                          / len(instance.target_entities))
        return float(np.mean(scores)) if scores else 0.0


class RowPopulationTask(TrainableTask):
    """Row population as an engine task (one item = one partial table).

    Items without candidates or without a positive target among them are
    skipped (no optimization step).
    """

    name = "task/row_population"

    def __init__(self, populator: "TURLRowPopulator",
                 instances: Sequence[PopulationInstance],
                 generator: PopulationCandidateGenerator,
                 max_candidates: int = 100):
        self.module = populator
        self.populator = populator
        self.instances = list(instances)
        self.generator = generator
        self.max_candidates = max_candidates

    def build_batches(self) -> List[PopulationInstance]:
        return list(self.instances)

    def loss(self, instance: PopulationInstance,
             rng: np.random.Generator) -> Optional[Tensor]:
        candidates = self.generator.candidates_for(instance)[:self.max_candidates]
        if not candidates:
            return None
        labels = np.asarray([1.0 if c in instance.target_entities else 0.0
                             for c in candidates])
        if labels.sum() == 0:
            return None
        logits = self.populator._candidate_logits(instance, candidates)
        return binary_cross_entropy_logits(logits, labels)


class TURLRowPopulator(Module):
    """TURL fine-tuned for row population (Eqn. 13)."""

    def __init__(self, model: TURLModel, linearizer: Linearizer, seed: int = 0):
        super().__init__()
        self.model = model
        self.linearizer = linearizer
        # Compact-scale adaptation (see DESIGN.md): the candidate's pre-trained
        # embedding similarity to the seed entities enters the score directly
        # with a learned weight; the paper's full-size encoder learns this
        # routing internally.
        self.seed_weight = Parameter(np.array([1.0]))
        self._dim_scale = 1.0 / np.sqrt(model.config.dim)

    def _mask_hidden(self, instance: PopulationInstance) -> Tensor:
        """Hidden state of the appended [MASK] entity slot."""
        table = partial_table(instance)
        encoded, batch = encode_table(self.linearizer, table,
                                      extra_entity_slots=1)
        _, entity_hidden = self.model.encode(batch)
        return entity_hidden[0, encoded.n_entities - 1]

    def _candidate_logits(self, instance: PopulationInstance,
                          candidates: Sequence[str]) -> Tensor:
        hidden = self._mask_hidden(instance)
        vocab_ids = np.asarray(
            [self.linearizer.entity_vocab.id_of(c) for c in candidates],
            dtype=np.int64)
        projected = self.model.mer_project(hidden.reshape(1, -1))
        vectors = self.model.embedding.entity.weight.take_rows(vocab_ids)
        logits = (projected @ vectors.transpose()).reshape(-1) * self._dim_scale
        if instance.seed_entities:
            seed_ids = np.asarray(
                [self.linearizer.entity_vocab.id_of(e)
                 for e in instance.seed_entities], dtype=np.int64)
            table = self.model.embedding.entity.weight.data
            seed_mean = table[seed_ids].mean(axis=0)
            similarity = (table[vocab_ids] @ seed_mean) * self._dim_scale
            logits = logits + self.seed_weight * Tensor(similarity)
        return logits

    def training_task(self, instances: Sequence[PopulationInstance],
                      generator: PopulationCandidateGenerator,
                      max_candidates: int = 100) -> RowPopulationTask:
        """This head's fine-tuning objective for :class:`repro.train.Trainer`."""
        return RowPopulationTask(self, instances, generator,
                                 max_candidates=max_candidates)

    def finetune(self, instances: Sequence[PopulationInstance],
                 generator: PopulationCandidateGenerator, epochs: int = 2,
                 batch_size: int = 1, lr: float = 1e-3, seed: int = 0,
                 spec: Optional[TrainSpec] = None,
                 max_instances: Optional[int] = None,
                 max_candidates: int = 100,
                 schedule: str = "constant",
                 gradient_clip: Optional[float] = None,
                 journal: Optional[RunJournal] = None,
                 learning_rate: Optional[float] = None) -> List[float]:
        """Eqn. 13 fine-tuning on the shared :class:`repro.train.Trainer`;
        returns per-epoch losses.

        An explicit ``spec`` overrides the keyword recipe wholesale;
        ``learning_rate`` is a deprecated alias of ``lr``.  ``instances``
        accepts any :class:`repro.data.Dataset` (its train split is used);
        bare lists still work behind a ``DeprecationWarning``.
        """
        instances, _ = coerce_training_instances(
            instances, owner="TURLRowPopulator.finetune")
        if learning_rate is not None:
            warnings.warn("finetune(learning_rate=...) is deprecated; "
                          "pass lr=...", DeprecationWarning, stacklevel=2)
            lr = learning_rate
        if spec is None:
            spec = TrainSpec(epochs=epochs, batch_size=batch_size,
                             learning_rate=lr, schedule=schedule,
                             gradient_clip=gradient_clip, seed=seed,
                             max_items=max_instances)
        task = self.training_task(instances, generator,
                                  max_candidates=max_candidates)
        stats = Trainer(task, spec, journal=journal).fit()
        return stats.epoch_losses

    def rank(self, instance: PopulationInstance,
             candidates: Sequence[str]) -> List[str]:
        if not candidates:
            return []
        with trace("task/row_population/rank"), eval_mode(self), no_grad():
            logits = self._candidate_logits(instance, candidates).data
        order = np.argsort(-logits)
        return [candidates[int(i)] for i in order]

    def evaluate(self, instances: Sequence[PopulationInstance],
                 generator: PopulationCandidateGenerator) -> TaskMetrics:
        """MAP over candidate rankings (paper Table 8)."""
        rankings = []
        truths = []
        for instance in instances:
            candidates = generator.candidates_for(instance)
            rankings.append(self.rank(instance, candidates))
            truths.append(instance.target_entities)
        return TaskMetrics(
            task="row_population",
            values={"map": mean_average_precision(rankings, truths)},
            primary="map")

    def evaluate_map(self, instances: Sequence[PopulationInstance],
                     generator: PopulationCandidateGenerator) -> float:
        """Deprecated alias of :meth:`evaluate`; returns the bare MAP."""
        warnings.warn("evaluate_map() is deprecated; use "
                      "evaluate(...).values['map']", DeprecationWarning,
                      stacklevel=2)
        return self.evaluate(instances, generator).primary_value
