"""Corpus pre-processing: relational-table identification and partitioning.

Implements the heuristics of paper Section 5.1:

- *entity columns* are columns with at least one linked cell and a legal
  header (noisy headers like "note" / "comment" / bare digits are dropped);
- a *relational table* has a subject column among its first two columns whose
  linked entities are unique, at least three linked entities overall, and at
  most twenty columns;
- the *held-out evaluation set* is a high-quality subset: more than four
  linked subject entities, at least three entity columns, and more than half
  of entity-column cells linked; it is split ~1:1 into validation and test.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.data.corpus import CorpusSplits, TableCorpus
from repro.data.table import Table

ILLEGAL_HEADERS = {"note", "notes", "comment", "comments", "reference", "references", "ref", ""}


def _legal_header(header: str) -> bool:
    normalized = header.strip().lower()
    if normalized in ILLEGAL_HEADERS:
        return False
    if normalized.isdigit():
        return False
    return True


def detect_subject_column(table: Table) -> Optional[int]:
    """Find the subject column per the paper's heuristic.

    The subject column must be within the first two columns, be an entity
    column with a legal header, and contain unique linked entities.
    """
    for index in range(min(2, table.n_columns)):
        column = table.columns[index]
        if not column.is_entity or not _legal_header(column.header):
            continue
        linked = [cell.entity_id for cell in column.cells if cell.is_linked]
        if linked and len(linked) == len(set(linked)):
            return index
    return None


def is_relational(table: Table) -> bool:
    """Apply the full Section 5.1 relational-table filter."""
    if table.n_columns > 20:
        return False
    if detect_subject_column(table) is None:
        return False
    n_linked = sum(1 for _, _, cell in table.all_entity_cells() if cell.is_linked)
    return n_linked >= 3


def filter_relational(corpus: TableCorpus) -> TableCorpus:
    """Keep only relational tables; re-detect their subject columns."""
    kept = []
    for table in corpus:
        if not is_relational(table):
            continue
        table.subject_column = detect_subject_column(table)
        kept.append(table)
    return TableCorpus(kept)


def is_high_quality(table: Table) -> bool:
    """Held-out eligibility: the paper's high-quality subset criteria."""
    subject_linked = [c for c in table.subject_cells() if c.is_linked]
    if len(subject_linked) <= 4:
        return False
    if len(table.entity_columns()) < 3:
        return False
    cells = [cell for _, _, cell in table.all_entity_cells()]
    if not cells:
        return False
    linked_fraction = sum(1 for cell in cells if cell.is_linked) / len(cells)
    return linked_fraction > 0.5


def partition_corpus(corpus: TableCorpus, heldout_fraction: float = 0.1,
                     seed: int = 0) -> CorpusSplits:
    """Partition into train / validation / test (paper Section 5.1).

    A random sample of high-quality tables (up to ``heldout_fraction`` of the
    corpus) forms the held-out set, split roughly 1:1 into validation and
    test; everything else is pre-training data.
    """
    rng = np.random.default_rng(seed)
    eligible = [i for i, table in enumerate(corpus) if is_high_quality(table)]
    target = int(len(corpus) * heldout_fraction)
    if len(eligible) > target:
        chosen = rng.choice(len(eligible), size=target, replace=False)
        eligible = [eligible[int(i)] for i in chosen]
    heldout = set(eligible)

    train = [t for i, t in enumerate(corpus) if i not in heldout]
    heldout_tables = [corpus[i] for i in sorted(heldout)]
    order = rng.permutation(len(heldout_tables))
    half = len(heldout_tables) // 2
    validation = [heldout_tables[int(i)] for i in order[:half]]
    test = [heldout_tables[int(i)] for i in order[half:]]
    return CorpusSplits(TableCorpus(train), TableCorpus(validation), TableCorpus(test))
