"""The unified ``Dataset`` protocol over in-memory and sharded corpora.

Every corpus-shaped object in the repo — the legacy in-memory
:class:`~repro.data.corpus.TableCorpus`, the partitioned
:class:`~repro.data.corpus.CorpusSplits`, the memory-mapped
:class:`~repro.data.shards.ShardedDataset`, and the per-task instance
containers — speaks one small protocol:

``__len__``
    total number of records (tables or task instances)
``__iter__``
    iterate every record, in stable on-disk / construction order
``instances(split)``
    the records of one split (``"train"`` / ``"validation"`` / ``"test"``);
    possibly a lazy view that decodes on iteration
``metadata``
    a :class:`DatasetMetadata` describing provenance, split sizes and the
    per-strategy difficulty mix

Training entry points (``Trainer`` via the task heads' ``finetune``,
``Pretrainer``, ``build_context``) accept any implementation.  Bare
``list``/``tuple`` arguments still work behind a ``DeprecationWarning``
shim (:func:`coerce_training_instances`) and are scheduled for removal two
PRs after this one; lint rule ``API002`` keeps new list-typed corpus
parameters out of the tree.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Protocol, Sequence, Tuple, runtime_checkable

SPLIT_NAMES = ("train", "validation", "test")


@dataclass(frozen=True)
class DatasetMetadata:
    """Provenance and composition of a dataset."""

    #: where the records live: ``"memory"`` or a shard-directory path
    source: str
    #: total record count across splits
    n_records: int
    #: records per split name
    split_sizes: Dict[str, int] = field(default_factory=dict)
    #: records per synthesis strategy tag (difficulty slicing); untagged
    #: records are counted under ``"untagged"``
    strategy_counts: Dict[str, int] = field(default_factory=dict)
    #: format- or source-specific details (shard count, seed, config, ...)
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "n_records": self.n_records,
            "split_sizes": dict(self.split_sizes),
            "strategy_counts": dict(self.strategy_counts),
            "extra": dict(self.extra),
        }


@runtime_checkable
class Dataset(Protocol):
    """Structural protocol every corpus container implements."""

    def __len__(self) -> int: ...

    def __iter__(self) -> Iterator[Any]: ...

    def instances(self, split: str = "train") -> Sequence[Any]: ...

    @property
    def metadata(self) -> DatasetMetadata: ...


class InstanceSet:
    """Minimal in-memory :class:`Dataset` over flat instance lists.

    The migration target for call sites that used to pass bare lists into
    ``finetune(...)``: wrap the list (optionally per split) and every entry
    point accepts it.
    """

    def __init__(self, train: Sequence[Any] = (),
                 validation: Sequence[Any] = (),
                 test: Sequence[Any] = (), source: str = "memory"):
        self._splits: Dict[str, List[Any]] = {
            "train": list(train),
            "validation": list(validation),
            "test": list(test),
        }
        self._source = source

    def __len__(self) -> int:
        return sum(len(items) for items in self._splits.values())

    def __iter__(self) -> Iterator[Any]:
        for name in SPLIT_NAMES:
            yield from self._splits[name]

    def instances(self, split: str = "train") -> List[Any]:
        if split not in self._splits:
            raise KeyError(f"unknown split {split!r}; "
                           f"expected one of {SPLIT_NAMES}")
        return list(self._splits[split])

    @property
    def metadata(self) -> DatasetMetadata:
        return DatasetMetadata(
            source=self._source,
            n_records=len(self),
            split_sizes={name: len(items)
                         for name, items in self._splits.items()},
            strategy_counts=strategy_counter(self),
        )


def strategy_counter(records: Any) -> Dict[str, int]:
    """Count records by strategy tag (``"untagged"`` when absent/None)."""
    counts: Dict[str, int] = {}
    for record in records:
        table = getattr(record, "table", record)
        tag = getattr(table, "strategy", None) or "untagged"
        counts[tag] = counts.get(tag, 0) + 1
    return counts


def coerce_training_instances(data: Any, *, owner: str,
                              split: str = "train") -> Tuple[List[Any], Any]:
    """Accept a :class:`Dataset` (preferred) or a bare sequence (deprecated).

    Returns ``(instances, dataset_or_None)``.  Bare ``list``/``tuple``
    arguments emit a ``DeprecationWarning`` (mirroring the PR 5
    ``evaluate_map`` shim) but keep working bit-identically; any other
    iterable is consumed silently, since instance-level generators are a
    supported internal idiom.
    """
    if isinstance(data, Dataset) and not isinstance(data, (list, tuple)):
        return list(data.instances(split)), data
    if isinstance(data, (list, tuple)):
        warnings.warn(
            f"{owner}: passing a bare list of instances is deprecated; "
            "pass a Dataset (e.g. repro.data.InstanceSet(train=...)) — "
            "list arguments will be removed two PRs after PR 10",
            DeprecationWarning, stacklevel=3)
        return list(data), None
    return list(data), None
