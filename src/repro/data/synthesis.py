"""Wikipedia-style table synthesis from the knowledge base.

The paper pre-trains on 570 K relational tables extracted from Wikipedia.
Offline we generate the equivalent corpus directly from the synthetic KB:
each *recipe* mirrors a common Wikipedia table genre (filmographies, award
recipient lists as in the paper's Figure 1, club squads, discographies,
"list of X in Y" pages) and instantiates tables whose cells are KB entities
related by real KB facts.  Because tables are drawn from facts, the entity
co-occurrence structure that Masked Entity Recovery is designed to capture is
present by construction.

Noise model (all rates configurable through :class:`SynthesisConfig`):

- mentions are sampled from the entity's alias set, with occasional typos;
- a fraction of entity cells lose their link (mention-only cells);
- headers are sampled from per-relation phrase inventories;
- rows are subsampled and shuffled per table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.corpus import TableCorpus
from repro.data.table import Column, EntityCell, Table
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.schema import RELATIONS


@dataclass
class SynthesisConfig:
    """Knobs for corpus synthesis."""

    seed: int = 0
    n_tables: int = 2000
    alias_probability: float = 0.25
    typo_probability: float = 0.02
    unlinked_probability: float = 0.12
    max_rows: int = 24
    min_rows: int = 3
    #: when True, each (recipe, anchor entity) pair yields at most one table,
    #: so no near-duplicate of a held-out table exists in the training split
    #: (mirrors Wikipedia, where each page holds its table once).
    unique_anchors: bool = True


#: Recipe names in weight-table order — the stable strategy-tag inventory
#: shard metadata encodes (:mod:`repro.data.shards`) and evals slice on.
RECIPE_NAMES: Tuple[str, ...] = (
    "filmography",
    "award_recipients",
    "squad",
    "discography",
    "club_list",
    "films_by_language",
    "actor_filmography",
    "city_list",
    "country_athletes",
    "films_by_country",
    "transfers",
)


class TableSynthesizer:
    """Generates relational tables from a knowledge base.

    ``rng`` may be injected (e.g. a per-shard ``default_rng(SeedSequence)``
    stream from :func:`repro.data.shards.write_sharded_corpus`); by default
    the synthesizer owns a ``default_rng(config.seed)`` stream, which keeps
    the historical output bit-identical.  ``table_id_prefix`` namespaces the
    generated ids so shards can synthesize in parallel without collisions.
    """

    def __init__(self, kb: KnowledgeBase, config: SynthesisConfig = SynthesisConfig(),
                 rng: Optional[np.random.Generator] = None,
                 table_id_prefix: str = "tbl"):
        self.kb = kb
        self.config = config
        self.rng = rng if rng is not None else np.random.default_rng(config.seed)
        self._prefix = table_id_prefix
        self._counter = 0
        self._used_anchors: set = set()
        self._recipes: List[Tuple[str, Callable[[], Optional[Table]], float]] = [
            ("filmography", self._filmography_table, 1.2),
            ("award_recipients", self._award_recipients_table, 1.0),
            ("squad", self._squad_table, 1.2),
            ("discography", self._discography_table, 0.8),
            ("club_list", self._club_list_table, 0.6),
            ("films_by_language", self._films_by_language_table, 0.8),
            ("actor_filmography", self._actor_filmography_table, 0.8),
            ("city_list", self._city_list_table, 0.4),
            ("country_athletes", self._country_athletes_table, 0.8),
            ("films_by_country", self._films_by_country_table, 0.5),
            ("transfers", self._transfers_table, 0.8),
        ]

    # -- public API --------------------------------------------------------
    def generate(self, n_tables: Optional[int] = None) -> TableCorpus:
        """Generate ``n_tables`` tables (default: config value).

        Every accepted table is tagged with the recipe name that produced it
        (``Table.strategy``); the tag is assigned after acceptance, so it
        consumes no randomness and the seeded output is unchanged.
        """
        target = n_tables if n_tables is not None else self.config.n_tables
        names, recipes, weights = zip(*self._recipes)
        weights = np.asarray(weights) / np.sum(weights)
        tables: List[Table] = []
        attempts = 0
        while len(tables) < target and attempts < target * 20:
            attempts += 1
            pick = int(self.rng.choice(len(recipes), p=weights))
            table = recipes[pick]()
            if table is not None and table.n_rows >= self.config.min_rows:
                table.strategy = names[pick]
                tables.append(table)
        return TableCorpus(tables)

    # -- noise helpers ------------------------------------------------------
    def _next_id(self) -> str:
        self._counter += 1
        return f"{self._prefix}_{self._counter:06d}"

    def _claim(self, recipe: str, anchor_id: str) -> bool:
        """Reserve a (recipe, anchor) pair; False if already generated."""
        if not self.config.unique_anchors:
            return True
        key = (recipe, anchor_id)
        if key in self._used_anchors:
            return False
        self._used_anchors.add(key)
        return True

    def _typo(self, text: str) -> str:
        if len(text) < 4:
            return text
        position = int(self.rng.integers(1, len(text) - 1))
        kind = self.rng.random()
        if kind < 0.5:  # drop a character
            return text[:position] + text[position + 1:]
        # swap two adjacent characters
        chars = list(text)
        chars[position], chars[position - 1] = chars[position - 1], chars[position]
        return "".join(chars)

    def _mention_for(self, entity_id: str) -> str:
        entity = self.kb.get(entity_id)
        mention = entity.name
        if entity.aliases and self.rng.random() < self.config.alias_probability:
            mention = entity.aliases[int(self.rng.integers(len(entity.aliases)))]
        if self.rng.random() < self.config.typo_probability:
            mention = self._typo(mention)
        return mention

    def _cell(self, entity_id: str, force_linked: bool = False) -> EntityCell:
        mention = self._mention_for(entity_id)
        if not force_linked and self.rng.random() < self.config.unlinked_probability:
            return EntityCell(None, mention)
        return EntityCell(entity_id, mention)

    def _choice(self, items: Sequence[str]) -> str:
        return items[int(self.rng.integers(len(items)))]

    def _header(self, relation_name: str) -> str:
        phrases = RELATIONS[relation_name].header_phrases
        return self._choice(phrases) if phrases else relation_name.split(".")[-1]

    def _subsample_rows(self, rows: List) -> List:
        if len(rows) > self.config.max_rows:
            keep = self.rng.choice(len(rows), size=self.config.max_rows, replace=False)
            rows = [rows[int(i)] for i in sorted(keep)]
        order = self.rng.permutation(len(rows))
        return [rows[int(i)] for i in order]

    def _object_cell(self, subject_id: str, relation: str) -> Optional[EntityCell]:
        objects = self.kb.objects_of(subject_id, relation)
        if not objects:
            return None
        return self._cell(self._choice(objects))

    # -- recipes --------------------------------------------------------------
    def _entity_table(self, *, page_title: str, section_title: str, caption: str,
                      topic: Optional[str], subject_header: str,
                      subject_ids: List[str],
                      relation_columns: List[Tuple[str, str]],
                      text_column: Optional[Tuple[str, Callable[[str], str]]] = None,
                      ) -> Optional[Table]:
        """Shared recipe core: subject column + relation-derived object columns."""
        subject_ids = self._subsample_rows(list(dict.fromkeys(subject_ids)))
        if len(subject_ids) < self.config.min_rows:
            return None
        columns: List[Column] = [
            Column(subject_header, "entity",
                   [self._cell(s) for s in subject_ids])
        ]
        if text_column is not None:
            header, value_fn = text_column
            columns.append(Column(header, "text", [value_fn(s) for s in subject_ids]))
        for column_spec in relation_columns:
            # (header, relation) picks a random valid object; an optional
            # third element is a deterministic selector subject_id -> object.
            header, relation = column_spec[0], column_spec[1]
            selector = column_spec[2] if len(column_spec) > 2 else None
            cells = []
            for subject_id in subject_ids:
                if selector is not None:
                    object_id = selector(subject_id)
                    cell = self._cell(object_id) if object_id else None
                else:
                    cell = self._object_cell(subject_id, relation)
                cells.append(cell if cell is not None else EntityCell(None, "—"))
            columns.append(Column(header, "entity", cells, relation=relation))
        return Table(
            table_id=self._next_id(),
            page_title=page_title,
            section_title=section_title,
            caption=caption,
            topic_entity=topic,
            columns=columns,
            subject_column=0,
        )

    def _film_year(self, film_id: str) -> str:
        description = self.kb.get(film_id).description
        for token in description.split():
            if token.isdigit() and len(token) == 4:
                return token
        return ""

    def _filmography_table(self) -> Optional[Table]:
        directors = self.kb.entities_of_type("director")
        director_id = self._choice(directors)
        if not self._claim("filmography", director_id):
            return None
        films = self.kb.subjects_of(director_id, "film.director")
        name = self.kb.get(director_id).name
        return self._entity_table(
            page_title=name,
            section_title="Filmography",
            caption=f"films directed by {name}",
            topic=director_id,
            subject_header=self._choice(["Film", "Title"]),
            subject_ids=films,
            relation_columns=[
                (self._header("film.language"), "film.language"),
                (self._choice(["Lead Actor", "Starring"]), "film.starring"),
            ],
            text_column=("Year", self._film_year),
        )

    def _actor_filmography_table(self) -> Optional[Table]:
        actors = self.kb.entities_of_type("actor")
        actor_id = self._choice(actors)
        if not self._claim("actor_filmography", actor_id):
            return None
        films = self.kb.subjects_of(actor_id, "film.starring")
        name = self.kb.get(actor_id).name
        return self._entity_table(
            page_title=name,
            section_title="Filmography",
            caption=f"films featuring {name}",
            topic=actor_id,
            subject_header=self._choice(["Film", "Title"]),
            subject_ids=films,
            relation_columns=[
                (self._header("film.director"), "film.director"),
                (self._header("film.language"), "film.language"),
            ],
            text_column=("Year", self._film_year),
        )

    def _award_recipients_table(self) -> Optional[Table]:
        """The paper's Figure 1 genre: award ceremonies with recipients."""
        awards = self.kb.entities_of_type("award")
        award_id = self._choice(awards)
        if not self._claim("award_recipients", award_id):
            return None
        ceremonies = self.kb.subjects_of(award_id, "ceremony.award")
        ceremonies = [c for c in ceremonies
                      if self.kb.objects_of(c, "ceremony.winner")]
        name = self.kb.get(award_id).name
        return self._entity_table(
            page_title=name,
            section_title="Recipients",
            caption=f"list of {name} recipients",
            topic=award_id,
            subject_header=self._choice(["Ceremony", "Edition", "Year"]),
            subject_ids=ceremonies,
            relation_columns=[
                (self._header("ceremony.winner"), "ceremony.winner"),
                (self._header("ceremony.best_film"), "ceremony.best_film"),
            ],
        )

    def _squad_table(self) -> Optional[Table]:
        seasons = self.kb.entities_of_type("sports_season")
        season_id = self._choice(seasons)
        if not self._claim("squad", season_id):
            return None
        club_id = self.kb.objects_of(season_id, "season.club")[0]
        athletes = self.kb.subjects_of(club_id, "athlete.club")
        season = self.kb.get(season_id).name

        def position_of(athlete_id: str) -> str:
            description = self.kb.get(athlete_id).description
            return description.rsplit("Plays as a ", 1)[-1].rstrip(".") if "Plays as a" in description else ""

        return self._entity_table(
            page_title=season,
            section_title="Squad",
            caption=f"{season} first-team squad",
            topic=season_id,
            subject_header=self._choice(["Name", "Player"]),
            subject_ids=athletes,
            relation_columns=[
                (self._header("person.birthplace"), "person.birthplace"),
                (self._header("person.nationality"), "person.nationality"),
            ],
            text_column=("Position", position_of),
        )

    def _discography_table(self) -> Optional[Table]:
        musicians = self.kb.entities_of_type("musician")
        musician_id = self._choice(musicians)
        if not self._claim("discography", musician_id):
            return None
        albums = self.kb.subjects_of(musician_id, "album.artist")
        name = self.kb.get(musician_id).name
        return self._entity_table(
            page_title=name,
            section_title="Discography",
            caption=f"albums by {name}",
            topic=musician_id,
            subject_header=self._choice(["Album", "Title"]),
            subject_ids=albums,
            relation_columns=[
                (self._header("album.genre"), "album.genre"),
                (self._header("album.artist"), "album.artist"),
            ],
        )

    def _club_list_table(self) -> Optional[Table]:
        countries = self.kb.entities_of_type("country")
        country_id = self._choice(countries)
        if not self._claim("club_list", country_id):
            return None
        country = self.kb.get(country_id).name
        clubs = [
            club_id
            for club_id in self.kb.entities_of_type("sports_club")
            for city_id in self.kb.objects_of(club_id, "club.city")
            if country_id in self.kb.objects_of(city_id, "city.country")
        ]
        return self._entity_table(
            page_title=f"List of football clubs in {country}",
            section_title="Clubs",
            caption=f"football clubs in {country}",
            topic=country_id,
            subject_header="Club",
            subject_ids=clubs,
            relation_columns=[
                (self._header("club.city"), "club.city"),
                (self._header("club.stadium"), "club.stadium"),
            ],
        )

    def _films_by_language_table(self) -> Optional[Table]:
        languages = self.kb.entities_of_type("language")
        language_id = self._choice(languages)
        if not self._claim("films_by_language", language_id):
            return None
        films = self.kb.subjects_of(language_id, "film.language")
        language = self.kb.get(language_id).name
        return self._entity_table(
            page_title=f"List of {language}-language films",
            section_title="Films",
            caption=f"{language}-language films",
            topic=language_id,
            subject_header=self._choice(["Film", "Title"]),
            subject_ids=films,
            relation_columns=[
                (self._header("film.director"), "film.director"),
                (self._header("film.country"), "film.country"),
            ],
            text_column=("Year", self._film_year),
        )

    def _transfers_table(self) -> Optional[Table]:
        """Season transfer lists ("moving from" columns, cf. paper Table 11)."""
        seasons = self.kb.entities_of_type("sports_season")
        season_id = self._choice(seasons)
        if not self._claim("transfers", season_id):
            return None
        club_id = self.kb.objects_of(season_id, "season.club")[0]
        athletes = self.kb.subjects_of(club_id, "athlete.club")
        season = self.kb.get(season_id).name

        def previous_club(athlete_id: str) -> Optional[str]:
            career = self.kb.objects_of(athlete_id, "athlete.club")
            index = career.index(club_id)
            return career[index - 1] if index > 0 else None

        # Only players who actually transferred in have a "moving from" row.
        movers = [a for a in athletes if previous_club(a)]
        return self._entity_table(
            page_title=season,
            section_title="Transfers",
            caption=f"{season} transfers in",
            topic=season_id,
            subject_header=self._choice(["Name", "Player"]),
            subject_ids=movers,
            relation_columns=[
                (self._choice(["Moving From", "Previous Club"]),
                 "athlete.club", previous_club),
                (self._header("person.nationality"), "person.nationality"),
            ],
        )

    def _country_athletes_table(self) -> Optional[Table]:
        countries = self.kb.entities_of_type("country")
        country_id = self._choice(countries)
        if not self._claim("country_athletes", country_id):
            return None
        country = self.kb.get(country_id).name
        athletes = self.kb.subjects_of(country_id, "person.nationality")
        athletes = [a for a in athletes
                    if self.kb.objects_of(a, "athlete.club")]

        def current_club(athlete_id: str) -> Optional[str]:
            career = self.kb.objects_of(athlete_id, "athlete.club")
            return career[-1] if career else None

        return self._entity_table(
            page_title=f"List of footballers from {country}",
            section_title="Players",
            caption=f"association football players from {country}",
            topic=country_id,
            subject_header=self._choice(["Name", "Player"]),
            subject_ids=athletes,
            relation_columns=[
                (self._header("athlete.club"), "athlete.club", current_club),
                (self._header("person.birthplace"), "person.birthplace"),
            ],
        )

    def _films_by_country_table(self) -> Optional[Table]:
        countries = self.kb.entities_of_type("country")
        country_id = self._choice(countries)
        if not self._claim("films_by_country", country_id):
            return None
        country = self.kb.get(country_id).name
        films = self.kb.subjects_of(country_id, "film.country")
        return self._entity_table(
            page_title=f"Cinema of {country}",
            section_title="Films",
            caption=f"films produced in {country}",
            topic=country_id,
            subject_header=self._choice(["Film", "Title"]),
            subject_ids=films,
            relation_columns=[
                (self._header("film.director"), "film.director"),
                (self._header("film.language"), "film.language"),
                (self._choice(["Starring", "Lead Actor"]), "film.starring"),
            ],
            text_column=("Year", self._film_year),
        )

    def _city_list_table(self) -> Optional[Table]:
        countries = self.kb.entities_of_type("country")
        country_id = self._choice(countries)
        if not self._claim("city_list", country_id):
            return None
        country = self.kb.get(country_id).name
        cities = self.kb.subjects_of(country_id, "city.country")
        return self._entity_table(
            page_title=f"List of cities in {country}",
            section_title="Cities",
            caption=f"cities and towns in {country}",
            topic=country_id,
            subject_header=self._choice(["City", "Name"]),
            subject_ids=cities,
            relation_columns=[
                (self._header("city.country"), "city.country"),
            ],
        )


def build_corpus(kb: KnowledgeBase, config: SynthesisConfig = SynthesisConfig()) -> TableCorpus:
    """Convenience wrapper: synthesize a corpus from ``kb``."""
    return TableSynthesizer(kb, config).generate()
