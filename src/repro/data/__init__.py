"""Table data model and corpus construction.

Implements the paper's Section 2 data model (``T = (C, H, E, e_t)``) and
Section 5 corpus pipeline: a synthesizer that emits Wikipedia-style
relational tables from the knowledge base, pre-processing heuristics
(subject-column detection, noisy-column filtering), train/validation/test
partitioning, and the Table 3 statistics report.
"""

from repro.data.table import EntityCell, Column, Table
from repro.data.corpus import TableCorpus, CorpusSplits
from repro.data.dataset import (
    Dataset,
    DatasetMetadata,
    InstanceSet,
    SPLIT_NAMES,
    coerce_training_instances,
    strategy_counter,
)
from repro.data.synthesis import RECIPE_NAMES, SynthesisConfig, TableSynthesizer, build_corpus
from repro.data.preprocessing import is_relational, filter_relational, partition_corpus
from repro.data.shards import (
    ShardedDataset,
    ShardFormatError,
    ShardIntegrityError,
    write_sharded_corpus,
)
from repro.data.statistics import corpus_statistics, format_statistics

__all__ = [
    "EntityCell",
    "Column",
    "Table",
    "TableCorpus",
    "CorpusSplits",
    "Dataset",
    "DatasetMetadata",
    "InstanceSet",
    "SPLIT_NAMES",
    "coerce_training_instances",
    "strategy_counter",
    "RECIPE_NAMES",
    "SynthesisConfig",
    "TableSynthesizer",
    "build_corpus",
    "is_relational",
    "filter_relational",
    "partition_corpus",
    "ShardedDataset",
    "ShardFormatError",
    "ShardIntegrityError",
    "write_sharded_corpus",
    "corpus_statistics",
    "format_statistics",
]
