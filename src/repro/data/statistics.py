"""Corpus statistics (paper Table 3).

For each split we report min/mean/median/max of rows per table, entity
columns per table, and linked entities per table — the exact rows of the
paper's Table 3.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.data.corpus import CorpusSplits, TableCorpus


def _summary(values: List[int]) -> Dict[str, float]:
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        return {"min": 0.0, "mean": 0.0, "median": 0.0, "max": 0.0}
    return {
        "min": float(array.min()),
        "mean": float(array.mean()),
        "median": float(np.median(array)),
        "max": float(array.max()),
    }


def corpus_statistics(corpus: TableCorpus) -> Dict[str, Dict[str, float]]:
    """Per-table row/entity-column/entity counts summarized over a corpus."""
    rows = [table.n_rows for table in corpus]
    entity_columns = [len(table.entity_columns()) for table in corpus]
    entities = [len(table.linked_entities()) for table in corpus]
    return {
        "n_row": _summary(rows),
        "n_ent_columns": _summary(entity_columns),
        "n_ent": _summary(entities),
    }


def splits_statistics(splits: CorpusSplits) -> Dict[str, Dict[str, Dict[str, float]]]:
    return {
        "train": corpus_statistics(splits.train),
        "dev": corpus_statistics(splits.validation),
        "test": corpus_statistics(splits.test),
    }


def format_statistics(stats: Dict[str, Dict[str, Dict[str, float]]]) -> str:
    """Render split statistics in the layout of the paper's Table 3."""
    lines = [f"{'':14s}{'split':8s}{'min':>6s}{'mean':>8s}{'median':>8s}{'max':>8s}"]
    labels = {"n_row": "# row", "n_ent_columns": "# ent. columns", "n_ent": "# ent."}
    for metric, label in labels.items():
        for split in ("train", "dev", "test"):
            summary = stats[split][metric]
            lines.append(
                f"{label:14s}{split:8s}{summary['min']:6.0f}{summary['mean']:8.1f}"
                f"{summary['median']:8.1f}{summary['max']:8.0f}"
            )
    return "\n".join(lines)
