"""The relational-table data model (paper Section 2, Table 1).

A :class:`Table` carries the metadata ``(C, H, e_t)`` — caption (built from
page title, section title and caption proper), headers, topic entity — and
the content ``E``: columns of cells.  Entity cells are ``(e_e, e_m)`` pairs:
a KB entity id (or ``None`` when the cell is unlinked) plus the surface
mention string.  Text columns hold plain strings (years, positions, notes).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass
class EntityCell:
    """One table cell in an entity column: linked entity id + mention text."""

    entity_id: Optional[str]
    mention: str

    @property
    def is_linked(self) -> bool:
        return self.entity_id is not None

    def to_list(self) -> list:
        return [self.entity_id, self.mention]

    @classmethod
    def from_list(cls, payload: list) -> "EntityCell":
        return cls(payload[0], payload[1])


@dataclass
class Column:
    """A table column: header, kind (``entity`` or ``text``), and cells."""

    header: str
    kind: str  # "entity" | "text"
    cells: List = field(default_factory=list)
    #: KB relation linking the subject column to this column, when the
    #: synthesizer built it from facts (ground truth for relation extraction).
    relation: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ("entity", "text"):
            raise ValueError(f"column kind must be 'entity' or 'text', got {self.kind!r}")

    @property
    def is_entity(self) -> bool:
        return self.kind == "entity"

    def linked_cells(self) -> List[EntityCell]:
        if not self.is_entity:
            return []
        return [cell for cell in self.cells if cell.is_linked]


@dataclass
class Table:
    """A relational Web table ``T = (C, H, E, e_t)``."""

    table_id: str
    page_title: str
    section_title: str
    caption: str
    topic_entity: Optional[str]
    columns: List[Column]
    subject_column: int = 0
    #: synthesis recipe that produced this table (``None`` for tables from
    #: external/legacy sources) — ground truth for difficulty slicing, carried
    #: through JSON persistence and shard metadata.
    strategy: Optional[str] = None

    def __post_init__(self) -> None:
        lengths = {len(column.cells) for column in self.columns}
        if len(lengths) > 1:
            raise ValueError(f"ragged table {self.table_id}: column lengths {sorted(lengths)}")

    # -- shape ------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return len(self.columns[0].cells) if self.columns else 0

    @property
    def n_columns(self) -> int:
        return len(self.columns)

    @property
    def headers(self) -> List[str]:
        return [column.header for column in self.columns]

    # -- text -------------------------------------------------------------
    def caption_text(self) -> str:
        """Page title + section title + caption, the paper's comprehensive
        description (Section 5.1)."""
        parts = [self.page_title, self.section_title, self.caption]
        return " ".join(part for part in parts if part)

    # -- entity access ------------------------------------------------------
    def entity_columns(self) -> List[int]:
        return [i for i, column in enumerate(self.columns) if column.is_entity]

    def subject_cells(self) -> List[EntityCell]:
        return list(self.columns[self.subject_column].cells)

    def subject_entities(self) -> List[str]:
        return [cell.entity_id for cell in self.columns[self.subject_column].cells
                if cell.is_linked]

    def all_entity_cells(self) -> Iterator[Tuple[int, int, EntityCell]]:
        """Yield ``(row, column, cell)`` for every entity cell, row-major."""
        entity_cols = self.entity_columns()
        for row in range(self.n_rows):
            for col in entity_cols:
                yield row, col, self.columns[col].cells[row]

    def linked_entities(self) -> List[str]:
        """All linked entity ids in content cells (duplicates preserved)."""
        return [cell.entity_id for _, _, cell in self.all_entity_cells() if cell.is_linked]

    def row(self, index: int) -> List:
        return [column.cells[index] for column in self.columns]

    # -- persistence ------------------------------------------------------
    def to_dict(self) -> Dict:
        payload = {
            "table_id": self.table_id,
            "page_title": self.page_title,
            "section_title": self.section_title,
            "caption": self.caption,
            "topic_entity": self.topic_entity,
            "subject_column": self.subject_column,
            "columns": [
                {
                    "header": column.header,
                    "kind": column.kind,
                    "relation": column.relation,
                    "cells": [cell.to_list() if column.is_entity else cell
                              for cell in column.cells],
                }
                for column in self.columns
            ],
        }
        # Untagged tables keep the historical wire format byte-for-byte.
        if self.strategy is not None:
            payload["strategy"] = self.strategy
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "Table":
        columns = []
        for blob in payload["columns"]:
            cells = [EntityCell.from_list(c) if blob["kind"] == "entity" else c
                     for c in blob["cells"]]
            columns.append(Column(blob["header"], blob["kind"], cells,
                                  relation=blob.get("relation")))
        return cls(
            table_id=payload["table_id"],
            page_title=payload["page_title"],
            section_title=payload["section_title"],
            caption=payload["caption"],
            topic_entity=payload["topic_entity"],
            columns=columns,
            subject_column=payload["subject_column"],
            strategy=payload.get("strategy"),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, payload: str) -> "Table":
        return cls.from_dict(json.loads(payload))
