"""Packed on-disk corpus format: fixed-width index + varlen payload shards.

A shard directory holds three kinds of files::

    meta.json        provenance: format version, synthesis config, seed,
                     strategy-tag inventory, split sizes
    index.bin        24-byte header + one fixed-width record per table
    shard-0000.bin   concatenated UTF-8 JSON table payloads (varlen)
    ...

``index.bin`` layout — header ``(magic "TURLSHRD", u32 version, u32
n_shards, u64 n_records)`` followed by packed little-endian records:

    ========  =====  ==================================================
    field     bytes  meaning
    ========  =====  ==================================================
    shard     u2     payload shard number
    split     u1     0 train / 1 validation / 2 test
    strategy  u1     synthesis recipe id (``meta.json["strategies"]``)
    offset    u8     payload byte offset within the shard file
    length    u4     payload byte length
    bucket    u4     shape key ``n_rows << 16 | n_columns``
    hash      u8     first 8 bytes of blake2b(payload), integrity check
    ========  =====  ==================================================

Both the index and the payload shards are read zero-copy through read-only
``np.memmap``; a record decode touches only its own pages, so epoch
iteration at ~1M tables runs without RAM pressure.  Writing fans shards out
to parallel synthesizer workers, each driven by its own
``SeedSequence(seed).spawn(...)`` child stream — output bytes depend only on
``(seed, n_shards)``, never on the worker count.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.data.corpus import CorpusSplits, TableCorpus
from repro.data.dataset import SPLIT_NAMES, DatasetMetadata
from repro.data.preprocessing import filter_relational, partition_corpus
from repro.data.synthesis import RECIPE_NAMES, SynthesisConfig, TableSynthesizer
from repro.data.table import Table
from repro.kb.knowledge_base import KnowledgeBase
from repro.obs import get_registry, trace

INDEX_MAGIC = b"TURLSHRD"
INDEX_VERSION = 1
INDEX_HEADER = np.dtype([("magic", "S8"), ("version", "<u4"),
                         ("n_shards", "<u4"), ("n_records", "<u8")])
INDEX_DTYPE = np.dtype([("shard", "<u2"), ("split", "<u1"),
                        ("strategy", "<u1"), ("offset", "<u8"),
                        ("length", "<u4"), ("bucket", "<u4"),
                        ("hash", "<u8")])
META_FILE = "meta.json"
INDEX_FILE = "index.bin"
SPLIT_CODES = {name: code for code, name in enumerate(SPLIT_NAMES)}
#: strategy id 0 is reserved for untagged tables
STRATEGY_IDS = {name: i + 1 for i, name in enumerate(RECIPE_NAMES)}


class ShardFormatError(ValueError):
    """The shard directory is malformed (bad magic, truncated files, ...)."""


class ShardIntegrityError(ShardFormatError):
    """A payload's content does not match its indexed blake2b hash."""


def shard_file(shard: int) -> str:
    return f"shard-{shard:04d}.bin"


def payload_hash(blob: bytes) -> int:
    """First 8 bytes of blake2b(payload) as an unsigned little-endian int."""
    return int.from_bytes(hashlib.blake2b(blob, digest_size=8).digest(),
                          "little")


def bucket_code(table: Table) -> int:
    """Pack the table's shape class into the index's u4 bucket key."""
    return (min(table.n_rows, 0xFFFF) << 16) | min(table.n_columns, 0xFFFF)


# -- writer ------------------------------------------------------------------

def _synthesize_shard(kb: KnowledgeBase, config: SynthesisConfig, shard: int,
                      seed_seq: np.random.SeedSequence, n_tables: int
                      ) -> Tuple[bytes, np.ndarray]:
    """Synthesize one shard: payload bytes + its index records.

    Depends only on ``(kb, config, shard, seed_seq, n_tables)`` — the same
    shard is byte-identical no matter which worker (or how many) runs it.
    """
    synth_child, split_child = seed_seq.spawn(2)
    synthesizer = TableSynthesizer(kb, config,
                                   rng=np.random.default_rng(synth_child),
                                   table_id_prefix=f"tbl_s{shard:03d}")
    corpus = filter_relational(synthesizer.generate(n_tables))
    split_seed = int(split_child.generate_state(1)[0])
    splits = partition_corpus(corpus, seed=split_seed)
    split_of: Dict[str, int] = {}
    for name, sub in (("train", splits.train), ("validation", splits.validation),
                      ("test", splits.test)):
        for table in sub:
            split_of[table.table_id] = SPLIT_CODES[name]

    payload = bytearray()
    records = np.zeros(len(corpus), dtype=INDEX_DTYPE)
    for i, table in enumerate(corpus):
        blob = table.to_json().encode("utf-8")
        records[i] = (shard, split_of[table.table_id],
                      STRATEGY_IDS.get(table.strategy or "", 0),
                      len(payload), len(blob), bucket_code(table),
                      payload_hash(blob))
        payload += blob
    return bytes(payload), records


def _shard_job(args: Tuple) -> Tuple[bytes, np.ndarray]:
    return _synthesize_shard(*args)


def write_sharded_corpus(kb: KnowledgeBase, config: SynthesisConfig,
                         directory: str, n_shards: int = 4,
                         workers: int = 1) -> "ShardedDataset":
    """Synthesize, partition and pack a corpus into ``directory``.

    ``config.n_tables`` is divided evenly across ``n_shards``; each shard's
    synthesizer and split RNGs come from ``SeedSequence(config.seed)``
    children, so the written bytes are a pure function of the config and the
    shard count.  ``workers > 1`` fans shards out over a process pool
    (forked, falling back to in-process synthesis when multiprocessing is
    unavailable).
    """
    if n_shards < 1:
        raise ValueError("n_shards must be at least 1")
    if n_shards > 0xFFFF:
        raise ValueError("n_shards must fit the index's u2 shard field")
    os.makedirs(directory, exist_ok=True)
    children = np.random.SeedSequence(config.seed).spawn(n_shards)
    base, extra = divmod(config.n_tables, n_shards)
    jobs = [(kb, config, shard, children[shard],
             base + (1 if shard < extra else 0))
            for shard in range(n_shards)]

    results: List[Optional[Tuple[bytes, np.ndarray]]] = [None] * n_shards
    if workers > 1:
        try:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            context = multiprocessing.get_context("fork")
            with ProcessPoolExecutor(max_workers=workers,
                                     mp_context=context) as pool:
                for shard, result in enumerate(pool.map(_shard_job, jobs)):
                    results[shard] = result
        except (ImportError, OSError, ValueError):
            results = [None] * n_shards
    if any(result is None for result in results):
        results = [_shard_job(job) for job in jobs]

    index_rows: List[np.ndarray] = []
    split_sizes = {name: 0 for name in SPLIT_NAMES}
    for shard, (payload, records) in enumerate(results):
        with open(os.path.join(directory, shard_file(shard)), "wb") as handle:
            handle.write(payload)
        for name, code in SPLIT_CODES.items():
            split_sizes[name] += int((records["split"] == code).sum())
        index_rows.append(records)
    index = (np.concatenate(index_rows) if index_rows
             else np.zeros(0, dtype=INDEX_DTYPE))

    header = np.zeros(1, dtype=INDEX_HEADER)
    header[0] = (INDEX_MAGIC, INDEX_VERSION, n_shards, len(index))
    with open(os.path.join(directory, INDEX_FILE), "wb") as handle:
        handle.write(header.tobytes())
        handle.write(index.tobytes())

    meta = {
        "format": "turl-shards",
        "version": INDEX_VERSION,
        "n_shards": n_shards,
        "n_records": len(index),
        "seed": config.seed,
        "synthesis_config": asdict(config),
        "strategies": list(RECIPE_NAMES),
        "split_sizes": split_sizes,
    }
    with open(os.path.join(directory, META_FILE), "w") as handle:
        json.dump(meta, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return ShardedDataset(directory)


# -- reader ------------------------------------------------------------------

class _SplitView:
    """Lazy sequence view over one split's records (decoded on access)."""

    def __init__(self, dataset: "ShardedDataset", indices: np.ndarray):
        self._dataset = dataset
        self._indices = indices

    def __len__(self) -> int:
        return len(self._indices)

    def __iter__(self) -> Iterator[Table]:
        for index in self._indices:
            yield self._dataset.table(int(index))

    def __getitem__(self, position: int) -> Table:
        return self._dataset.table(int(self._indices[position]))

    @property
    def record_indices(self) -> np.ndarray:
        return self._indices.copy()


class ShardedDataset:
    """Zero-copy reader over a shard directory (the streaming ``Dataset``).

    The index and the payload shards are bound as read-only ``np.memmap``
    arrays; :meth:`table` decodes one record's JSON slice on demand.  Shard
    read/decode traffic is observable as ``corpus.shard.records`` /
    ``corpus.shard.bytes`` counters and the ``corpus.shard.decode`` timer.

    ``verify_hashes=True`` checks every decoded payload against its indexed
    blake2b tag (:class:`ShardIntegrityError` on mismatch).
    """

    def __init__(self, directory: str, verify_hashes: bool = False):
        self.directory = directory
        self.verify_hashes = verify_hashes
        meta_path = os.path.join(directory, META_FILE)
        try:
            with open(meta_path) as handle:
                self.meta = json.load(handle)
        except OSError as error:
            raise ShardFormatError(f"not a shard directory: {error}")
        except json.JSONDecodeError as error:
            raise ShardFormatError(f"corrupt {META_FILE}: {error}")

        index_path = os.path.join(directory, INDEX_FILE)
        header_bytes = INDEX_HEADER.itemsize
        try:
            size = os.path.getsize(index_path)
        except OSError as error:
            raise ShardFormatError(f"missing {INDEX_FILE}: {error}")
        if size < header_bytes:
            raise ShardFormatError(f"truncated {INDEX_FILE}: "
                                   f"{size} bytes < {header_bytes}-byte header")
        header = np.memmap(index_path, dtype=INDEX_HEADER, mode="r",
                           shape=(1,))[0]
        if bytes(header["magic"]) != INDEX_MAGIC:
            raise ShardFormatError(
                f"bad index magic {bytes(header['magic'])!r}")
        if int(header["version"]) != INDEX_VERSION:
            raise ShardFormatError(
                f"unsupported shard format version {int(header['version'])}")
        self.n_shards = int(header["n_shards"])
        n_records = int(header["n_records"])
        expected = header_bytes + n_records * INDEX_DTYPE.itemsize
        if size != expected:
            raise ShardFormatError(
                f"truncated {INDEX_FILE}: {size} bytes, header promises "
                f"{n_records} records ({expected} bytes)")
        #: read-only fixed-width record array (one row per table)
        self.index = np.memmap(index_path, dtype=INDEX_DTYPE, mode="r",
                               offset=header_bytes, shape=(n_records,))
        self._shards: Dict[int, np.memmap] = {}
        self._strategies: List[str] = list(self.meta.get("strategies", []))

    # -- raw record access -------------------------------------------------
    def __len__(self) -> int:
        return int(self.index.shape[0])

    def _shard_data(self, shard: int) -> np.memmap:
        if shard not in self._shards:
            path = os.path.join(self.directory, shard_file(shard))
            try:
                self._shards[shard] = np.memmap(path, dtype=np.uint8,
                                                mode="r")
            except (OSError, ValueError) as error:
                raise ShardFormatError(
                    f"cannot map payload shard {shard}: {error}")
        return self._shards[shard]

    def payload(self, index: int) -> np.ndarray:
        """The raw payload bytes of one record, as a zero-copy memmap view."""
        record = self.index[index]
        data = self._shard_data(int(record["shard"]))
        offset, length = int(record["offset"]), int(record["length"])
        if offset + length > data.shape[0]:
            raise ShardFormatError(
                f"record {index} spans [{offset}, {offset + length}) past "
                f"the end of {shard_file(int(record['shard']))} "
                f"({data.shape[0]} bytes)")
        registry = get_registry()
        registry.counter("corpus.shard.records").inc()
        registry.counter("corpus.shard.bytes").inc(length)
        return data[offset:offset + length]

    def table(self, index: int, verify: Optional[bool] = None) -> Table:
        """Decode one record into a :class:`Table`."""
        blob = bytes(self.payload(index))
        if self.verify_hashes if verify is None else verify:
            expected = int(self.index[index]["hash"])
            if payload_hash(blob) != expected:
                raise ShardIntegrityError(
                    f"record {index}: payload hash mismatch "
                    f"(index {expected:#018x})")
        with trace("corpus/shard/decode"), \
                get_registry().timer("corpus.shard.decode").time():
            return Table.from_json(blob.decode("utf-8"))

    # -- per-record metadata (no decode) ------------------------------------
    def shard_of(self, index: int) -> int:
        return int(self.index[index]["shard"])

    def split_of(self, index: int) -> str:
        return SPLIT_NAMES[int(self.index[index]["split"])]

    def strategy_of(self, index: int) -> Optional[str]:
        code = int(self.index[index]["strategy"])
        if code == 0 or code > len(self._strategies):
            return None
        return self._strategies[code - 1]

    def bucket_of(self, index: int) -> int:
        """The packed shape key stored in the index (rows << 16 | cols)."""
        return int(self.index[index]["bucket"])

    def split_indices(self, split: str = "train") -> np.ndarray:
        if split not in SPLIT_CODES:
            raise KeyError(f"unknown split {split!r}; "
                           f"expected one of {SPLIT_NAMES}")
        return np.flatnonzero(self.index["split"] == SPLIT_CODES[split])

    def strategy_indices(self, strategy: str) -> np.ndarray:
        if strategy not in STRATEGY_IDS:
            raise KeyError(f"unknown strategy {strategy!r}; "
                           f"expected one of {tuple(STRATEGY_IDS)}")
        return np.flatnonzero(self.index["strategy"]
                              == STRATEGY_IDS[strategy])

    def fingerprint(self) -> str:
        """A stable content id of the corpus (index bytes + provenance)."""
        digest = hashlib.blake2b(digest_size=16)
        digest.update(np.asarray(self.index).tobytes())
        digest.update(json.dumps(self.meta, sort_keys=True).encode("utf-8"))
        return digest.hexdigest()

    # -- Dataset protocol --------------------------------------------------
    def __iter__(self) -> Iterator[Table]:
        for index in range(len(self)):
            yield self.table(index)

    def instances(self, split: str = "train") -> _SplitView:
        return _SplitView(self, self.split_indices(split))

    @property
    def metadata(self) -> DatasetMetadata:
        strategies = self.index["strategy"]
        counts: Dict[str, int] = {}
        for code in np.unique(strategies):
            name = (self._strategies[int(code) - 1]
                    if 0 < int(code) <= len(self._strategies) else "untagged")
            counts[name] = int((strategies == code).sum())
        return DatasetMetadata(
            source=self.directory,
            n_records=len(self),
            split_sizes={name: int(len(self.split_indices(name)))
                         for name in SPLIT_NAMES},
            strategy_counts=counts,
            extra={"n_shards": self.n_shards,
                   "seed": self.meta.get("seed"),
                   "fingerprint": self.fingerprint()},
        )

    # -- vocabulary / escape hatches ---------------------------------------
    def entity_counts(self, split: Optional[str] = "train"):
        """Streaming equivalent of :meth:`TableCorpus.entity_counts`."""
        from collections import Counter

        counts: Counter = Counter()
        for table in self._view(split):
            for entity_id in table.linked_entities():
                counts[entity_id] += 1
            if table.topic_entity:
                counts[table.topic_entity] += 1
        return counts

    def metadata_texts(self, split: Optional[str] = "train") -> List[str]:
        """Streaming equivalent of :meth:`TableCorpus.metadata_texts`."""
        texts: List[str] = []
        for table in self._view(split):
            texts.append(table.caption_text())
            texts.extend(table.headers)
        return texts

    def _view(self, split: Optional[str]):
        return self if split is None else self.instances(split)

    def in_memory(self, split: Optional[str] = None) -> TableCorpus:
        """Materialize (one split of) the corpus as a legacy in-memory
        :class:`TableCorpus` — the escape hatch for small corpora and
        bit-parity tests."""
        return TableCorpus(self._view(split))

    def splits(self) -> CorpusSplits:
        """Materialize all three splits (small-corpus escape hatch)."""
        return CorpusSplits(self.in_memory("train"),
                            self.in_memory("validation"),
                            self.in_memory("test"))
