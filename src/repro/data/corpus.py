"""Table corpus container with persistence and derived vocabulary helpers."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional

from repro.data.table import Table


class TableCorpus:
    """An ordered collection of :class:`Table` objects."""

    def __init__(self, tables: Iterable[Table] = ()):
        self.tables: List[Table] = list(tables)
        self._by_id = {table.table_id: table for table in self.tables}
        if len(self._by_id) != len(self.tables):
            raise ValueError("duplicate table ids in corpus")

    def __len__(self) -> int:
        return len(self.tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self.tables)

    def __getitem__(self, index: int) -> Table:
        return self.tables[index]

    def get(self, table_id: str) -> Table:
        return self._by_id[table_id]

    def add(self, table: Table) -> None:
        if table.table_id in self._by_id:
            raise ValueError(f"duplicate table id: {table.table_id}")
        self.tables.append(table)
        self._by_id[table.table_id] = table

    # -- derived statistics ------------------------------------------------
    def entity_counts(self) -> Counter:
        """Occurrences of each linked entity id across content cells and
        topic entities — the input to entity-vocabulary construction."""
        counts: Counter = Counter()
        for table in self.tables:
            for entity_id in table.linked_entities():
                counts[entity_id] += 1
            if table.topic_entity:
                counts[table.topic_entity] += 1
        return counts

    def header_counts(self) -> Counter:
        counts: Counter = Counter()
        for table in self.tables:
            for header in table.headers:
                counts[header.strip().lower()] += 1
        return counts

    def caption_texts(self) -> List[str]:
        return [table.caption_text() for table in self.tables]

    def metadata_texts(self) -> List[str]:
        """All text a tokenizer should be trained on: captions + headers."""
        texts = []
        for table in self.tables:
            texts.append(table.caption_text())
            texts.extend(table.headers)
        return texts

    # -- persistence ------------------------------------------------------
    def save_jsonl(self, path: str) -> None:
        with open(path, "w") as handle:
            for table in self.tables:
                handle.write(table.to_json() + "\n")

    @classmethod
    def load_jsonl(cls, path: str) -> "TableCorpus":
        tables = []
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if line:
                    tables.append(Table.from_json(line))
        return cls(tables)


@dataclass
class CorpusSplits:
    """Pre-training / validation / test partition (paper Section 5.1)."""

    train: TableCorpus
    validation: TableCorpus
    test: TableCorpus

    @property
    def sizes(self) -> tuple:
        return (len(self.train), len(self.validation), len(self.test))
