"""Table corpus container with persistence and derived vocabulary helpers.

Both containers here implement the :class:`repro.data.dataset.Dataset`
protocol (``__len__`` / ``__iter__`` / ``instances(split)`` / ``metadata``),
so training entry points accept them interchangeably with the memory-mapped
:class:`repro.data.shards.ShardedDataset`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional

from repro.data.dataset import DatasetMetadata, strategy_counter
from repro.data.table import Table


class TableCorpus:
    """An ordered collection of :class:`Table` objects."""

    def __init__(self, tables: Iterable[Table] = ()):
        self.tables: List[Table] = list(tables)
        self._by_id = {table.table_id: table for table in self.tables}
        if len(self._by_id) != len(self.tables):
            raise ValueError("duplicate table ids in corpus")

    def __len__(self) -> int:
        return len(self.tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self.tables)

    def __getitem__(self, index: int) -> Table:
        return self.tables[index]

    def get(self, table_id: str) -> Table:
        return self._by_id[table_id]

    def add(self, table: Table) -> None:
        if table.table_id in self._by_id:
            raise ValueError(f"duplicate table id: {table.table_id}")
        self.tables.append(table)
        self._by_id[table.table_id] = table

    # -- Dataset protocol --------------------------------------------------
    def instances(self, split: str = "train") -> List[Table]:
        """An unpartitioned corpus is all training data: ``"train"`` returns
        every table, the held-out splits are empty (partition first with
        :func:`repro.data.preprocessing.partition_corpus` to populate them).
        """
        return list(self.tables) if split == "train" else []

    @property
    def metadata(self) -> DatasetMetadata:
        return DatasetMetadata(
            source="memory",
            n_records=len(self.tables),
            split_sizes={"train": len(self.tables), "validation": 0, "test": 0},
            strategy_counts=strategy_counter(self.tables),
        )

    # -- strategy slicing --------------------------------------------------
    def strategy_counts(self) -> Counter:
        """Tables per synthesis strategy tag (``"untagged"`` when absent)."""
        return Counter(strategy_counter(self.tables))

    def by_strategy(self, strategy: str) -> "TableCorpus":
        """The sub-corpus produced by one synthesis recipe."""
        return TableCorpus(t for t in self.tables if t.strategy == strategy)

    # -- derived statistics ------------------------------------------------
    def entity_counts(self) -> Counter:
        """Occurrences of each linked entity id across content cells and
        topic entities — the input to entity-vocabulary construction."""
        counts: Counter = Counter()
        for table in self.tables:
            for entity_id in table.linked_entities():
                counts[entity_id] += 1
            if table.topic_entity:
                counts[table.topic_entity] += 1
        return counts

    def header_counts(self) -> Counter:
        counts: Counter = Counter()
        for table in self.tables:
            for header in table.headers:
                counts[header.strip().lower()] += 1
        return counts

    def caption_texts(self) -> List[str]:
        return [table.caption_text() for table in self.tables]

    def metadata_texts(self) -> List[str]:
        """All text a tokenizer should be trained on: captions + headers."""
        texts = []
        for table in self.tables:
            texts.append(table.caption_text())
            texts.extend(table.headers)
        return texts

    # -- persistence ------------------------------------------------------
    def save_jsonl(self, path: str) -> None:
        with open(path, "w") as handle:
            for table in self.tables:
                handle.write(table.to_json() + "\n")

    @classmethod
    def load_jsonl(cls, path: str) -> "TableCorpus":
        tables = []
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if line:
                    tables.append(Table.from_json(line))
        return cls(tables)


@dataclass
class CorpusSplits:
    """Pre-training / validation / test partition (paper Section 5.1).

    Each table carries its synthesis strategy tag (``Table.strategy``), so
    evals can slice any split by recipe difficulty — uniformly for in-memory
    and sharded corpora (:meth:`repro.data.shards.ShardedDataset.splits`
    round-trips the tags through shard metadata).
    """

    train: TableCorpus
    validation: TableCorpus
    test: TableCorpus

    @property
    def sizes(self) -> tuple:
        return (len(self.train), len(self.validation), len(self.test))

    # -- Dataset protocol --------------------------------------------------
    def __len__(self) -> int:
        return len(self.train) + len(self.validation) + len(self.test)

    def __iter__(self) -> Iterator[Table]:
        for corpus in (self.train, self.validation, self.test):
            yield from corpus

    def instances(self, split: str = "train") -> List[Table]:
        corpora = {"train": self.train, "validation": self.validation,
                   "test": self.test}
        if split not in corpora:
            raise KeyError(f"unknown split {split!r}; "
                           f"expected one of {tuple(corpora)}")
        return list(corpora[split].tables)

    @property
    def metadata(self) -> DatasetMetadata:
        return DatasetMetadata(
            source="memory",
            n_records=len(self),
            split_sizes={"train": len(self.train),
                         "validation": len(self.validation),
                         "test": len(self.test)},
            strategy_counts=strategy_counter(self),
        )

    # -- strategy slicing --------------------------------------------------
    def strategy_counts(self) -> Dict[str, Counter]:
        """Per-split table counts by strategy tag."""
        return {"train": self.train.strategy_counts(),
                "validation": self.validation.strategy_counts(),
                "test": self.test.strategy_counts()}

    def by_strategy(self, strategy: str) -> "CorpusSplits":
        """Slice every split down to one synthesis recipe's tables."""
        return CorpusSplits(self.train.by_strategy(strategy),
                            self.validation.by_strategy(strategy),
                            self.test.by_strategy(strategy))
