"""Observability: metrics, tracing, trace contexts, profiling, journal.

A dependency-free measurement layer for the training / inference stack:

- :mod:`repro.obs.metrics` — ``Counter`` / ``Gauge`` / ``Histogram`` /
  ``Timer`` instruments behind a process-global registry (a no-op
  ``NullRegistry`` by default, so instrumented code is free when
  observability is off);
- :mod:`repro.obs.tracing` — nestable ``with trace("a/b/c"):`` spans that
  aggregate per-path totals, plus request-scoped ``TraceContext`` records
  (trace id + parent-linked spans with start/end offsets) carried in a
  ``contextvars.ContextVar`` and handed across threads with
  ``capture_context`` / ``adopt_context``;
- :mod:`repro.obs.profiler` — opt-in per-layer forward/backward time and
  peak-memory attribution over any ``Module`` tree, rendered as a
  flame-style tree or per-layer table;
- :mod:`repro.obs.prometheus` — ``format_prometheus(registry)`` text
  exposition (``text/plain; version=0.0.4``) for standard scrapers;
- :mod:`repro.obs.journal` — a JSONL ``RunJournal`` (header + per-step +
  probe + trace + request events) replayable for convergence plots and
  ``repro.cli report``.

Everything here reads only the monotonic / wall clock — never a random
number generator — so seeded results are bit-identical with
instrumentation on or off.

Usage::

    from repro import obs

    registry = obs.enable_metrics()
    tracer = obs.enable_tracing()
    with obs.start_trace("serve/entity_linking") as ctx:
        with obs.trace("serve/predict"):
            ...
    print(obs.format_prometheus(registry))
    print(tracer.report())
"""

from repro.obs.clock import perf_counter, wall_time
from repro.obs.journal import (
    EVENT_HEADER,
    EVENT_PROBE,
    EVENT_REQUEST,
    EVENT_STEP,
    EVENT_TRACE,
    JournalSummary,
    PhaseTiming,
    RunJournal,
    format_journal_summary,
    read_journal,
    summarize_journal,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Timer,
    disable_metrics,
    enable_metrics,
    format_metrics,
    get_registry,
    set_registry,
)
from repro.obs.profiler import (
    LayerProfiler,
    LayerStats,
    format_layer_table,
    format_profile_tree,
    profile,
)
from repro.obs.prometheus import CONTENT_TYPE, format_prometheus, sanitize_name
from repro.obs.tracing import (
    ContextSnapshot,
    SpanRecord,
    SpanStats,
    TraceContext,
    Tracer,
    adopt_context,
    capture_context,
    current_trace,
    disable_tracing,
    enable_tracing,
    get_tracer,
    new_trace_id,
    set_tracer,
    start_trace,
    trace,
)

__all__ = [
    "perf_counter",
    "wall_time",
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NullRegistry",
    "get_registry",
    "set_registry",
    "enable_metrics",
    "disable_metrics",
    "format_metrics",
    "CONTENT_TYPE",
    "format_prometheus",
    "sanitize_name",
    "SpanStats",
    "SpanRecord",
    "TraceContext",
    "ContextSnapshot",
    "Tracer",
    "trace",
    "start_trace",
    "current_trace",
    "capture_context",
    "adopt_context",
    "new_trace_id",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
    "LayerProfiler",
    "LayerStats",
    "profile",
    "format_profile_tree",
    "format_layer_table",
    "RunJournal",
    "read_journal",
    "summarize_journal",
    "format_journal_summary",
    "JournalSummary",
    "PhaseTiming",
    "EVENT_HEADER",
    "EVENT_STEP",
    "EVENT_PROBE",
    "EVENT_TRACE",
    "EVENT_REQUEST",
]
