"""Observability: metrics, tracing spans, and the JSONL run journal.

A dependency-free measurement layer for the training / inference stack:

- :mod:`repro.obs.metrics` — ``Counter`` / ``Gauge`` / ``Histogram`` /
  ``Timer`` instruments behind a process-global registry (a no-op
  ``NullRegistry`` by default, so instrumented code is free when
  observability is off);
- :mod:`repro.obs.tracing` — nestable ``with trace("a/b/c"):`` spans that
  aggregate per-path totals and render a tree report;
- :mod:`repro.obs.journal` — a JSONL ``RunJournal`` (header + per-step +
  probe events) replayable for convergence plots and ``repro.cli report``.

Everything here reads only the monotonic / wall clock — never a random
number generator — so seeded results are bit-identical with
instrumentation on or off.

Usage::

    from repro import obs

    registry = obs.enable_metrics()
    tracer = obs.enable_tracing()
    with obs.trace("pretrain/step/forward"):
        ...
    print(obs.format_metrics(registry))
    print(tracer.report())
"""

from repro.obs.clock import perf_counter, wall_time
from repro.obs.journal import (
    EVENT_HEADER,
    EVENT_PROBE,
    EVENT_STEP,
    JournalSummary,
    PhaseTiming,
    RunJournal,
    format_journal_summary,
    read_journal,
    summarize_journal,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Timer,
    disable_metrics,
    enable_metrics,
    format_metrics,
    get_registry,
    set_registry,
)
from repro.obs.tracing import (
    SpanStats,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
    trace,
)

__all__ = [
    "perf_counter",
    "wall_time",
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NullRegistry",
    "get_registry",
    "set_registry",
    "enable_metrics",
    "disable_metrics",
    "format_metrics",
    "SpanStats",
    "Tracer",
    "trace",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
    "RunJournal",
    "read_journal",
    "summarize_journal",
    "format_journal_summary",
    "JournalSummary",
    "PhaseTiming",
    "EVENT_HEADER",
    "EVENT_STEP",
    "EVENT_PROBE",
]
