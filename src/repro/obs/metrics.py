"""Metric primitives and the process-global registry.

Four instrument kinds — :class:`Counter`, :class:`Gauge`,
:class:`Histogram` and :class:`Timer` — are created on demand through a
:class:`MetricsRegistry`.  The module-level default registry is a
:class:`NullRegistry` whose instruments are shared no-op singletons, so
instrumented code pays one dictionary-free method call when observability
is off.  Call :func:`enable_metrics` to swap in a recording registry and
:func:`format_metrics` to render it in the plain-text table style of
``repro.evaluation.reporting``.

None of the instruments touch any random-number generator: enabling or
disabling metrics never changes seeded results.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Union


class Counter:
    """A monotonically increasing count (steps taken, events seen)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0


class Gauge:
    """A value that goes up and down (current learning rate, queue depth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def reset(self) -> None:
        self.value = 0.0


class Histogram:
    """A sample distribution with count/total/mean and percentile summaries."""

    __slots__ = ("name", "samples")

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        self.samples.append(float(value))

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return float(sum(self.samples))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.samples else 0.0

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, ``p`` in [0, 100]."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        fraction = rank - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "total": self.total,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "min": self.minimum,
            "max": self.maximum,
        }

    def reset(self) -> None:
        self.samples.clear()


class _TimerSpan:
    """Context manager recording one monotonic-clock duration."""

    __slots__ = ("_timer", "_start")

    def __init__(self, timer: "Timer"):
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_TimerSpan":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self._timer.observe(time.perf_counter() - self._start)
        return False


class Timer(Histogram):
    """A histogram of durations with a ``with timer.time():`` span helper."""

    __slots__ = ()

    def time(self) -> _TimerSpan:
        return _TimerSpan(self)


class _NullContext:
    """Reusable do-nothing context manager (the disabled-path span)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


NULL_CONTEXT = _NullContext()


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class _NullTimer(Timer):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    def time(self) -> _NullContext:  # type: ignore[override]
        return NULL_CONTEXT


Instrument = Union[Counter, Gauge, Histogram, Timer]


class MetricsRegistry:
    """Name → instrument store; instruments are created on first request."""

    enabled = True

    def __init__(self):
        self._instruments: Dict[str, Instrument] = {}

    def _get(self, name: str, factory) -> Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory(name)
            self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def timer(self, name: str) -> Timer:
        return self._get(name, Timer)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def get(self, name: str) -> Optional[Instrument]:
        return self._instruments.get(name)

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Snapshot every instrument as plain numbers (for JSON dumps)."""
        snapshot: Dict[str, Dict[str, float]] = {}
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                snapshot[name] = instrument.summary()
            else:
                snapshot[name] = {"value": instrument.value}
        return snapshot

    def reset(self) -> None:
        for instrument in self._instruments.values():
            instrument.reset()


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null")
_NULL_TIMER = _NullTimer("null")


class NullRegistry(MetricsRegistry):
    """The zero-cost default: every request returns a shared no-op."""

    enabled = False

    def counter(self, name: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return _NULL_GAUGE

    def histogram(self, name: str) -> Histogram:
        return _NULL_HISTOGRAM

    def timer(self, name: str) -> Timer:
        return _NULL_TIMER


_registry: MetricsRegistry = NullRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry (a no-op :class:`NullRegistry` by default)."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` globally; returns the previous one."""
    global _registry
    previous = _registry
    _registry = registry
    return previous


def enable_metrics() -> MetricsRegistry:
    """Install and return a fresh recording registry."""
    registry = MetricsRegistry()
    set_registry(registry)
    return registry


def disable_metrics() -> None:
    """Restore the no-op default registry."""
    set_registry(NullRegistry())


def format_metrics(registry: Optional[MetricsRegistry] = None,
                   name_width: int = 36) -> str:
    """Plain-text metrics table (``repro.evaluation.reporting`` style)."""
    registry = registry if registry is not None else _registry
    lines = [f"{'Metric':{name_width}s}{'Count':>8s}{'Total':>12s}"
             f"{'Mean':>12s}{'P50':>12s}{'P95':>12s}{'P99':>12s}"]
    for name in registry.names():
        instrument = registry.get(name)
        if isinstance(instrument, Histogram):
            s = instrument.summary()
            lines.append(f"{name:{name_width}s}{int(s['count']):8d}{s['total']:12.4f}"
                         f"{s['mean']:12.4f}{s['p50']:12.4f}{s['p95']:12.4f}"
                         f"{s['p99']:12.4f}")
        else:
            lines.append(f"{name:{name_width}s}{'':8s}{instrument.value:12.4f}")
    return "\n".join(lines)
