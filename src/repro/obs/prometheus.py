"""Prometheus text exposition (format version 0.0.4) for the registry.

:func:`format_prometheus` renders every instrument in a
:class:`~repro.obs.metrics.MetricsRegistry` in the plain-text format
Prometheus scrapes: one ``# TYPE`` line per metric family, counters and
gauges as single samples, histograms/timers as summaries with
p50/p95/p99 ``quantile`` labels plus ``_sum`` and ``_count`` series.

Metric names here use dots and slashes (``serve.latency.entity_linking``);
Prometheus allows only ``[a-zA-Z0-9_:]``, so :func:`sanitize_name` maps
every other character to ``_``.  The original name is preserved in a
``# HELP`` line so dashboards can still show it.
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

#: The Content-Type Prometheus expects from a scrape target.
CONTENT_TYPE = "text/plain; version=0.0.4"

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")
_QUANTILES = ((0.5, 50), (0.95, 95), (0.99, 99))


def sanitize_name(name: str) -> str:
    """Map a dotted/slashed metric name onto the Prometheus charset."""
    cleaned = _INVALID.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _format_value(value: float) -> str:
    """Render a float the way Prometheus parsers expect (no exponents
    needed for our magnitudes; integers lose the trailing ``.0``)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def format_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """Render ``registry`` (default: the global one) as exposition text."""
    if registry is None:
        from repro.obs.metrics import get_registry

        registry = get_registry()
    lines: List[str] = []
    for name in registry.names():
        instrument = registry.get(name)
        if instrument is None:
            continue
        metric = sanitize_name(name)
        lines.append(f"# HELP {metric} {name}")
        if isinstance(instrument, Histogram):  # Timer subclasses Histogram
            lines.append(f"# TYPE {metric} summary")
            for quantile, p in _QUANTILES:
                lines.append(f'{metric}{{quantile="{quantile}"}} '
                             f"{_format_value(instrument.percentile(p))}")
            lines.append(f"{metric}_sum {_format_value(instrument.total)}")
            lines.append(f"{metric}_count {instrument.count}")
        elif isinstance(instrument, Counter):
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_format_value(instrument.value)}")
        elif isinstance(instrument, Gauge):
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_format_value(instrument.value)}")
    return "\n".join(lines) + "\n" if lines else ""
