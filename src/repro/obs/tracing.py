"""Hierarchical tracing spans and request-scoped trace contexts.

Two cooperating layers:

**Aggregate spans** — ``with trace("pretrain/step/forward"):`` times a
region on the monotonic clock.  Spans nest: a span opened inside another
becomes its child, and the :class:`Tracer` aggregates ``(count, total
seconds)`` per *path* — the tuple of labels on the span stack — so the
same label under different parents is kept distinct.  The span stack lives
in a :mod:`contextvars` context variable, so concurrent threads (HTTP
handlers, batcher workers) never interleave each other's stacks.

**Trace contexts** — a :class:`TraceContext` gives one *request* (or eval
probe, or any other unit of work) its own identity: a trace id plus a
record of every span that ran on its behalf, each with start/end offsets
from the trace start and a parent link.  ``with start_trace("serve/x")``
installs a context; every ``trace(...)`` span inside records into it.
When work hops threads, :func:`capture_context` on the submitting side and
:func:`adopt_context` on the worker side keep the spans attached to the
originating trace.  Completed traces stream to a journal as one
``EVENT_TRACE`` record.

Tracing is off by default: :func:`trace` then returns a shared no-op
context manager — two context-variable reads, no allocation.  Like the
metrics registry, tracing never touches any random-number generator, so
seeded results are bit-identical with tracing on or off.
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.clock import perf_counter, wall_time
from repro.obs.metrics import NULL_CONTEXT

#: Spans kept per trace context before further spans are counted but
#: dropped — a guard against unbounded growth when a whole training run
#: executes under one context.
TRACE_SPAN_CAP = 10_000

_trace_counter = itertools.count(1)


def new_trace_id() -> str:
    """Process-unique trace id (wall-clock millis + counter; RNG-free)."""
    return f"{int(wall_time() * 1e3):x}-{next(_trace_counter):06x}"


@dataclass
class SpanRecord:
    """One completed (or still-open) span inside a :class:`TraceContext`."""

    name: str
    #: index of the parent span in ``TraceContext.spans`` (-1 = trace root)
    parent: int
    #: seconds after the trace started
    start: float
    #: seconds after the trace started; < 0 while the span is still open
    end: float = -1.0

    @property
    def seconds(self) -> float:
        return max(0.0, self.end - self.start)

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "parent": self.parent,
                "start": self.start, "end": self.end}


class TraceContext:
    """Identity and span record for one request-scoped unit of work.

    Span mutation is lock-protected: a micro-batcher worker may attribute
    spans to a request trace while the request thread records its own.
    """

    __slots__ = ("trace_id", "name", "started_wall", "spans", "dropped_spans",
                 "wall_seconds", "_perf_base", "_lock")

    def __init__(self, name: str, trace_id: Optional[str] = None):
        self.trace_id = trace_id if trace_id is not None else new_trace_id()
        self.name = name
        self.started_wall = wall_time()
        self._perf_base = perf_counter()
        self.spans: List[SpanRecord] = []
        self.dropped_spans = 0
        self.wall_seconds = 0.0
        self._lock = threading.Lock()

    # -- span recording ----------------------------------------------------
    def offset(self, perf_time: Optional[float] = None) -> float:
        """Seconds between the trace start and ``perf_time`` (default now)."""
        if perf_time is None:
            perf_time = perf_counter()
        return perf_time - self._perf_base

    def open_span(self, name: str, parent: int = -1) -> int:
        """Start a span now; returns its index (-1 when over the cap)."""
        with self._lock:
            if len(self.spans) >= TRACE_SPAN_CAP:
                self.dropped_spans += 1
                return -1
            self.spans.append(SpanRecord(name, parent, self.offset()))
            return len(self.spans) - 1

    def close_span(self, index: int) -> None:
        if index < 0:
            return
        self.spans[index].end = self.offset()

    def add_span(self, name: str, start_perf: float, end_perf: float,
                 parent: int = -1) -> int:
        """Record an externally timed span (cross-thread attribution).

        ``start_perf`` / ``end_perf`` are absolute ``perf_counter`` reads
        from any thread; they are converted to trace-relative offsets.
        """
        with self._lock:
            if len(self.spans) >= TRACE_SPAN_CAP:
                self.dropped_spans += 1
                return -1
            self.spans.append(SpanRecord(name, parent,
                                         self.offset(start_perf),
                                         self.offset(end_perf)))
            return len(self.spans) - 1

    # -- reductions --------------------------------------------------------
    def finish(self) -> "TraceContext":
        """Stamp the total duration (idempotent enough for one caller)."""
        self.wall_seconds = self.offset()
        return self

    def coverage(self) -> float:
        """Fraction of the trace wall time covered by root-level spans.

        Overlapping intervals are merged first, so parallel attribution
        (e.g. a batcher span overlapping the caller's wait span) does not
        count twice.
        """
        total = self.wall_seconds if self.wall_seconds > 0 else self.offset()
        if total <= 0:
            return 0.0
        with self._lock:
            intervals = sorted(
                (span.start, span.end if span.end >= 0 else total)
                for span in self.spans if span.parent == -1)
        covered = 0.0
        cursor = 0.0
        for start, end in intervals:
            start = max(start, cursor)
            if end > start:
                covered += end - start
                cursor = end
        return min(1.0, covered / total)

    def to_event(self) -> Dict[str, Any]:
        """The journal payload for one ``EVENT_TRACE`` record."""
        with self._lock:
            spans = [span.to_dict() for span in self.spans]
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "started_unix": self.started_wall,
            "wall_seconds": self.wall_seconds,
            "n_spans": len(spans),
            "dropped_spans": self.dropped_spans,
            "spans": spans,
        }


#: The active trace context (None = untraced work).
_ACTIVE: ContextVar[Optional[TraceContext]] = ContextVar(
    "repro_obs_trace_context", default=None)
#: Index of the innermost open span in the active context (-1 = root).
_PARENT: ContextVar[int] = ContextVar("repro_obs_trace_parent", default=-1)
#: The aggregate-span label stack (context-local, never shared by threads).
_PATH: ContextVar[Tuple[str, ...]] = ContextVar("repro_obs_span_path",
                                                default=())


def current_trace() -> Optional[TraceContext]:
    """The trace context work is currently attributed to, if any."""
    return _ACTIVE.get()


@dataclass(frozen=True)
class ContextSnapshot:
    """A captured ``(trace context, open-span)`` pair for thread handoff."""

    context: Optional[TraceContext] = None
    parent: int = -1

    def add_span(self, name: str, start_perf: float, end_perf: float) -> None:
        """Attribute an externally timed span to the captured trace."""
        if self.context is not None:
            self.context.add_span(name, start_perf, end_perf,
                                  parent=self.parent)


#: Shared snapshot for the common untraced case (no allocation per capture).
EMPTY_SNAPSHOT = ContextSnapshot()


def capture_context() -> ContextSnapshot:
    """Snapshot the active trace context for handoff to another thread."""
    context = _ACTIVE.get()
    if context is None:
        return EMPTY_SNAPSHOT
    return ContextSnapshot(context, _PARENT.get())


@contextmanager
def adopt_context(snapshot: Optional[ContextSnapshot]):
    """Run a block attributing its spans to a captured trace context.

    The worker-thread side of :func:`capture_context`: spans opened inside
    the block parent onto the span that was open at capture time.  A
    ``None`` / empty snapshot makes this a no-op.
    """
    if snapshot is None or snapshot.context is None:
        yield None
        return
    active_token = _ACTIVE.set(snapshot.context)
    parent_token = _PARENT.set(snapshot.parent)
    try:
        yield snapshot.context
    finally:
        _PARENT.reset(parent_token)
        _ACTIVE.reset(active_token)


class _TraceHandle:
    """Context manager installing one :class:`TraceContext`."""

    __slots__ = ("context", "_journal", "_active_token", "_parent_token")

    def __init__(self, context: TraceContext, journal: Optional[Any]):
        self.context = context
        self._journal = journal

    def __enter__(self) -> TraceContext:
        self._active_token = _ACTIVE.set(self.context)
        self._parent_token = _PARENT.set(-1)
        return self.context

    def __exit__(self, *exc) -> bool:
        _PARENT.reset(self._parent_token)
        _ACTIVE.reset(self._active_token)
        self.context.finish()
        if self._journal is not None:
            from repro.obs.journal import EVENT_TRACE

            self._journal.event(EVENT_TRACE, **self.context.to_event())
        return False


def start_trace(name: str, journal: Optional[Any] = None,
                trace_id: Optional[str] = None) -> _TraceHandle:
    """Open a request-scoped trace context for a ``with`` block.

    Every ``trace(...)`` span inside the block (and on threads that adopt
    the captured context) records into the trace.  When ``journal`` is
    given, the completed trace is appended as one ``EVENT_TRACE`` record
    on exit.
    """
    return _TraceHandle(TraceContext(name, trace_id=trace_id), journal)


@dataclass
class SpanStats:
    """Aggregate for one span path: entry count and total wall seconds."""

    count: int = 0
    total_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0


class _Span:
    """Context manager pushing one label onto the context-local stack."""

    __slots__ = ("_tracer", "_label", "_start", "_path_token", "_span_index",
                 "_parent_token", "_context")

    def __init__(self, tracer: Optional["Tracer"], label: str):
        self._tracer = tracer
        self._label = label
        self._start = 0.0
        self._span_index = -1
        self._parent_token = None
        self._context: Optional[TraceContext] = None

    def __enter__(self) -> "_Span":
        self._path_token = _PATH.set(_PATH.get() + (self._label,))
        context = _ACTIVE.get()
        if context is not None:
            self._context = context
            self._span_index = context.open_span(self._label, _PARENT.get())
            self._parent_token = _PARENT.set(self._span_index)
        self._start = perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        elapsed = perf_counter() - self._start
        if self._context is not None:
            if self._parent_token is not None:
                _PARENT.reset(self._parent_token)
            self._context.close_span(self._span_index)
        path = _PATH.get()
        _PATH.reset(self._path_token)
        if self._tracer is not None:
            self._tracer._record(path, elapsed)
        return False


class Tracer:
    """Collects nested span timings, keyed by the full label path.

    The label stack is context-local (see module docstring); the aggregate
    is lock-protected, so concurrent threads may record simultaneously.
    """

    def __init__(self):
        self._aggregate: Dict[Tuple[str, ...], SpanStats] = {}
        self._lock = threading.Lock()

    def span(self, label: str) -> _Span:
        return _Span(self, label)

    def _record(self, path: Tuple[str, ...], elapsed: float) -> None:
        with self._lock:
            stats = self._aggregate.get(path)
            if stats is None:
                stats = SpanStats()
                self._aggregate[path] = stats
            stats.count += 1
            stats.total_seconds += elapsed

    @property
    def depth(self) -> int:
        """Current nesting depth in this context (0 outside any span)."""
        return len(_PATH.get())

    def paths(self) -> Dict[Tuple[str, ...], SpanStats]:
        """The raw aggregate, keyed by span-stack path."""
        with self._lock:
            return dict(self._aggregate)

    def stats(self, label: str) -> Optional[SpanStats]:
        """Combined stats for ``label`` regardless of where it nested."""
        return self.totals().get(label)

    def totals(self) -> Dict[str, SpanStats]:
        """Per-label totals/counts, summed across every parent path."""
        merged: Dict[str, SpanStats] = {}
        for path, stats in self.paths().items():
            label = path[-1]
            into = merged.setdefault(label, SpanStats())
            into.count += stats.count
            into.total_seconds += stats.total_seconds
        return merged

    def report(self, name_width: int = 40) -> str:
        """Indented tree of span paths with count/total/mean columns."""
        lines = [f"{'Span':{name_width}s}{'Count':>8s}"
                 f"{'Total s':>12s}{'Mean s':>12s}"]
        aggregate = self.paths()
        for path in sorted(aggregate):
            stats = aggregate[path]
            label = "  " * (len(path) - 1) + path[-1]
            lines.append(f"{label:{name_width}s}{stats.count:8d}"
                         f"{stats.total_seconds:12.4f}{stats.mean_seconds:12.4f}")
        return "\n".join(lines)

    def reset(self) -> None:
        with self._lock:
            self._aggregate.clear()


_tracer: Optional[Tracer] = None


def get_tracer() -> Optional[Tracer]:
    """The active tracer, or ``None`` when tracing is disabled."""
    return _tracer


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install ``tracer`` globally (``None`` disables); returns the previous."""
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


def enable_tracing() -> Tracer:
    """Install and return a fresh global tracer."""
    tracer = Tracer()
    set_tracer(tracer)
    return tracer


def disable_tracing() -> None:
    """Turn tracing back into a no-op."""
    set_tracer(None)


def trace(label: str):
    """Span context manager; records into the global tracer's aggregate
    and/or the active trace context — a shared no-op when neither is on."""
    if _tracer is None and _ACTIVE.get() is None:
        return NULL_CONTEXT
    return _Span(_tracer, label)
