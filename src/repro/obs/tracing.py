"""Hierarchical tracing spans.

``with trace("pretrain/step/forward"):`` times a region on the monotonic
clock.  Spans nest: a span opened inside another becomes its child, and
the tracer aggregates ``(count, total seconds)`` per *path* — the tuple of
labels on the span stack — so the same label under different parents is
kept distinct.  :meth:`Tracer.report` renders the aggregate as an indented
tree; :meth:`Tracer.totals` collapses paths back to per-label totals.

Tracing is off by default: :func:`trace` then returns a shared no-op
context manager, a single global check with no allocation.  Like the
metrics registry, tracing never touches any random-number generator.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import NULL_CONTEXT


@dataclass
class SpanStats:
    """Aggregate for one span path: entry count and total wall seconds."""

    count: int = 0
    total_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0


class _Span:
    """Context manager pushing one label onto the tracer's span stack."""

    __slots__ = ("_tracer", "_label", "_start")

    def __init__(self, tracer: "Tracer", label: str):
        self._tracer = tracer
        self._label = label
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._tracer._stack.append(self._label)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        elapsed = time.perf_counter() - self._start
        tracer = self._tracer
        path = tuple(tracer._stack)
        tracer._stack.pop()
        stats = tracer._aggregate.get(path)
        if stats is None:
            stats = SpanStats()
            tracer._aggregate[path] = stats
        stats.count += 1
        stats.total_seconds += elapsed
        return False


class Tracer:
    """Collects nested span timings, keyed by the full label path."""

    def __init__(self):
        self._stack: List[str] = []
        self._aggregate: Dict[Tuple[str, ...], SpanStats] = {}

    def span(self, label: str) -> _Span:
        return _Span(self, label)

    @property
    def depth(self) -> int:
        """Current nesting depth (0 outside any span)."""
        return len(self._stack)

    def paths(self) -> Dict[Tuple[str, ...], SpanStats]:
        """The raw aggregate, keyed by span-stack path."""
        return dict(self._aggregate)

    def stats(self, label: str) -> Optional[SpanStats]:
        """Combined stats for ``label`` regardless of where it nested."""
        return self.totals().get(label)

    def totals(self) -> Dict[str, SpanStats]:
        """Per-label totals/counts, summed across every parent path."""
        merged: Dict[str, SpanStats] = {}
        for path, stats in self._aggregate.items():
            label = path[-1]
            into = merged.setdefault(label, SpanStats())
            into.count += stats.count
            into.total_seconds += stats.total_seconds
        return merged

    def report(self, name_width: int = 40) -> str:
        """Indented tree of span paths with count/total/mean columns."""
        lines = [f"{'Span':{name_width}s}{'Count':>8s}"
                 f"{'Total s':>12s}{'Mean s':>12s}"]
        for path in sorted(self._aggregate):
            stats = self._aggregate[path]
            label = "  " * (len(path) - 1) + path[-1]
            lines.append(f"{label:{name_width}s}{stats.count:8d}"
                         f"{stats.total_seconds:12.4f}{stats.mean_seconds:12.4f}")
        return "\n".join(lines)

    def reset(self) -> None:
        self._stack.clear()
        self._aggregate.clear()


_tracer: Optional[Tracer] = None


def get_tracer() -> Optional[Tracer]:
    """The active tracer, or ``None`` when tracing is disabled."""
    return _tracer


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install ``tracer`` globally (``None`` disables); returns the previous."""
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


def enable_tracing() -> Tracer:
    """Install and return a fresh global tracer."""
    tracer = Tracer()
    set_tracer(tracer)
    return tracer


def disable_tracing() -> None:
    """Turn tracing back into a no-op."""
    set_tracer(None)


def trace(label: str):
    """Span context manager on the global tracer; no-op when disabled."""
    if _tracer is None:
        return NULL_CONTEXT
    return _tracer.span(label)
