"""Opt-in per-layer profiler over the ``repro.nn`` module tree.

:class:`LayerProfiler` installs itself into the two hook points exported by
:mod:`repro.nn.hooks`:

- the **forward hook** wraps every ``Module.__call__``, attributing wall
  time to the module's slash path (``model/encoder/blocks/3/attention``)
  with both *cumulative* (including children) and *self* (children
  subtracted) seconds, plus — when ``memory=True`` — the peak traced
  allocation bytes observed while the layer ran (``tracemalloc`` windows,
  which include NumPy ndarray buffers);
- the **tape hook** tags every autograd tape node with the layer that
  created it and times each backward closure, so ``loss.backward()`` cost
  is attributed to the same per-layer paths.

The profiler only reads the monotonic clock (through the
:mod:`repro.obs.clock` gateway) and the allocation counters — never a
random number generator — so seeded results are bit-identical with
profiling on or off.

Rendering: :func:`format_profile_tree` prints a flame-style indented tree
in model definition order; :func:`format_layer_table` prints a flat table
sorted by cumulative forward time.  ``repro.cli profile`` drives both over
a small pre-training run.
"""

from __future__ import annotations

import threading
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.obs.clock import perf_counter


@dataclass
class LayerStats:
    """Accumulated cost for one module path."""

    path: str
    depth: int
    calls: int = 0
    #: forward wall seconds including children
    forward_seconds: float = 0.0
    #: forward wall seconds with instrumented children subtracted
    forward_self_seconds: float = 0.0
    #: backward wall seconds for tape nodes this layer created
    backward_seconds: float = 0.0
    #: number of tape-node backward closures attributed to this layer
    backward_ops: int = 0
    #: peak traced allocation bytes while this layer was on the stack
    peak_bytes: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "calls": self.calls,
            "forward_seconds": self.forward_seconds,
            "forward_self_seconds": self.forward_self_seconds,
            "backward_seconds": self.backward_seconds,
            "backward_ops": self.backward_ops,
            "peak_bytes": self.peak_bytes,
        }


class _Frame:
    """One open ``Module.__call__`` on the per-thread stack."""

    __slots__ = ("path", "start", "child_seconds", "mem_peak")

    def __init__(self, path: str, start: float):
        self.path = path
        self.start = start
        self.child_seconds = 0.0
        #: running max of tracemalloc windows belonging to this frame
        self.mem_peak = 0


class LayerProfiler:
    """Attributes forward/backward time and peak memory per layer path.

    ``install(model)`` maps every submodule to its path and claims the
    global forward/tape hooks; ``uninstall()`` (or the ``with profile(...)``
    helper) releases them.  Safe to drive models from several threads at
    once — the frame stack is thread-local and the stats table is
    lock-protected — but only one profiler may be installed at a time.
    """

    def __init__(self, memory: bool = False):
        self.memory = memory
        self._paths: Dict[int, str] = {}
        self._order: List[str] = []
        self._stats: Dict[str, LayerStats] = {}
        self._lock = threading.Lock()
        self._local = threading.local()
        self._installed = False
        self._started_tracemalloc = False

    # -- lifecycle ---------------------------------------------------------
    def install(self, root: Any, name: str = "model") -> "LayerProfiler":
        """Instrument ``root`` (a ``repro.nn`` Module tree) under ``name``."""
        from repro.nn.hooks import FORWARD_HOOK, TAPE_HOOK

        if self._installed:
            raise RuntimeError("profiler is already installed")
        for dotted, module in root.named_modules():
            path = name if not dotted else f"{name}/{dotted.replace('.', '/')}"
            self._paths[id(module)] = path
            self._order.append(path)
            self._stats[path] = LayerStats(path, depth=path.count("/"))
        if self.memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        FORWARD_HOOK.install(self._enter, self._exit)
        TAPE_HOOK.install(self._tag, self._run_backward)
        self._installed = True
        return self

    def uninstall(self) -> None:
        from repro.nn.hooks import FORWARD_HOOK, TAPE_HOOK

        if not self._installed:
            return
        FORWARD_HOOK.uninstall()
        TAPE_HOOK.uninstall()
        if self._started_tracemalloc:
            tracemalloc.stop()
            self._started_tracemalloc = False
        self._installed = False

    # -- forward hook ------------------------------------------------------
    def _stack(self) -> List[Optional[_Frame]]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _enter(self, module: Any) -> None:
        stack = self._stack()
        path = self._paths.get(id(module))
        if path is None:
            # A module outside the instrumented tree (e.g. another model on
            # this thread): transparent — its time folds into the caller.
            stack.append(None)
            return
        if self.memory:
            # Close the parent's current tracemalloc window before opening
            # ours, so each frame's windows cover exactly its self regions.
            window_peak = tracemalloc.get_traced_memory()[1]
            for frame in reversed(stack):
                if frame is not None:
                    if window_peak > frame.mem_peak:
                        frame.mem_peak = window_peak
                    break
            tracemalloc.reset_peak()
        stack.append(_Frame(path, perf_counter()))

    def _exit(self, module: Any) -> None:
        stack = self._stack()
        frame = stack.pop()
        if frame is None:
            return
        elapsed = perf_counter() - frame.start
        peak = 0
        if self.memory:
            window_peak = tracemalloc.get_traced_memory()[1]
            peak = max(frame.mem_peak, window_peak)
            tracemalloc.reset_peak()
        for parent in reversed(stack):
            if parent is not None:
                parent.child_seconds += elapsed
                if peak > parent.mem_peak:
                    parent.mem_peak = peak
                break
        with self._lock:
            stats = self._stats[frame.path]
            stats.calls += 1
            stats.forward_seconds += elapsed
            stats.forward_self_seconds += max(0.0, elapsed - frame.child_seconds)
            if peak > stats.peak_bytes:
                stats.peak_bytes = peak

    # -- tape hook ---------------------------------------------------------
    def _tag(self) -> Optional[str]:
        stack = getattr(self._local, "stack", None)
        if stack:
            frame = stack[-1]
            if frame is not None:
                return frame.path
        return None

    def _run_backward(self, tag: str, backward_fn: Callable, grad: Any) -> None:
        start = perf_counter()
        backward_fn(grad)
        elapsed = perf_counter() - start
        with self._lock:
            stats = self._stats.get(tag)
            if stats is not None:
                stats.backward_seconds += elapsed
                stats.backward_ops += 1

    # -- reductions --------------------------------------------------------
    def stats(self) -> Dict[str, LayerStats]:
        """Snapshot of the per-path stats table."""
        with self._lock:
            return dict(self._stats)

    def active_paths(self) -> List[str]:
        """Paths that ran at least once, in model definition order."""
        stats = self.stats()
        return [path for path in self._order
                if stats[path].calls or stats[path].backward_ops]

    def total_forward_seconds(self) -> float:
        """Root-level cumulative forward seconds (depth-0 paths)."""
        return sum(s.forward_seconds for s in self.stats().values()
                   if s.depth == 0)

    def to_dict(self) -> Dict[str, Any]:
        stats = self.stats()
        return {"memory": self.memory,
                "layers": [stats[p].to_dict() for p in self.active_paths()]}


def _mb(n_bytes: int) -> str:
    return f"{n_bytes / 1e6:10.2f}" if n_bytes else f"{'-':>10s}"


def format_profile_tree(profiler: LayerProfiler, name_width: int = 44) -> str:
    """Flame-style tree: indentation mirrors the module hierarchy, each row
    shows cumulative and self forward seconds, backward seconds, calls."""
    stats = profiler.stats()
    header = (f"{'Layer':{name_width}s}{'Calls':>7s}{'Fwd s':>10s}"
              f"{'Self s':>10s}{'Bwd s':>10s}")
    if profiler.memory:
        header += f"{'Peak MB':>10s}"
    lines = [header]
    for path in profiler.active_paths():
        s = stats[path]
        label = "  " * s.depth + path.rsplit("/", 1)[-1]
        row = (f"{label:{name_width}s}{s.calls:7d}{s.forward_seconds:10.4f}"
               f"{s.forward_self_seconds:10.4f}{s.backward_seconds:10.4f}")
        if profiler.memory:
            row += _mb(s.peak_bytes)
        lines.append(row)
    return "\n".join(lines)


def format_layer_table(profiler: LayerProfiler, name_width: int = 44,
                       limit: int = 0) -> str:
    """Flat per-layer table sorted by cumulative forward seconds."""
    stats = profiler.stats()
    total = profiler.total_forward_seconds() or 1.0
    header = (f"{'Layer':{name_width}s}{'Calls':>7s}{'Fwd s':>10s}"
              f"{'Fwd %':>8s}{'Bwd s':>10s}{'Ops':>7s}")
    if profiler.memory:
        header += f"{'Peak MB':>10s}"
    lines = [header]
    ordered = sorted((stats[p] for p in profiler.active_paths()),
                     key=lambda s: s.forward_seconds, reverse=True)
    if limit:
        ordered = ordered[:limit]
    for s in ordered:
        row = (f"{s.path:{name_width}s}{s.calls:7d}{s.forward_seconds:10.4f}"
               f"{100.0 * s.forward_seconds / total:8.1f}"
               f"{s.backward_seconds:10.4f}{s.backward_ops:7d}")
        if profiler.memory:
            row += _mb(s.peak_bytes)
        lines.append(row)
    return "\n".join(lines)


@contextmanager
def profile(model: Any, name: str = "model", memory: bool = False):
    """Profile every ``model`` call inside the block::

        with profile(model, memory=True) as prof:
            trainer.run_step(...)
        print(format_profile_tree(prof))
    """
    profiler = LayerProfiler(memory=memory)
    profiler.install(model, name=name)
    try:
        yield profiler
    finally:
        profiler.uninstall()
