"""JSONL run journal.

A :class:`RunJournal` appends one JSON object per line to a file: a single
``header`` event carrying the run configuration and seed, one ``step``
event per optimization step (losses, learning rate, gradient norm,
tokens/sec, per-phase seconds) and one ``probe`` event per evaluation
probe.  The file is append-only and flushed per event, so a crashed run
still leaves a readable prefix, and it can be replayed later for
convergence plots or the ``repro.cli report`` summary.

:func:`read_journal` parses a journal back into event dictionaries and
:func:`summarize_journal` / :func:`format_journal_summary` reduce one to
the loss/throughput/per-phase report printed by the CLI.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Optional, Sequence

EVENT_HEADER = "header"
EVENT_STEP = "step"
EVENT_PROBE = "probe"
EVENT_TRACE = "trace"
EVENT_REQUEST = "http_request"

PHASES = ("forward", "backward", "optimizer")


class RunJournal:
    """Append-only JSONL event log for one training / evaluation run."""

    def __init__(self, path: str):
        self.path = path
        self._handle: Optional[IO[str]] = open(path, "w")
        self._header_written = False
        self.n_events = 0

    # -- writers -----------------------------------------------------------
    def event(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Append one event; returns the record that was written."""
        if self._handle is None:
            raise ValueError(f"journal {self.path} is closed")
        record: Dict[str, Any] = {"event": kind, "time": time.time()}
        record.update(fields)
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()
        self.n_events += 1
        return record

    def header(self, config: Optional[Dict[str, Any]] = None,
               seed: Optional[int] = None, **fields: Any) -> None:
        """Write the run-header event once; later calls are ignored."""
        if self._header_written:
            return
        self._header_written = True
        self.event(EVENT_HEADER, config=config or {}, seed=seed, **fields)

    def step(self, step: int, **fields: Any) -> None:
        self.event(EVENT_STEP, step=step, **fields)

    def probe(self, step: int, accuracy: float, **fields: Any) -> None:
        self.event(EVENT_PROBE, step=step, accuracy=accuracy, **fields)

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def read_journal(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL journal back into a list of event dictionaries."""
    events: List[Dict[str, Any]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


@dataclass
class PhaseTiming:
    """Per-phase (forward/backward/optimizer) timing aggregate."""

    count: int = 0
    total_seconds: float = 0.0
    p50_seconds: float = 0.0
    p95_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0


@dataclass
class JournalSummary:
    """Loss / throughput / per-phase reduction of one run journal."""

    n_steps: int = 0
    wall_seconds: float = 0.0
    steps_per_second: float = 0.0
    tokens_per_second: float = 0.0
    first_loss: Optional[float] = None
    last_loss: Optional[float] = None
    mean_loss: float = 0.0
    mean_mlm_loss: float = 0.0
    mean_mer_loss: float = 0.0
    final_lr: Optional[float] = None
    phases: Dict[str, PhaseTiming] = field(default_factory=dict)
    probe_steps: List[int] = field(default_factory=list)
    probe_accuracies: List[float] = field(default_factory=list)
    header: Optional[Dict[str, Any]] = None


def _percentile(values: Sequence[float], p: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def summarize_journal(events: Sequence[Dict[str, Any]]) -> JournalSummary:
    """Reduce journal events to the summary behind ``repro.cli report``."""
    summary = JournalSummary()
    steps = [e for e in events if e.get("event") == EVENT_STEP]
    probes = [e for e in events if e.get("event") == EVENT_PROBE]
    headers = [e for e in events if e.get("event") == EVENT_HEADER]
    if headers:
        summary.header = headers[0]

    summary.n_steps = len(steps)
    if steps:
        losses = [float(e.get("loss", 0.0)) for e in steps]
        summary.first_loss = losses[0]
        summary.last_loss = losses[-1]
        summary.mean_loss = sum(losses) / len(losses)
        summary.mean_mlm_loss = sum(float(e.get("mlm", 0.0)) for e in steps) / len(steps)
        summary.mean_mer_loss = sum(float(e.get("mer", 0.0)) for e in steps) / len(steps)
        summary.wall_seconds = sum(float(e.get("seconds", 0.0)) for e in steps)
        if summary.wall_seconds > 0:
            summary.steps_per_second = summary.n_steps / summary.wall_seconds
            total_tokens = sum(float(e.get("tokens", 0.0)) for e in steps)
            summary.tokens_per_second = total_tokens / summary.wall_seconds
        last_lr = steps[-1].get("lr")
        summary.final_lr = float(last_lr) if last_lr is not None else None
        for phase in PHASES:
            key = f"{phase}_seconds"
            samples = [float(e[key]) for e in steps if key in e]
            if samples:
                summary.phases[phase] = PhaseTiming(
                    count=len(samples),
                    total_seconds=sum(samples),
                    p50_seconds=_percentile(samples, 50),
                    p95_seconds=_percentile(samples, 95),
                )

    summary.probe_steps = [int(e.get("step", 0)) for e in probes]
    summary.probe_accuracies = [float(e.get("accuracy", 0.0)) for e in probes]
    return summary


def format_journal_summary(summary: JournalSummary) -> str:
    """Plain-text report (``repro.evaluation.reporting`` style)."""
    lines: List[str] = []
    if summary.header is not None:
        seed = summary.header.get("seed")
        config = summary.header.get("config") or {}
        described = " ".join(f"{k}={config[k]}" for k in sorted(config)
                             if isinstance(config[k], (int, float, str, bool)))
        lines.append(f"run      : seed={seed} {described}".rstrip())
    lines.append(f"steps    : {summary.n_steps}  wall {summary.wall_seconds:.2f}s  "
                 f"{summary.steps_per_second:.2f} steps/s  "
                 f"{summary.tokens_per_second:.0f} tokens/s")
    if summary.first_loss is not None:
        lines.append(f"loss     : first {summary.first_loss:.4f}  "
                     f"last {summary.last_loss:.4f}  mean {summary.mean_loss:.4f}  "
                     f"(mlm {summary.mean_mlm_loss:.4f}, mer {summary.mean_mer_loss:.4f})")
    if summary.final_lr is not None:
        lines.append(f"final lr : {summary.final_lr:.6g}")
    if summary.phases:
        lines.append(f"{'Phase':12s}{'Count':>8s}{'Total s':>12s}"
                     f"{'Mean s':>12s}{'P50 s':>12s}{'P95 s':>12s}")
        for phase in PHASES:
            timing = summary.phases.get(phase)
            if timing is None:
                continue
            lines.append(f"{phase:12s}{timing.count:8d}{timing.total_seconds:12.4f}"
                         f"{timing.mean_seconds:12.4f}{timing.p50_seconds:12.4f}"
                         f"{timing.p95_seconds:12.4f}")
    for step, accuracy in zip(summary.probe_steps, summary.probe_accuracies):
        lines.append(f"probe    : step {step}  accuracy {accuracy:.3f}")
    return "\n".join(lines)
