"""The repo's single gateway to the system clocks.

Lint rule CLK001 forbids ``time.time()`` / ``time.perf_counter()`` /
``datetime.now()`` everywhere outside ``repro.obs``: seeded compute must be
clock-free so results are reproducible, and all timing flows through these
two functions so instrumentation has one choke point.
"""

from __future__ import annotations

import time


def wall_time() -> float:
    """Seconds since the epoch (for journal timestamps)."""
    return time.time()


def perf_counter() -> float:
    """Monotonic high-resolution counter (for durations)."""
    return time.perf_counter()
