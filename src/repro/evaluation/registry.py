"""The experiment registry: every table and figure of the paper's Section 6.

Each entry records what the artifact shows, which modules implement the
pieces, and which benchmark regenerates it.  ``python -m repro.evaluation.registry``
prints the index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class Experiment:
    artifact: str
    title: str
    modules: Tuple[str, ...]
    benchmark: str
    expected_shape: str


EXPERIMENTS = [
    Experiment(
        "Table 3", "Pre-training corpus statistics",
        ("repro.data.synthesis", "repro.data.preprocessing", "repro.data.statistics"),
        "benchmarks/bench_table03_corpus_stats.py",
        "moderate tables (median ~8-12 rows, ~3 entity columns); held-out "
        "splits richer than train"),
    Experiment(
        "Table 4", "Entity linking",
        ("repro.tasks.entity_linking", "repro.kb.lookup",
         "repro.baselines.lookup_linker", "repro.baselines.t2k",
         "repro.baselines.hybrid"),
        "benchmarks/bench_table04_entity_linking.py",
        "TURL best F1; Oracle above all; description ablation hurts more "
        "than type ablation"),
    Experiment(
        "Table 5", "Column type annotation",
        ("repro.tasks.column_type", "repro.baselines.sherlock"),
        "benchmarks/bench_table05_column_type.py",
        "TURL > Sherlock, even on identical (mention-only) inputs; full "
        "inputs best"),
    Experiment(
        "Table 6", "Per-type column annotation F1",
        ("repro.tasks.column_type",),
        "benchmarks/bench_table06_column_type_per_type.py",
        "coarse types easy for everyone; fine-grained types need table "
        "context (metadata beats mentions)"),
    Experiment(
        "Table 7", "Relation extraction",
        ("repro.tasks.relation_extraction", "repro.baselines.bert_re"),
        "benchmarks/bench_table07_relation_extraction.py",
        "both strong (F1 > 0.9); TURL above the text-only baseline in every "
        "configuration"),
    Experiment(
        "Figure 6", "Relation-extraction convergence",
        ("repro.tasks.relation_extraction", "repro.baselines.bert_re"),
        "benchmarks/bench_figure06_convergence.py",
        "TURL's validation MAP dominates early steps (better initialization "
        "from pre-training)"),
    Experiment(
        "Table 8", "Row population",
        ("repro.tasks.row_population", "repro.baselines.entitables",
         "repro.baselines.table2vec", "repro.retrieval.bm25"),
        "benchmarks/bench_table08_row_population.py",
        "TURL best at 0 and 1 seeds; Table2Vec inapplicable at 0 seeds; "
        "recall shared across methods"),
    Experiment(
        "Table 9", "Cell filling",
        ("repro.tasks.cell_filling", "repro.baselines.cell_filling"),
        "benchmarks/bench_table09_cell_filling.py",
        "Exact ≈ H2H ≈ H2V decent; TURL best P@1 with no fine-tuning"),
    Experiment(
        "Table 10", "Schema augmentation",
        ("repro.tasks.schema_augmentation", "repro.baselines.entitables",
         "repro.retrieval.tfidf"),
        "benchmarks/bench_table10_schema_augmentation.py",
        "TURL competitive at 0 seeds; kNN gains more from a seed header"),
    Experiment(
        "Table 11", "Schema augmentation case study",
        ("repro.tasks.schema_augmentation", "repro.baselines.entitables"),
        "benchmarks/bench_table11_schema_cases.py",
        "kNN wins when a near-identical support table exists; TURL suggests "
        "plausible semantic headers"),
    Experiment(
        "Figure 7a", "Visibility-matrix ablation",
        ("repro.core.visibility", "repro.core.pretrain"),
        "benchmarks/bench_figure07a_visibility.py",
        "structure mask strictly improves the object-entity recovery probe"),
    Experiment(
        "Figure 7b", "MER mask-ratio ablation",
        ("repro.core.masking", "repro.core.pretrain"),
        "benchmarks/bench_figure07b_mask_ratio.py",
        "mid ratios (0.4-0.6) at or above the 0.2 / 0.8 extremes"),
]


def format_registry() -> str:
    lines = []
    for experiment in EXPERIMENTS:
        lines.append(f"{experiment.artifact:10s} {experiment.title}")
        lines.append(f"{'':10s}   modules : {', '.join(experiment.modules)}")
        lines.append(f"{'':10s}   bench   : {experiment.benchmark}")
        lines.append(f"{'':10s}   shape   : {experiment.expected_shape}")
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_registry())
