"""Experiment registry and report formatting.

:mod:`repro.evaluation.registry` maps every paper artifact (table / figure)
to the modules that implement it and the benchmark that regenerates it;
:mod:`repro.evaluation.reporting` holds the plain-text table formatters the
benchmarks use.
"""

from repro.evaluation.registry import EXPERIMENTS, Experiment
from repro.evaluation.reporting import format_metric_rows, format_pk_rows

__all__ = ["EXPERIMENTS", "Experiment", "format_metric_rows", "format_pk_rows"]
