"""Plain-text result-table formatters shared by benchmarks and examples."""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from repro.tasks.metrics import PrecisionRecallF1


def format_metric_rows(rows: Mapping[str, PrecisionRecallF1],
                       method_width: int = 32) -> str:
    """F1/P/R table in the paper's layout (percentages)."""
    lines = [f"{'Method':{method_width}s}{'F1':>8s}{'P':>8s}{'R':>8s}"]
    for name, metrics in rows.items():
        m = metrics.as_percentages()
        lines.append(f"{name:{method_width}s}{m.f1:8.2f}{m.precision:8.2f}{m.recall:8.2f}")
    return "\n".join(lines)


def format_pk_rows(rows: Mapping[str, Dict[int, float]],
                   ks: Sequence[int] = (1, 3, 5, 10)) -> str:
    """P@K table (percentages)."""
    lines = [f"{'Method':12s}" + "".join(f"{'P@' + str(k):>8s}" for k in ks)]
    for name, per_k in rows.items():
        lines.append(f"{name:12s}" + "".join(f"{100 * per_k[k]:8.2f}" for k in ks))
    return "\n".join(lines)
