"""Command-line interface.

Usage::

    python -m repro.cli world --seed 1                   # generate + describe a world
    python -m repro.cli corpus --tables 300 --out c.jsonl
    python -m repro.cli pretrain --tables 300 --epochs 8 --out ckpt/ --journal run.jsonl
    python -m repro.cli probe --checkpoint ckpt/ --tables 300
    python -m repro.cli report --journal run.jsonl       # loss / timing summary
    python -m repro.cli registry                         # experiment index
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_world(args: argparse.Namespace) -> int:
    from repro.kb.generator import WorldConfig, generate_world

    config = WorldConfig(seed=args.seed).scaled(args.scale)
    kb = generate_world(config)
    print(f"entities : {len(kb)}")
    print(f"facts    : {len(kb.facts)}")
    by_type = {}
    for entity in kb.entities.values():
        for type_name in entity.types:
            by_type[type_name] = by_type.get(type_name, 0) + 1
    for type_name in sorted(by_type):
        print(f"  {type_name:16s} {by_type[type_name]}")
    if args.out:
        kb.save(args.out)
        print(f"saved to {args.out}")
    return 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    from repro.data.preprocessing import filter_relational, partition_corpus
    from repro.data.statistics import format_statistics, splits_statistics
    from repro.data.synthesis import SynthesisConfig, build_corpus
    from repro.kb.generator import WorldConfig, generate_world

    kb = generate_world(WorldConfig(seed=args.seed).scaled(args.scale))
    corpus = filter_relational(build_corpus(
        kb, SynthesisConfig(seed=args.seed + 1, n_tables=args.tables)))
    splits = partition_corpus(corpus, seed=args.seed)
    print(f"tables: {len(corpus)} (train/dev/test = {splits.sizes})")
    print(format_statistics(splits_statistics(splits)))
    if args.out:
        corpus.save_jsonl(args.out)
        print(f"saved to {args.out}")
    return 0


def _cmd_pretrain(args: argparse.Namespace) -> int:
    from repro.config import TURLConfig
    from repro.core.context import build_context
    from repro.core.pretrain import save_checkpoint
    from repro.data.synthesis import SynthesisConfig
    from repro.kb.generator import WorldConfig
    from repro.obs import RunJournal

    journal = None
    if args.journal:
        try:
            journal = RunJournal(args.journal)
        except OSError as error:
            print(f"cannot open journal {args.journal}: {error}")
            return 1
    try:
        context = build_context(
            WorldConfig(seed=args.seed).scaled(args.scale),
            SynthesisConfig(seed=args.seed + 1, n_tables=args.tables),
            TURLConfig(), pretrain_epochs=args.epochs, seed=args.seed,
            journal=journal)
    finally:
        if journal is not None:
            journal.close()
    stats = context.pretrain_stats
    print(f"steps: {len(stats.losses)}  final loss: {stats.losses[-1]:.3f}")
    print(f"wall: {stats.wall_seconds:.2f}s  "
          f"throughput: {stats.throughput:.2f} steps/s")
    save_checkpoint(args.out, context.model, context.tokenizer,
                    context.entity_vocab)
    print(f"checkpoint written to {args.out}")
    if journal is not None:
        print(f"journal written to {args.journal}")
    return 0


def _cmd_probe(args: argparse.Namespace) -> int:
    from repro.core.candidates import CandidateBuilder
    from repro.core.linearize import Linearizer
    from repro.core.pretrain import Pretrainer, load_checkpoint
    from repro.data.preprocessing import filter_relational, partition_corpus
    from repro.data.synthesis import SynthesisConfig, build_corpus
    from repro.kb.generator import WorldConfig, generate_world

    model, tokenizer, entity_vocab = load_checkpoint(args.checkpoint)
    kb = generate_world(WorldConfig(seed=args.seed).scaled(args.scale))
    corpus = filter_relational(build_corpus(
        kb, SynthesisConfig(seed=args.seed + 1, n_tables=args.tables)))
    splits = partition_corpus(corpus, seed=args.seed)
    linearizer = Linearizer(tokenizer, entity_vocab, model.config)
    builder = CandidateBuilder(splits.train, entity_vocab, model.config)
    pretrainer = Pretrainer(model, [], builder, model.config)
    instances = [linearizer.encode(t) for t in splits.validation.tables[:args.max_tables]]
    accuracy = pretrainer.evaluate_object_prediction(instances)
    print(f"object-entity recovery accuracy: {accuracy:.3f}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import json

    from repro.obs import format_journal_summary, read_journal, summarize_journal

    try:
        events = read_journal(args.journal)
    except OSError as error:
        print(f"cannot read journal {args.journal}: {error}")
        return 1
    except json.JSONDecodeError as error:
        print(f"journal {args.journal} is not valid JSONL: {error}")
        return 1
    if not events:
        print(f"journal {args.journal} is empty")
        return 1
    print(f"journal  : {args.journal}  ({len(events)} events)")
    print(format_journal_summary(summarize_journal(events)))
    return 0


def _cmd_registry(args: argparse.Namespace) -> int:
    from repro.evaluation.registry import format_registry

    print(format_registry())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro",
                                     description="TURL reproduction CLI")
    commands = parser.add_subparsers(dest="command", required=True)

    world = commands.add_parser("world", help="generate a synthetic world")
    world.add_argument("--seed", type=int, default=1)
    world.add_argument("--scale", type=float, default=1.0)
    world.add_argument("--out", default=None)
    world.set_defaults(handler=_cmd_world)

    corpus = commands.add_parser("corpus", help="synthesize a table corpus")
    corpus.add_argument("--seed", type=int, default=1)
    corpus.add_argument("--scale", type=float, default=1.0)
    corpus.add_argument("--tables", type=int, default=300)
    corpus.add_argument("--out", default=None)
    corpus.set_defaults(handler=_cmd_corpus)

    pretrain = commands.add_parser("pretrain", help="pre-train a TURL model")
    pretrain.add_argument("--seed", type=int, default=1)
    pretrain.add_argument("--scale", type=float, default=1.0)
    pretrain.add_argument("--tables", type=int, default=300)
    pretrain.add_argument("--epochs", type=int, default=8)
    pretrain.add_argument("--out", required=True)
    pretrain.add_argument("--journal", default=None,
                          help="write a JSONL run journal to this path")
    pretrain.set_defaults(handler=_cmd_pretrain)

    probe = commands.add_parser("probe", help="run the recovery probe")
    probe.add_argument("--checkpoint", required=True)
    probe.add_argument("--seed", type=int, default=1)
    probe.add_argument("--scale", type=float, default=1.0)
    probe.add_argument("--tables", type=int, default=300)
    probe.add_argument("--max-tables", type=int, default=25)
    probe.set_defaults(handler=_cmd_probe)

    report = commands.add_parser("report", help="summarize a run journal")
    report.add_argument("--journal", required=True)
    report.set_defaults(handler=_cmd_report)

    registry = commands.add_parser("registry", help="print the experiment index")
    registry.set_defaults(handler=_cmd_registry)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
