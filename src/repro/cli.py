"""Command-line interface.

Usage::

    python -m repro.cli world --seed 1                   # generate + describe a world
    python -m repro.cli corpus --tables 300 --out c.jsonl
    python -m repro.cli synthesize --tables 5000 --shards 8 --workers 4 --out corpus/
    python -m repro.cli pretrain --tables 300 --epochs 8 --out ckpt/ --journal run.jsonl
    python -m repro.cli pretrain --corpus corpus/ --shuffle shard --epochs 8 --out ckpt/
    python -m repro.cli finetune --task column_type --checkpoint ckpt/ --epochs 3
    python -m repro.cli probe --checkpoint ckpt/ --tables 300
    python -m repro.cli report --journal run.jsonl       # loss / timing summary
    python -m repro.cli registry                         # experiment index
    python -m repro.cli lint src tests                   # static analysis
    python -m repro.cli bench --json BENCH_dev.json      # hot-path benchmarks
    python -m repro.cli bench --compare-to BENCH_pr5.json  # regression gate
    python -m repro.cli profile --memory                 # per-layer cost
    python -m repro.cli serve --checkpoint ckpt/         # JSON HTTP endpoint

``pretrain`` and ``finetune`` accept ``--sanitize`` to run every training
step under the autograd sanitizer (NaN/Inf guards, in-place mutation
detection); seeded results are bit-identical with it on or off.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

#: SynthesisConfig fields that the shared argument group does NOT expose
#: verbatim: ``seed`` is derived from the world seed (``--seed + 1``, the
#: historical convention) and ``n_tables`` is spelled ``--tables``.
_SYNTHESIS_SPECIAL = {"seed": None, "n_tables": "tables"}


def add_synthesis_arguments(parser: argparse.ArgumentParser,
                            tables_default: int = 300) -> None:
    """Install the corpus-synthesis argument group on ``parser``.

    Every flag except ``--seed``/``--scale``/``--tables`` is derived from
    :class:`repro.data.synthesis.SynthesisConfig` by reflection, so a config
    field added there shows up here (and in ``synthesize``) automatically —
    the two subcommands can never drift apart.
    """
    import dataclasses

    from repro.data.synthesis import SynthesisConfig

    group = parser.add_argument_group(
        "synthesis", "corpus synthesis (shared by corpus/synthesize/pretrain)")
    group.add_argument("--seed", type=int, default=1,
                       help="world seed; tables use seed+1")
    group.add_argument("--scale", type=float, default=1.0,
                       help="world size multiplier")
    group.add_argument("--tables", type=int, default=tables_default,
                       help="number of tables to synthesize")
    for field in dataclasses.fields(SynthesisConfig):
        if field.name in _SYNTHESIS_SPECIAL:
            continue
        flag = "--" + field.name.replace("_", "-")
        if field.type == "bool" or isinstance(field.default, bool):
            group.add_argument(flag, action=argparse.BooleanOptionalAction,
                               default=field.default,
                               help=f"SynthesisConfig.{field.name}")
        else:
            kind = float if isinstance(field.default, float) else int
            group.add_argument(flag, type=kind, default=field.default,
                               help=f"SynthesisConfig.{field.name}")


def synthesis_config_from_args(args: argparse.Namespace):
    """The :class:`SynthesisConfig` an :func:`add_synthesis_arguments`
    namespace describes (synthesis seed = world seed + 1, as always)."""
    import dataclasses

    from repro.data.synthesis import SynthesisConfig

    values = {"seed": args.seed + 1, "n_tables": args.tables}
    for field in dataclasses.fields(SynthesisConfig):
        if field.name in _SYNTHESIS_SPECIAL:
            continue
        values[field.name] = getattr(args, field.name)
    return SynthesisConfig(**values)


def _cmd_world(args: argparse.Namespace) -> int:
    from repro.kb.generator import WorldConfig, generate_world

    config = WorldConfig(seed=args.seed).scaled(args.scale)
    kb = generate_world(config)
    print(f"entities : {len(kb)}")
    print(f"facts    : {len(kb.facts)}")
    by_type = {}
    for entity in kb.entities.values():
        for type_name in entity.types:
            by_type[type_name] = by_type.get(type_name, 0) + 1
    for type_name in sorted(by_type):
        print(f"  {type_name:16s} {by_type[type_name]}")
    if args.out:
        kb.save(args.out)
        print(f"saved to {args.out}")
    return 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    from repro.data.preprocessing import filter_relational, partition_corpus
    from repro.data.statistics import format_statistics, splits_statistics
    from repro.data.synthesis import build_corpus
    from repro.kb.generator import WorldConfig, generate_world

    kb = generate_world(WorldConfig(seed=args.seed).scaled(args.scale))
    corpus = filter_relational(build_corpus(kb, synthesis_config_from_args(args)))
    splits = partition_corpus(corpus, seed=args.seed)
    print(f"tables: {len(corpus)} (train/dev/test = {splits.sizes})")
    print(format_statistics(splits_statistics(splits)))
    if args.out:
        corpus.save_jsonl(args.out)
        print(f"saved to {args.out}")
    return 0


def _cmd_synthesize(args: argparse.Namespace) -> int:
    from repro.data.shards import write_sharded_corpus
    from repro.kb.generator import WorldConfig, generate_world

    kb = generate_world(WorldConfig(seed=args.seed).scaled(args.scale))
    dataset = write_sharded_corpus(kb, synthesis_config_from_args(args),
                                   args.out, n_shards=args.shards,
                                   workers=args.workers)
    meta = dataset.metadata
    print(f"records : {len(dataset)} across {meta.extra['n_shards']} shard(s)")
    print(f"splits  : {meta.split_sizes}")
    for strategy in sorted(meta.strategy_counts):
        print(f"  {strategy:20s} {meta.strategy_counts[strategy]}")
    print(f"fingerprint: {meta.extra['fingerprint']}")
    print(f"written to {args.out}")
    return 0


def _cmd_pretrain(args: argparse.Namespace) -> int:
    from repro.config import TURLConfig
    from repro.core.context import build_context, pretrain_streaming
    from repro.core.pretrain import save_checkpoint
    from repro.data.shards import ShardedDataset, ShardFormatError
    from repro.kb.generator import WorldConfig
    from repro.obs import RunJournal

    journal = None
    if args.journal:
        try:
            journal = RunJournal(args.journal)
        except OSError as error:
            print(f"cannot open journal {args.journal}: {error}")
            return 1
    try:
        if args.corpus:
            try:
                dataset = ShardedDataset(args.corpus)
            except ShardFormatError as error:
                print(f"cannot open sharded corpus {args.corpus}: {error}")
                return 1
            model, tokenizer, entity_vocab, stats = pretrain_streaming(
                dataset, TURLConfig(), pretrain_epochs=args.epochs,
                seed=args.seed, journal=journal, sanitize=args.sanitize,
                shuffle=args.shuffle)
        else:
            context = build_context(
                WorldConfig(seed=args.seed).scaled(args.scale),
                synthesis_config_from_args(args),
                TURLConfig(), pretrain_epochs=args.epochs, seed=args.seed,
                journal=journal, sanitize=args.sanitize, shuffle=args.shuffle)
            model, tokenizer, entity_vocab = (context.model, context.tokenizer,
                                              context.entity_vocab)
            stats = context.pretrain_stats
    finally:
        if journal is not None:
            journal.close()
    print(f"steps: {len(stats.losses)}  final loss: {stats.losses[-1]:.3f}")
    print(f"wall: {stats.wall_seconds:.2f}s  "
          f"throughput: {stats.throughput:.2f} steps/s")
    save_checkpoint(args.out, model, tokenizer, entity_vocab)
    print(f"checkpoint written to {args.out}")
    if journal is not None:
        print(f"journal written to {args.journal}")
    return 0


FINETUNE_TASKS = ("column_type", "relation_extraction", "entity_linking",
                  "row_population", "schema_augmentation")


def _build_finetune_task(name: str, model, linearizer, kb, splits, seed: int):
    """Build ``(task, evaluate)`` for one fine-tuning task name.

    ``task`` is a :class:`repro.train.TrainableTask`; ``evaluate`` returns the
    task's headline test metric as ``(metric_name, value)``.
    """
    if name == "column_type":
        from repro.tasks.column_type import (TURLColumnTypeAnnotator,
                                             build_column_type_dataset)

        dataset = build_column_type_dataset(kb, splits.train, splits.validation,
                                            splits.test, min_type_instances=5)
        head = TURLColumnTypeAnnotator(model, linearizer,
                                       len(dataset.type_names), seed=seed)
        return (head.training_task(dataset),
                lambda: ("test F1", head.evaluate(dataset.test, dataset).f1))
    if name == "relation_extraction":
        from repro.tasks.relation_extraction import (TURLRelationExtractor,
                                                     build_relation_dataset)

        dataset = build_relation_dataset(kb, splits.train, splits.validation,
                                         splits.test, min_relation_instances=5)
        head = TURLRelationExtractor(model, linearizer,
                                     len(dataset.relation_names), seed=seed)
        return (head.training_task(dataset),
                lambda: ("test F1", head.evaluate(dataset.test, dataset).f1))
    if name == "entity_linking":
        from repro.kb.lookup import LookupService
        from repro.kb.schema import all_types
        from repro.tasks.entity_linking import (TURLEntityLinker,
                                                build_linking_dataset)

        lookup = LookupService(kb)
        train = build_linking_dataset(splits.train, lookup, require_truth=True)
        test = build_linking_dataset(splits.test, lookup)
        head = TURLEntityLinker(model, linearizer, kb, all_types(), seed=seed)
        return (head.training_task(train),
                lambda: ("test F1", head.evaluate(test).f1))
    if name == "row_population":
        from repro.tasks.row_population import (PopulationCandidateGenerator,
                                                TURLRowPopulator,
                                                build_population_instances)

        generator = PopulationCandidateGenerator(splits.train)
        train = build_population_instances(splits.train, n_seed=1,
                                           min_subject_entities=3)
        test = build_population_instances(splits.test, n_seed=1,
                                          min_subject_entities=3)
        head = TURLRowPopulator(model, linearizer, seed=seed)
        return (head.training_task(train, generator),
                lambda: ("test MAP",
                         head.evaluate(test, generator).primary_value))
    if name == "schema_augmentation":
        from repro.tasks.schema_augmentation import (TURLSchemaAugmenter,
                                                     build_header_vocabulary,
                                                     build_schema_instances)

        vocabulary = build_header_vocabulary(splits.train, min_tables=2)
        train = build_schema_instances(splits.train, vocabulary, n_seed=1)
        test = build_schema_instances(splits.test, vocabulary, n_seed=1)
        head = TURLSchemaAugmenter(model, linearizer, vocabulary, seed=seed)
        return (head.training_task(train),
                lambda: ("test MAP", head.evaluate(test).primary_value))
    raise ValueError(f"unknown fine-tuning task {name!r}")


def _cmd_finetune(args: argparse.Namespace) -> int:
    from repro.core.linearize import Linearizer
    from repro.core.pretrain import load_checkpoint
    from repro.data.preprocessing import filter_relational, partition_corpus
    from repro.data.synthesis import SynthesisConfig, build_corpus
    from repro.kb.generator import WorldConfig, generate_world
    from repro.obs import RunJournal
    from repro.train import Trainer, TrainSpec

    model, tokenizer, entity_vocab = load_checkpoint(args.checkpoint)
    kb = generate_world(WorldConfig(seed=args.seed).scaled(args.scale))
    corpus = filter_relational(build_corpus(
        kb, SynthesisConfig(seed=args.seed + 1, n_tables=args.tables)))
    splits = partition_corpus(corpus, seed=args.seed)
    linearizer = Linearizer(tokenizer, entity_vocab, model.config)
    task, evaluate = _build_finetune_task(args.task, model, linearizer, kb,
                                          splits, args.seed)

    # The paper's fine-tuning recipe: Adam + linear decay + gradient clipping.
    spec = TrainSpec(epochs=args.epochs, learning_rate=args.learning_rate,
                     schedule="linear", gradient_clip=model.config.gradient_clip,
                     seed=args.seed, max_items=args.max_instances,
                     sanitize=args.sanitize)
    journal = None
    if args.journal:
        try:
            journal = RunJournal(args.journal)
        except OSError as error:
            print(f"cannot open journal {args.journal}: {error}")
            return 1
    try:
        trainer = Trainer(task, spec, journal=journal)
        stats = trainer.fit()
    finally:
        if journal is not None:
            journal.close()
    print(f"task: {args.task}  steps: {stats.steps}")
    for epoch, loss in enumerate(stats.epoch_losses, start=1):
        print(f"epoch {epoch}: loss {loss:.4f}")
    metric_name, value = evaluate()
    print(f"{metric_name}: {value:.3f}")
    if args.save_state:
        trainer.save(args.save_state)
        print(f"training state written to {args.save_state}")
    if journal is not None:
        print(f"journal written to {args.journal}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.core.linearize import Linearizer
    from repro.core.pretrain import load_checkpoint
    from repro.data.preprocessing import filter_relational, partition_corpus
    from repro.data.synthesis import SynthesisConfig, build_corpus
    from repro.kb.generator import WorldConfig, generate_world
    from repro.obs import RunJournal
    from repro.serve import (PredictionServer, PredictorFleet,
                             build_serving_bundle)

    model, tokenizer, entity_vocab = load_checkpoint(
        args.checkpoint, mmap="auto" if args.workers > 1 else False)
    kb = generate_world(WorldConfig(seed=args.seed).scaled(args.scale))
    corpus = filter_relational(build_corpus(
        kb, SynthesisConfig(seed=args.seed + 1, n_tables=args.tables)))
    splits = partition_corpus(corpus, seed=args.seed)
    linearizer = Linearizer(tokenizer, entity_vocab, model.config)

    journal = None
    if args.journal:
        try:
            journal = RunJournal(args.journal)
        except OSError as error:
            print(f"cannot open journal {args.journal}: {error}")
            return 1
    bundle = build_serving_bundle(
        model, linearizer, kb, splits, seed=args.seed,
        finetune_epochs=args.finetune_epochs,
        finetune_max_instances=args.max_instances,
        enable_cache=not args.no_cache, cache_size=args.cache_size,
        journal=journal)
    fleet = None
    if args.workers > 1:
        fleet = PredictorFleet(bundle.predictor, workers=args.workers,
                               max_queue=args.max_queue, journal=journal)
        server = PredictionServer(fleet=fleet, host=args.host,
                                  port=args.port)
    else:
        server = PredictionServer(bundle.predictor, host=args.host,
                                  port=args.port,
                                  max_batch_size=args.max_batch_size,
                                  max_wait_ms=args.max_wait_ms)
    host, port = server.address
    tier = (f"fleet of {args.workers} workers" if fleet is not None
            else "single worker")
    print(f"serving on http://{host}:{port}  "
          f"({tier}, cache {'off' if args.no_cache else 'on'})")
    for task in bundle.predictor.tasks:
        print(f"  POST /v1/{task}")
    print("  GET  /healthz")
    print("  GET  /metrics")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.close()
        if journal is not None:
            journal.close()
    return 0


def _cmd_probe(args: argparse.Namespace) -> int:
    from repro.core.candidates import CandidateBuilder
    from repro.core.linearize import Linearizer
    from repro.core.pretrain import Pretrainer, load_checkpoint
    from repro.data.preprocessing import filter_relational, partition_corpus
    from repro.data.synthesis import SynthesisConfig, build_corpus
    from repro.kb.generator import WorldConfig, generate_world

    model, tokenizer, entity_vocab = load_checkpoint(args.checkpoint)
    kb = generate_world(WorldConfig(seed=args.seed).scaled(args.scale))
    corpus = filter_relational(build_corpus(
        kb, SynthesisConfig(seed=args.seed + 1, n_tables=args.tables)))
    splits = partition_corpus(corpus, seed=args.seed)
    linearizer = Linearizer(tokenizer, entity_vocab, model.config)
    builder = CandidateBuilder(splits.train, entity_vocab, model.config)
    pretrainer = Pretrainer(model, [], builder, model.config)
    instances = [linearizer.encode(t) for t in splits.validation.tables[:args.max_tables]]
    accuracy = pretrainer.evaluate_object_prediction(instances)
    print(f"object-entity recovery accuracy: {accuracy:.3f}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import json

    from repro.obs import format_journal_summary, read_journal, summarize_journal

    try:
        events = read_journal(args.journal)
    except OSError as error:
        print(f"cannot read journal {args.journal}: {error}")
        return 1
    except json.JSONDecodeError as error:
        print(f"journal {args.journal} is not valid JSONL: {error}")
        return 1
    if not events:
        print(f"journal {args.journal} is empty")
        return 1
    print(f"journal  : {args.journal}  ({len(events)} events)")
    print(format_journal_summary(summarize_journal(events)))
    return 0


def _cmd_registry(args: argparse.Namespace) -> int:
    from repro.evaluation.registry import format_registry

    print(format_registry())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.bench import (compare_reports, default_cases,
                             format_comparison, format_report, report_to_dict,
                             run_cases, write_report)

    cases = default_cases()
    if args.only:
        known = {case.name for case in cases}
        missing = [name for name in args.only if name not in known]
        if missing:
            print(f"unknown bench case(s): {', '.join(missing)}")
            print(f"available: {', '.join(sorted(known))}")
            return 1
        cases = [case for case in cases if case.name in set(args.only)]
    results = run_cases(cases, warmup=args.warmup, repeat=args.repeat,
                        progress=print)
    print(format_report(results))
    if args.json:
        write_report(args.json, args.name, results, args.warmup, args.repeat)
        print(f"report written to {args.json}")
    if args.compare_to:
        try:
            with open(args.compare_to) as handle:
                baseline = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"cannot read baseline {args.compare_to}: {error}")
            return 1
        per_case = {}
        for entry in args.case_tolerance or []:
            name, _, value = entry.partition("=")
            try:
                per_case[name] = float(value)
            except ValueError:
                print(f"bad --case-tolerance {entry!r} (want NAME=FRACTION)")
                return 1
        payload = report_to_dict(args.name, results, args.warmup, args.repeat)
        comparison = compare_reports(payload, baseline,
                                     tolerance=args.tolerance,
                                     per_case=per_case)
        print(format_comparison(comparison))
        if args.compare_json:
            with open(args.compare_json, "w") as handle:
                json.dump(comparison.to_dict(), handle, indent=2,
                          sort_keys=True)
                handle.write("\n")
            print(f"comparison written to {args.compare_json}")
        if not comparison.ok:
            return 1
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.config import TURLConfig
    from repro.core.candidates import CandidateBuilder
    from repro.core.linearize import Linearizer
    from repro.core.model import TURLModel
    from repro.core.pretrain import Pretrainer
    from repro.data.preprocessing import filter_relational
    from repro.data.synthesis import SynthesisConfig, build_corpus
    from repro.kb.generator import WorldConfig, generate_world
    from repro.obs import format_layer_table, format_profile_tree, profile
    from repro.text.tokenizer import WordPieceTokenizer
    from repro.text.vocab import EntityVocabulary

    config = TURLConfig(num_layers=args.layers, dim=32, intermediate_dim=64,
                        num_heads=2, batch_size=8)
    kb = generate_world(WorldConfig(seed=args.seed))
    corpus = filter_relational(build_corpus(
        kb, SynthesisConfig(seed=args.seed + 1, n_tables=args.tables)))
    tokenizer = WordPieceTokenizer.train(corpus.metadata_texts(),
                                         vocab_size=1200)
    entity_vocab = EntityVocabulary.build_from_counts(corpus.entity_counts(),
                                                      min_frequency=2)
    linearizer = Linearizer(tokenizer, entity_vocab, config)
    instances = [linearizer.encode(table) for table in corpus]
    instances = instances[:args.max_tables]
    builder = CandidateBuilder(corpus, entity_vocab, config)
    model = TURLModel(len(tokenizer.vocab), len(entity_vocab), config,
                      seed=args.seed)
    pretrainer = Pretrainer(model, instances, builder, config, seed=args.seed)
    with profile(model, memory=args.memory) as profiler:
        stats = pretrainer.train(n_epochs=1)
    print(f"profiled {stats.steps} pre-training steps "
          f"over {len(instances)} tables "
          f"({config.num_layers}-layer d={config.dim} model)")
    print()
    print(format_profile_tree(profiler))
    print()
    print(format_layer_table(profiler, limit=args.top))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.__main__ import main as lint_main

    argv = list(args.paths)
    if args.format != "text":
        argv += ["--format", args.format]
    if args.invariants:
        argv.append("--invariants")
    return lint_main(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro",
                                     description="TURL reproduction CLI")
    commands = parser.add_subparsers(dest="command", required=True)

    world = commands.add_parser("world", help="generate a synthetic world")
    world.add_argument("--seed", type=int, default=1)
    world.add_argument("--scale", type=float, default=1.0)
    world.add_argument("--out", default=None)
    world.set_defaults(handler=_cmd_world)

    corpus = commands.add_parser("corpus", help="synthesize a table corpus")
    add_synthesis_arguments(corpus)
    corpus.add_argument("--out", default=None)
    corpus.set_defaults(handler=_cmd_corpus)

    synthesize = commands.add_parser(
        "synthesize", help="write a sharded memory-mappable corpus")
    add_synthesis_arguments(synthesize)
    synthesize.add_argument("--out", required=True,
                            help="directory for meta.json/index.bin/shard-*.bin")
    synthesize.add_argument("--shards", type=int, default=4,
                            help="number of payload shards")
    synthesize.add_argument("--workers", type=int, default=1,
                            help="parallel synthesis processes; output bytes "
                                 "are identical for any worker count")
    synthesize.set_defaults(handler=_cmd_synthesize)

    pretrain = commands.add_parser("pretrain", help="pre-train a TURL model")
    add_synthesis_arguments(pretrain)
    pretrain.add_argument("--corpus", default=None, metavar="DIR",
                          help="stream from a `synthesize --out DIR` sharded "
                               "corpus instead of synthesizing in-process "
                               "(synthesis flags are then ignored)")
    pretrain.add_argument("--epochs", type=int, default=8)
    pretrain.add_argument("--out", required=True)
    pretrain.add_argument("--journal", default=None,
                          help="write a JSONL run journal to this path")
    pretrain.add_argument("--sanitize", action="store_true",
                          help="run steps under the autograd sanitizer")
    pretrain.add_argument("--shuffle", choices=("flat", "bucket", "shard"),
                          default="flat",
                          help="epoch order: flat (bit-identical historical "
                               "order), bucket (length-bucketed batches, "
                               "no padding waste) or shard (shard-local "
                               "bucketing; pairs with --corpus)")
    pretrain.set_defaults(handler=_cmd_pretrain)

    finetune = commands.add_parser(
        "finetune", help="fine-tune a pre-trained checkpoint on a task")
    finetune.add_argument("--task", required=True, choices=FINETUNE_TASKS)
    finetune.add_argument("--checkpoint", required=True,
                          help="directory written by `pretrain --out`")
    finetune.add_argument("--seed", type=int, default=1)
    finetune.add_argument("--scale", type=float, default=1.0)
    finetune.add_argument("--tables", type=int, default=300)
    finetune.add_argument("--epochs", type=int, default=3)
    finetune.add_argument("--learning-rate", type=float, default=1e-3)
    finetune.add_argument("--max-instances", type=int, default=None,
                          help="subsample the training set (whole tables)")
    finetune.add_argument("--journal", default=None,
                          help="write a JSONL run journal to this path")
    finetune.add_argument("--save-state", default=None,
                          help="write a resumable training checkpoint here")
    finetune.add_argument("--sanitize", action="store_true",
                          help="run steps under the autograd sanitizer")
    finetune.set_defaults(handler=_cmd_finetune)

    serve = commands.add_parser(
        "serve", help="serve all six task heads over JSON HTTP")
    serve.add_argument("--checkpoint", required=True,
                       help="directory written by `pretrain --out`")
    serve.add_argument("--seed", type=int, default=1)
    serve.add_argument("--scale", type=float, default=1.0)
    serve.add_argument("--tables", type=int, default=300)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="0 picks an ephemeral port")
    serve.add_argument("--finetune-epochs", type=int, default=0,
                       help="fine-tune each trainable head this many epochs "
                            "before serving (0 = serve pre-trained weights)")
    serve.add_argument("--max-instances", type=int, default=None,
                       help="subsample each task's fine-tuning set")
    serve.add_argument("--workers", type=int, default=1,
                       help="serving fleet size; >1 routes requests by "
                            "table-content key over cache-partitioned "
                            "workers (memory-mapped weights when the "
                            "checkpoint allows)")
    serve.add_argument("--max-queue", type=int, default=64,
                       help="per-worker queue bound before 429s "
                            "(fleet mode)")
    serve.add_argument("--max-batch-size", type=int, default=8,
                       help="micro-batcher flush size")
    serve.add_argument("--max-wait-ms", type=float, default=5.0,
                       help="micro-batcher flush deadline")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the shared encode cache")
    serve.add_argument("--cache-size", type=int, default=256,
                       help="encode-cache capacity (distinct batches)")
    serve.add_argument("--journal", default=None,
                       help="write serve_request events to this JSONL path")
    serve.set_defaults(handler=_cmd_serve)

    probe = commands.add_parser("probe", help="run the recovery probe")
    probe.add_argument("--checkpoint", required=True)
    probe.add_argument("--seed", type=int, default=1)
    probe.add_argument("--scale", type=float, default=1.0)
    probe.add_argument("--tables", type=int, default=300)
    probe.add_argument("--max-tables", type=int, default=25)
    probe.set_defaults(handler=_cmd_probe)

    report = commands.add_parser("report", help="summarize a run journal")
    report.add_argument("--journal", required=True)
    report.set_defaults(handler=_cmd_report)

    registry = commands.add_parser("registry", help="print the experiment index")
    registry.set_defaults(handler=_cmd_registry)

    bench = commands.add_parser(
        "bench", help="run the hot-path benchmark suite")
    bench.add_argument("--warmup", type=int, default=1,
                       help="untimed repetitions before measuring")
    bench.add_argument("--repeat", type=int, default=3,
                       help="timed repetitions per case (best is reported)")
    bench.add_argument("--only", nargs="*", default=None,
                       help="run only these case names")
    bench.add_argument("--name", default="dev",
                       help="bench name recorded in the JSON report")
    bench.add_argument("--json", default=None,
                       help="write a BENCH_<name>.json report to this path")
    bench.add_argument("--compare-to", default=None,
                       help="diff this run against a committed BENCH_*.json "
                            "baseline; exit non-zero on regression")
    bench.add_argument("--tolerance", type=float, default=0.05,
                       help="allowed fractional regression per case "
                            "(default 0.05 = 5%%)")
    bench.add_argument("--case-tolerance", action="append", default=None,
                       metavar="NAME=FRACTION",
                       help="override the tolerance for one case, e.g. "
                            "pretrain_steps=0.02 (repeatable); "
                            "sub-millisecond kernels need wider bands "
                            "than end-to-end cases")
    bench.add_argument("--compare-json", default=None,
                       help="also write the comparison verdict as JSON")
    bench.set_defaults(handler=_cmd_bench)

    prof = commands.add_parser(
        "profile", help="per-layer forward/backward cost of a small "
                        "pre-training run")
    prof.add_argument("--seed", type=int, default=7)
    prof.add_argument("--tables", type=int, default=120,
                      help="corpus size to synthesize")
    prof.add_argument("--max-tables", type=int, default=24,
                      help="tables actually trained on (one epoch)")
    prof.add_argument("--layers", type=int, default=2)
    prof.add_argument("--memory", action="store_true",
                      help="also attribute peak traced-allocation bytes "
                           "per layer (tracemalloc)")
    prof.add_argument("--top", type=int, default=0,
                      help="limit the flat table to the N costliest layers")
    prof.set_defaults(handler=_cmd_profile)

    lint = commands.add_parser("lint", help="run the repo's static analyzer")
    lint.add_argument("paths", nargs="*", default=["src"])
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument("--invariants", action="store_true",
                      help="also run runtime structural invariant checks")
    lint.set_defaults(handler=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
