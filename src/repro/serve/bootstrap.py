"""Assemble a six-task :class:`Predictor` from pipeline artifacts.

The adapters only wrap already-built heads; something still has to build
the heads and their task resources (label inventories, candidate
generators, header vocabularies) from a model + corpus.  That recipe —
shared by ``repro.cli serve``, the serving smoke test and the bench case —
lives here, mirroring the per-task construction of
``repro.cli._build_finetune_task``.

``finetune_epochs > 0`` runs each trainable head's ``finetune`` for that
many epochs before serving (the smoke path: a tiny checkpoint plus one
epoch per task); ``0`` serves the heads exactly as initialized from the
pre-trained weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.linearize import Linearizer
from repro.core.model import TURLModel
from repro.data.corpus import CorpusSplits
from repro.kb.knowledge_base import KnowledgeBase
from repro.obs import RunJournal
from repro.serve.adapters import (
    CellFillingAdapter,
    ColumnTypeAdapter,
    EntityLinkingAdapter,
    RelationExtractionAdapter,
    RowPopulationAdapter,
    SchemaAugmentationAdapter,
    TaskAdapter,
)
from repro.serve.cache import ENCODE_CACHE_SIZE
from repro.serve.predictor import Predictor


@dataclass
class ServingBundle:
    """A ready predictor plus example instances for every served task."""

    predictor: Predictor
    #: A few held-out task instances per task name — smoke-test payload
    #: material (encode with ``adapter.encode_instance``).
    examples: Dict[str, List[Any]] = field(default_factory=dict)


def build_serving_bundle(model: TURLModel, linearizer: Linearizer,
                         kb: KnowledgeBase, splits: CorpusSplits,
                         seed: int = 1,
                         finetune_epochs: int = 0,
                         finetune_max_instances: Optional[int] = None,
                         enable_cache: bool = True,
                         cache_size: int = ENCODE_CACHE_SIZE,
                         n_examples: int = 4,
                         journal: Optional[RunJournal] = None) -> ServingBundle:
    """Build heads + resources for all six TUBE tasks and wrap them."""
    from repro.kb.lookup import LookupService
    from repro.kb.schema import all_types
    from repro.tasks.cell_filling import (CellFillingCandidates,
                                          HeaderStatistics, TURLCellFiller,
                                          build_filling_instances)
    from repro.tasks.column_type import (TURLColumnTypeAnnotator,
                                         build_column_type_dataset)
    from repro.tasks.entity_linking import (TURLEntityLinker,
                                            build_linking_dataset)
    from repro.tasks.relation_extraction import (TURLRelationExtractor,
                                                 build_relation_dataset)
    from repro.tasks.row_population import (PopulationCandidateGenerator,
                                            TURLRowPopulator,
                                            build_population_instances)
    from repro.tasks.schema_augmentation import (TURLSchemaAugmenter,
                                                 build_header_vocabulary,
                                                 build_schema_instances)

    adapters: List[TaskAdapter] = []
    examples: Dict[str, List[Any]] = {}

    lookup = LookupService(kb)
    linker = TURLEntityLinker(model, linearizer, kb, all_types(), seed=seed)
    if finetune_epochs > 0:
        train = build_linking_dataset(splits.train, lookup, require_truth=True)
        linker.finetune(train, epochs=finetune_epochs,
                        max_instances=finetune_max_instances, journal=journal)
    adapters.append(EntityLinkingAdapter(linker))
    examples["entity_linking"] = build_linking_dataset(
        splits.test, lookup, max_instances=n_examples)[:n_examples]

    type_dataset = build_column_type_dataset(kb, splits.train,
                                             splits.validation, splits.test,
                                             min_type_instances=5)
    annotator = TURLColumnTypeAnnotator(model, linearizer,
                                        len(type_dataset.type_names), seed=seed)
    if finetune_epochs > 0:
        annotator.finetune(type_dataset, epochs=finetune_epochs,
                           max_instances=finetune_max_instances,
                           journal=journal)
    adapters.append(ColumnTypeAdapter(annotator, type_dataset))
    examples["column_type"] = type_dataset.test[:n_examples]

    relation_dataset = build_relation_dataset(kb, splits.train,
                                              splits.validation, splits.test,
                                              min_relation_instances=5)
    extractor = TURLRelationExtractor(model, linearizer,
                                      len(relation_dataset.relation_names),
                                      seed=seed)
    if finetune_epochs > 0:
        extractor.finetune(relation_dataset, epochs=finetune_epochs,
                           max_instances=finetune_max_instances,
                           journal=journal)
    adapters.append(RelationExtractionAdapter(extractor, relation_dataset))
    examples["relation_extraction"] = relation_dataset.test[:n_examples]

    generator = PopulationCandidateGenerator(splits.train)
    populator = TURLRowPopulator(model, linearizer, seed=seed)
    if finetune_epochs > 0:
        train = build_population_instances(splits.train, n_seed=1,
                                           min_subject_entities=3)
        populator.finetune(train, generator, epochs=finetune_epochs,
                           max_instances=finetune_max_instances,
                           journal=journal)
    adapters.append(RowPopulationAdapter(populator, generator))
    examples["row_population"] = build_population_instances(
        splits.test, n_seed=1, min_subject_entities=3)[:n_examples]

    statistics = HeaderStatistics(splits.train)
    candidate_finder = CellFillingCandidates(splits.train, statistics)
    filler = TURLCellFiller(model, linearizer)  # zero-shot: no finetune
    adapters.append(CellFillingAdapter(filler, candidate_finder))
    examples["cell_filling"] = build_filling_instances(splits.test)[:n_examples]

    vocabulary = build_header_vocabulary(splits.train, min_tables=2)
    augmenter = TURLSchemaAugmenter(model, linearizer, vocabulary, seed=seed)
    if finetune_epochs > 0:
        train = build_schema_instances(splits.train, vocabulary, n_seed=1)
        augmenter.finetune(train, epochs=finetune_epochs,
                           max_instances=finetune_max_instances,
                           journal=journal)
    adapters.append(SchemaAugmentationAdapter(augmenter))
    examples["schema_augmentation"] = build_schema_instances(
        splits.test, vocabulary, n_seed=1)[:n_examples]

    predictor = Predictor(adapters, enable_cache=enable_cache,
                          cache_size=cache_size, journal=journal)
    return ServingBundle(predictor=predictor, examples=examples)


def build_serving_fleet(model: TURLModel, linearizer: Linearizer,
                        kb: KnowledgeBase, splits: CorpusSplits,
                        workers: int = 2,
                        max_queue: Optional[int] = None,
                        journal: Optional[RunJournal] = None,
                        **bundle_kwargs) -> "Tuple[Any, ServingBundle]":
    """One-stop fleet construction: bundle + :class:`PredictorFleet`.

    Builds the six-task bundle exactly as :func:`build_serving_bundle`
    (pass its keyword arguments through ``bundle_kwargs``), then clones the
    predictor into ``workers`` cache-partitioned lanes.  Returns
    ``(fleet, bundle)`` — the bundle keeps the example instances and the
    template predictor (the single-worker parity reference).
    """
    from repro.serve.fleet import DEFAULT_MAX_QUEUE, PredictorFleet

    bundle = build_serving_bundle(model, linearizer, kb, splits,
                                  journal=journal, **bundle_kwargs)
    fleet = PredictorFleet(
        bundle.predictor, workers=workers,
        max_queue=DEFAULT_MAX_QUEUE if max_queue is None else max_queue,
        journal=journal)
    return fleet, bundle
