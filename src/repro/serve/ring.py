"""Consistent-hash ring for cache-aware request routing.

The fleet dispatcher routes every request by the blake2b content key of its
table payload (the same digest family :meth:`EncodeCache.key_for` uses), so
repeats of a table always land on the same worker and that worker's encode
cache stays hot.  A plain ``hash(key) % n`` mapping would reshuffle almost
every key when a worker joins or leaves; consistent hashing over a ring of
virtual nodes instead remaps only the keys that fall into the arcs owned by
the changed worker — on average ``1/n`` of the keyspace.

Each worker owns ``replicas`` points on the ring (virtual nodes), which
smooths the arc-length distribution so per-worker load stays close to the
mean even for small fleets.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional, Sequence, Union

#: Virtual nodes per worker.  128 keeps the max/mean load ratio comfortably
#: under 1.35 for fleets of 2-16 workers (see tests/serve/test_ring.py).
DEFAULT_REPLICAS = 128


def _point(data: bytes) -> int:
    """Map bytes to a position on the ring (64-bit blake2b)."""
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


class HashRing:
    """Consistent hashing over named workers with virtual nodes.

    >>> ring = HashRing(["worker0", "worker1"])
    >>> ring.route(b"table-digest")  # doctest: +SKIP
    'worker1'
    """

    def __init__(self, workers: Sequence[str] = (),
                 replicas: int = DEFAULT_REPLICAS):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._points: List[int] = []
        self._owners: List[str] = []
        self._workers: List[str] = []
        for worker in workers:
            self.add_worker(worker)

    # -- membership ----------------------------------------------------
    @property
    def workers(self) -> List[str]:
        """Worker names in insertion order."""
        return list(self._workers)

    def __len__(self) -> int:
        return len(self._workers)

    def __contains__(self, worker: str) -> bool:
        return worker in self._workers

    def add_worker(self, worker: str) -> None:
        """Insert ``worker``'s virtual nodes into the ring."""
        if worker in self._workers:
            raise ValueError(f"worker {worker!r} already on the ring")
        self._workers.append(worker)
        for replica in range(self.replicas):
            point = _point(f"{worker}#{replica}".encode())
            index = bisect.bisect_left(self._points, point)
            # Ties are astronomically unlikely with 64-bit points but must
            # still be deterministic: break them by worker name.
            while (index < len(self._points)
                   and self._points[index] == point
                   and self._owners[index] < worker):
                index += 1
            self._points.insert(index, point)
            self._owners.insert(index, worker)

    def remove_worker(self, worker: str) -> None:
        """Remove ``worker``'s virtual nodes; its arcs fall to successors."""
        if worker not in self._workers:
            raise KeyError(f"worker {worker!r} not on the ring")
        self._workers.remove(worker)
        keep = [i for i, owner in enumerate(self._owners) if owner != worker]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    # -- routing -------------------------------------------------------
    def route(self, key: Union[bytes, str]) -> str:
        """Return the worker owning ``key`` (first point clockwise)."""
        if not self._workers:
            raise LookupError("hash ring has no workers")
        if isinstance(key, str):
            key = key.encode()
        point = _point(key)
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0  # wrap past the top of the ring
        return self._owners[index]

    def distribution(self, keys: Sequence[Union[bytes, str]]) -> Dict[str, int]:
        """Count how many of ``keys`` each worker owns (all workers listed)."""
        counts = {worker: 0 for worker in self._workers}
        for key in keys:
            counts[self.route(key)] += 1
        return counts


def route_key_for(payload: object, task: Optional[str] = None) -> bytes:
    """Content digest of a request payload for ring routing.

    Uses the table sub-object when present so the *same table* queried under
    different tasks (or with different task-specific fields) still routes to
    the same worker — cross-task encode-cache reuse is the whole point of
    content routing.  Falls back to the full payload for table-less requests.
    Canonical JSON (sorted keys) keeps the digest independent of dict
    ordering; non-JSON-serializable payloads fall back to ``repr``.
    """
    import json

    if isinstance(payload, dict) and "table" in payload:
        payload = payload["table"]
    try:
        blob = json.dumps(payload, sort_keys=True, default=repr).encode()
    except (TypeError, ValueError):
        blob = repr(payload).encode()
    if task is not None and not isinstance(payload, (dict, list)):
        # Scalar payloads (e.g. bare ids) carry no table identity; salt with
        # the task so distinct tasks don't collide onto one digest.
        blob = task.encode() + b"\x00" + blob
    return hashlib.blake2b(blob, digest_size=16).digest()
