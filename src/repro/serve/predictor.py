"""The serving facade: one object that answers any TUBE task.

A :class:`Predictor` owns a set of :class:`~repro.serve.adapters.TaskAdapter`
instances, installs one shared :class:`~repro.serve.cache.EncodeCache` on
every distinct underlying model (so repeated tables skip the Transformer
no matter which task asks), and instruments every call through
``repro.obs``:

- ``serve.requests.<task>`` counter — instances answered per task;
- ``serve.latency.<task>`` timer — wall seconds per predict call;
- ``serve.encode_cache.hit_rate`` gauge — rolling cache effectiveness
  (named fleet workers report ``serve.worker<i>.cache.hit_rate`` instead);
- optional :class:`repro.obs.RunJournal` events (``serve_request``).

Instrumentation reads only the monotonic clock; predictions are a pure
function of the instance and the fine-tuned weights, so results are
bit-identical with caching and metrics on or off.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.obs import RunJournal, get_registry
from repro.serve.adapters import Prediction, TaskAdapter, adapters_by_task
from repro.serve.cache import ENCODE_CACHE_SIZE, EncodeCache


class Predictor:
    """Dispatch ``(task, instance)`` requests to the right adapter.

    ``cache=None`` (the default) builds a fresh shared
    :class:`EncodeCache`; pass an instance to share one across predictors
    or ``enable_cache=False`` to serve uncached (the bench baseline).
    """

    def __init__(self, adapters: Sequence[TaskAdapter],
                 cache: Optional[EncodeCache] = None,
                 cache_size: int = ENCODE_CACHE_SIZE,
                 enable_cache: bool = True,
                 journal: Optional[RunJournal] = None,
                 name: Optional[str] = None):
        self.adapters = adapters_by_task(adapters)
        self.cache = None
        if enable_cache:
            self.cache = cache if cache is not None else EncodeCache(cache_size)
        self.journal = journal
        # Fleet workers pass a name (e.g. "worker0") so each predictor's
        # cache gauge gets its own namespace; the anonymous single-predictor
        # deployment keeps the historical metric name.
        self.name = name
        self._cache_gauge = ("serve.encode_cache.hit_rate" if name is None
                             else f"serve.{name}.cache.hit_rate")
        for model in self._distinct_models():
            model.encode_cache = self.cache

    def _distinct_models(self) -> List[Any]:
        models: List[Any] = []
        for adapter in self.adapters.values():
            if not any(adapter.model is model for model in models):
                models.append(adapter.model)
        return models

    # -- introspection ----------------------------------------------------
    @property
    def tasks(self) -> List[str]:
        return sorted(self.adapters)

    def adapter_for(self, task: str) -> TaskAdapter:
        adapter = self.adapters.get(task)
        if adapter is None:
            raise KeyError(f"unknown task {task!r}; serving {self.tasks}")
        return adapter

    def cache_stats(self) -> Dict[str, float]:
        if self.cache is None:
            return {"enabled": 0.0}
        return {"enabled": 1.0, **self.cache.stats()}

    # -- prediction -------------------------------------------------------
    def predict_batch(self, task: str, instances: Sequence[Any]) -> List[Prediction]:
        adapter = self.adapter_for(task)
        registry = get_registry()
        with registry.timer(f"serve.latency.{task}").time():
            predictions = adapter.predict_batch(instances)
        registry.counter(f"serve.requests.{task}").inc(len(instances))
        if self.cache is not None:
            registry.gauge(self._cache_gauge).set(self.cache.hit_rate)
        if self.journal is not None:
            self.journal.event("serve_request", task=task,
                               instances=len(instances),
                               **{f"cache_{k}": v
                                  for k, v in self.cache_stats().items()})
        return predictions

    def predict(self, task: str, instance: Any) -> Prediction:
        return self.predict_batch(task, [instance])[0]

    # -- JSON plumbing (used by the HTTP layer) ---------------------------
    def predict_payloads(self, task: str,
                         payloads: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Decode JSON payloads, predict, re-encode JSON predictions."""
        adapter = self.adapter_for(task)
        instances = [adapter.decode_instance(payload) for payload in payloads]
        return [adapter.encode_prediction(prediction)
                for prediction in self.predict_batch(task, instances)]
