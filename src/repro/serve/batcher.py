"""Micro-batching: queue concurrent requests, flush as task batches.

Concurrent callers (HTTP handler threads, test harnesses) enqueue single
instances; one daemon worker drains the queue and calls
``Predictor.predict_batch`` per task group.  Besides amortizing per-call
overhead, the single worker is the serving layer's concurrency story:
``eval_mode`` / ``no_grad`` flip process-global state, so every prediction
must run on one thread — callers only ever touch thread-safe
:class:`~concurrent.futures.Future` objects.

A batch flushes when either

- the oldest queued task group reaches ``max_batch_size``, or
- the oldest queued item has waited ``max_wait_ms`` milliseconds.

Timing flows through :func:`repro.obs.clock.perf_counter`, the repo's one
clock gateway (lint rule CLK001).
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import Future
from typing import Any, Deque, List, Optional, Tuple

from repro.obs import get_registry
from repro.obs.clock import perf_counter
from repro.obs.tracing import ContextSnapshot, capture_context

#: One queued request: task, instance, future, enqueue perf time, and the
#: submitter's captured trace context (for cross-thread span attribution).
_Item = Tuple[str, Any, "Future", float, ContextSnapshot]


class MicroBatcher:
    """Queue ``(task, instance)`` requests; flush them in task batches.

    Each :meth:`submit` captures the caller's trace context
    (:func:`repro.obs.capture_context`); the worker thread attributes a
    ``serve/queue`` span (time spent waiting for a batch) and a
    ``serve/predict`` span (the batch execution window) back to every
    originating request trace, so a request traced through the batcher
    still yields a single connected trace."""

    def __init__(self, predictor, max_batch_size: int = 8,
                 max_wait_ms: float = 5.0):
        if max_batch_size <= 0:
            raise ValueError(f"max_batch_size must be positive, got {max_batch_size}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        self.predictor = predictor
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_ms / 1000.0
        self._queue: Deque[_Item] = deque()
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._closed = False
        self._worker = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve-batcher")
        self._worker.start()

    # -- client side ------------------------------------------------------
    def submit(self, task: str, instance: Any) -> "Future":
        """Enqueue one instance; resolve its prediction via the future."""
        future: Future = Future()
        snapshot = capture_context()
        with self._ready:
            if self._closed:
                raise RuntimeError("MicroBatcher is closed")
            self._queue.append((task, instance, future, perf_counter(),
                                snapshot))
            self._ready.notify()
        return future

    def predict(self, task: str, instance: Any):
        """Blocking convenience wrapper over :meth:`submit`."""
        return self.submit(task, instance).result()

    def close(self) -> None:
        """Flush everything still queued, then stop the worker."""
        with self._ready:
            if self._closed:
                return
            self._closed = True
            self._ready.notify()
        self._worker.join()

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- worker side ------------------------------------------------------
    def _head_batch_size(self) -> int:
        """Queued items belonging to the oldest item's task."""
        if not self._queue:
            return 0
        head_task = self._queue[0][0]
        return sum(1 for item in self._queue if item[0] == head_task)

    def _should_flush(self) -> bool:
        if not self._queue:
            return False
        if self._closed:
            return True
        if self._head_batch_size() >= self.max_batch_size:
            return True
        oldest = self._queue[0][3]
        return perf_counter() - oldest >= self.max_wait_s

    def _take_batch(self) -> List[_Item]:
        """Pop up to ``max_batch_size`` queued items of the head task,
        preserving arrival order (other tasks stay queued)."""
        head_task = self._queue[0][0]
        batch: List[_Item] = []
        remaining: Deque[_Item] = deque()
        while self._queue:
            item = self._queue.popleft()
            if item[0] == head_task and len(batch) < self.max_batch_size:
                batch.append(item)
            else:
                remaining.append(item)
        self._queue = remaining
        return batch

    def _run(self) -> None:
        while True:
            with self._ready:
                while not self._should_flush():
                    if self._closed and not self._queue:
                        return
                    if self._queue:
                        oldest = self._queue[0][3]
                        waited = perf_counter() - oldest
                        self._ready.wait(
                            timeout=max(self.max_wait_s - waited, 0.001))
                    else:
                        self._ready.wait()
                if self._closed and not self._queue:
                    return
                batch = self._take_batch()
            self._flush(batch)

    def _flush(self, batch: List[_Item]) -> None:
        task = batch[0][0]
        instances = [item[1] for item in batch]
        registry = get_registry()
        registry.counter("serve.batches").inc()
        registry.histogram("serve.batch_size").observe(len(batch))
        flush_start = perf_counter()
        try:
            predictions = self.predictor.predict_batch(task, instances)
        except Exception as error:  # propagate to every waiting caller
            self._attribute_spans(batch, flush_start)
            for item in batch:
                item[2].set_exception(error)
            return
        self._attribute_spans(batch, flush_start)
        for item, prediction in zip(batch, predictions):
            item[2].set_result(prediction)

    @staticmethod
    def _attribute_spans(batch: List[_Item], flush_start: float) -> None:
        """Record queue-wait and batch-execution spans into every item's
        originating trace context (no-ops for untraced submitters)."""
        flush_end = perf_counter()
        for _, _, _, enqueued, snapshot in batch:
            snapshot.add_span("serve/queue", enqueued, flush_start)
            snapshot.add_span("serve/predict", flush_start, flush_end)
