"""Stdlib JSON-over-HTTP endpoint for the TUBE task predictor.

Routes:

- ``POST /v1/<task>`` — body ``{"instances": [payload, ...]}`` (or
  ``{"instance": {...}}``); each payload carries a ``Table.to_dict`` blob
  plus the task's fields.  Responds ``{"task": ..., "predictions": [...]}``.
- ``GET /healthz`` — liveness plus the served task list.
- ``GET /metrics`` — the ``repro.obs`` metrics registry and encode-cache
  counters as JSON; ``GET /metrics?format=prometheus`` — the same registry
  in Prometheus text exposition (``text/plain; version=0.0.4``).

Every ``/v1`` request runs under its own trace context: the response
carries an ``X-Request-Id`` header with the trace id, the completed trace
streams to the predictor's journal as an ``EVENT_TRACE`` record (spans:
``serve/decode`` → ``serve/wait`` with the batcher-attributed
``serve/queue`` / ``serve/predict`` children → ``serve/respond``), one
``EVENT_REQUEST`` journal event summarizes (task, status, latency,
trace id), and 500 bodies echo the trace id for correlation.

Requests are handled on :class:`ThreadingHTTPServer` threads but every
prediction funnels through a serializing tier: the single
:class:`~repro.serve.batcher.MicroBatcher` worker (``predictor=``), or the
content-routed lanes of a :class:`~repro.serve.fleet.PredictorFleet`
(``fleet=``, which adds typed 429/503 backpressure, per-worker cache
metrics in ``/metrics``, and a ``workers`` list in ``/healthz``).  Either
way concurrent clients get deterministic, data-race-free answers.
:class:`Client` boots a server on an ephemeral port inside the process —
the test and smoke harness.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.parse
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import (
    EVENT_REQUEST,
    NullRegistry,
    enable_metrics,
    format_prometheus,
    get_registry,
    start_trace,
    trace,
)
from repro.obs.prometheus import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from repro.serve.batcher import MicroBatcher
from repro.serve.fleet import FleetError, PredictorFleet
from repro.serve.predictor import Predictor

API_PREFIX = "/v1/"


class PredictionServer:
    """Own the HTTP server plus the tier feeding it predictions.

    Two backends share one HTTP surface:

    - ``predictor=`` — the single-worker tier: requests funnel through the
      :class:`MicroBatcher` into one :class:`Predictor`;
    - ``fleet=`` — the multi-worker tier: requests route by table-content
      key straight onto :class:`PredictorFleet` lanes (no micro-batcher —
      the fleet's bounded per-worker queues take its place), and typed
      backpressure surfaces as 429 (lane saturated, with ``Retry-After``)
      or 503 (fleet draining/stopped).
    """

    def __init__(self, predictor: Optional[Predictor] = None,
                 host: str = "127.0.0.1",
                 port: int = 0, max_batch_size: int = 8,
                 max_wait_ms: float = 5.0,
                 fleet: Optional[PredictorFleet] = None):
        if (predictor is None) == (fleet is None):
            raise ValueError("pass exactly one of predictor= or fleet=")
        self.fleet = fleet
        self.predictor = predictor if predictor is not None else fleet.template
        if isinstance(get_registry(), NullRegistry):
            # /metrics is part of the contract; make sure it records.
            enable_metrics()
        self.batcher = None
        if fleet is None:
            self.batcher = MicroBatcher(predictor,
                                        max_batch_size=max_batch_size,
                                        max_wait_ms=max_wait_ms)
        handler = _build_handler(self.predictor, self.batcher, fleet)
        self._http = ThreadingHTTPServer((host, port), handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._http.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        """Block and serve until :meth:`shutdown` (the CLI path)."""
        self._http.serve_forever()

    def start(self) -> "PredictionServer":
        """Serve on a background thread (the in-process / test path)."""
        self._thread = threading.Thread(target=self._http.serve_forever,
                                        daemon=True, name="repro-serve-http")
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop a background-threaded server (the :meth:`start` path)."""
        self._http.shutdown()
        self.close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def close(self) -> None:
        """Release the socket and drain the serving tier.  For the
        foreground :meth:`serve_forever` path, call this after the loop
        exits (e.g. on ``KeyboardInterrupt``) — ``shutdown()`` would
        deadlock there."""
        self._http.server_close()
        if self.batcher is not None:
            self.batcher.close()
        if self.fleet is not None:
            self.fleet.close()


def _build_handler(predictor: Predictor, batcher: Optional[MicroBatcher],
                   fleet: Optional[PredictorFleet] = None):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        # -- plumbing -----------------------------------------------------
        def log_message(self, format: str, *args: Any) -> None:
            pass  # metrics + journal carry the signal; stderr stays quiet

        def _respond(self, status: int, payload: Dict[str, Any],
                     trace_id: Optional[str] = None,
                     extra_headers: Optional[Dict[str, str]] = None) -> None:
            body = json.dumps(payload).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            if trace_id is not None:
                self.send_header("X-Request-Id", trace_id)
            for name, value in (extra_headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def _respond_text(self, status: int, text: str,
                          content_type: str) -> None:
            body = text.encode()
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        # -- routes -------------------------------------------------------
        def _cache_stats(self) -> Dict[str, Any]:
            """Fleet rollup when serving a fleet, else the single cache."""
            if fleet is not None:
                return fleet.cache_stats()
            return predictor.cache_stats()

        def do_GET(self) -> None:
            parsed = urllib.parse.urlsplit(self.path)
            if parsed.path == "/healthz":
                health: Dict[str, Any] = {"status": "ok",
                                          "tasks": predictor.tasks}
                if fleet is not None:
                    health["workers"] = fleet.worker_names
                self._respond(200, health)
            elif parsed.path == "/metrics":
                stats = self._cache_stats()
                query = urllib.parse.parse_qs(parsed.query)
                if query.get("format", [""])[0] == "prometheus":
                    registry = get_registry()
                    for key, value in stats.items():
                        if key == "per_worker":
                            for worker, worker_stats in value.items():
                                for wkey, wvalue in worker_stats.items():
                                    registry.gauge(
                                        f"serve.{worker}.cache.{wkey}"
                                    ).set(wvalue)
                            continue
                        registry.gauge(f"serve.encode_cache.{key}").set(value)
                    self._respond_text(200, format_prometheus(registry),
                                       PROMETHEUS_CONTENT_TYPE)
                    return
                self._respond(200, {
                    "metrics": get_registry().as_dict(),
                    "encode_cache": stats,
                })
            else:
                self._respond(404, {"error": f"unknown path {self.path}"})

        def do_POST(self) -> None:
            if not self.path.startswith(API_PREFIX):
                self._respond(404, {"error": f"unknown path {self.path}"})
                return
            task = self.path[len(API_PREFIX):].strip("/")
            with start_trace(f"serve/{task}",
                             journal=predictor.journal) as context:
                status, n_instances = self._predict_route(task,
                                                          context.trace_id)
            if predictor.journal is not None:
                predictor.journal.event(EVENT_REQUEST, task=task,
                                        status=status,
                                        seconds=context.wall_seconds,
                                        trace_id=context.trace_id,
                                        instances=n_instances)

        def _predict_route(self, task: str,
                           trace_id: str) -> Tuple[int, int]:
            """Serve one ``/v1/<task>`` request; returns (status, n)."""
            try:
                adapter = predictor.adapter_for(task)
            except KeyError:
                self._respond(404, {"error": f"unknown task {task!r}",
                                    "tasks": predictor.tasks}, trace_id)
                return 404, 0
            length = int(self.headers.get("Content-Length", 0))
            if fleet is not None:
                return self._predict_via_fleet(task, trace_id, length)
            try:
                with trace("serve/decode"):
                    request = json.loads(self.rfile.read(length) or b"{}")
                    payloads = self._payloads_of(request)
                    instances = [adapter.decode_instance(p)
                                 for p in payloads]
            except (ValueError, KeyError, TypeError) as error:
                self._respond(400, {"error": f"bad request: {error}"},
                              trace_id)
                return 400, 0
            with trace("serve/wait"):
                futures = [batcher.submit(task, instance)
                           for instance in instances]
                try:
                    predictions = [future.result() for future in futures]
                except Exception as error:  # any failure -> 500, keep serving
                    self._respond(500, {"error": f"prediction failed: {error}",
                                        "trace_id": trace_id}, trace_id)
                    return 500, len(instances)
            with trace("serve/respond"):
                self._respond(200, {
                    "task": task,
                    "predictions": [adapter.encode_prediction(p)
                                    for p in predictions],
                }, trace_id)
            return 200, len(instances)

        def _predict_via_fleet(self, task: str, trace_id: str,
                               length: int) -> Tuple[int, int]:
            """Content-routed prediction with typed 429/503 backpressure.

            Decoding happens on the routed worker's lane, so malformed
            payloads surface through the future — decode-class exceptions
            (ValueError/KeyError/TypeError) still map to 400.
            """
            try:
                with trace("serve/decode"):
                    request = json.loads(self.rfile.read(length) or b"{}")
                    payloads = self._payloads_of(request)
            except (ValueError, KeyError, TypeError) as error:
                self._respond(400, {"error": f"bad request: {error}"},
                              trace_id)
                return 400, 0
            try:
                with trace("serve/wait"):
                    predictions = fleet.predict_payloads(task, payloads)
            except FleetError as error:
                headers = ({"Retry-After": "1"}
                           if error.status == 429 else None)
                self._respond(error.status,
                              {"error": str(error),
                               "error_class": type(error).__name__},
                              trace_id, extra_headers=headers)
                return error.status, len(payloads)
            except (ValueError, KeyError, TypeError) as error:
                self._respond(400, {"error": f"bad request: {error}"},
                              trace_id)
                return 400, len(payloads)
            except Exception as error:  # any failure -> 500, keep serving
                self._respond(500, {"error": f"prediction failed: {error}",
                                    "trace_id": trace_id}, trace_id)
                return 500, len(payloads)
            with trace("serve/respond"):
                self._respond(200, {"task": task,
                                    "predictions": predictions}, trace_id)
            return 200, len(payloads)

        @staticmethod
        def _payloads_of(request: Dict[str, Any]) -> List[Dict[str, Any]]:
            if "instances" in request:
                payloads = request["instances"]
                if not isinstance(payloads, list):
                    raise ValueError("'instances' must be a list")
                return payloads
            if "instance" in request:
                return [request["instance"]]
            raise ValueError("body must carry 'instance' or 'instances'")

    return Handler


class Client:
    """In-process client: boots a :class:`PredictionServer` and speaks its
    JSON protocol over a real socket (loopback, ephemeral port)."""

    def __init__(self, predictor: Optional[Predictor] = None,
                 max_batch_size: int = 8,
                 max_wait_ms: float = 5.0,
                 fleet: Optional[PredictorFleet] = None):
        self.server = PredictionServer(predictor,
                                       max_batch_size=max_batch_size,
                                       max_wait_ms=max_wait_ms,
                                       fleet=fleet).start()

    # -- HTTP plumbing ----------------------------------------------------
    def _request_raw(self, path: str, body: Optional[Dict[str, Any]] = None
                     ) -> Tuple[int, bytes, Dict[str, str]]:
        url = self.server.url + path
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            url, data=data, headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request) as response:
                return (response.status, response.read(),
                        dict(response.headers))
        except urllib.error.HTTPError as error:
            return error.code, error.read() or b"{}", dict(error.headers)

    def _request(self, path: str, body: Optional[Dict[str, Any]] = None
                 ) -> Tuple[int, Dict[str, Any]]:
        status, payload, _ = self._request_raw(path, body)
        return status, json.loads(payload)

    # -- API --------------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        return self._request("/healthz")[1]

    def metrics(self) -> Dict[str, Any]:
        return self._request("/metrics")[1]

    def predict(self, task: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        status, response = self._request(API_PREFIX + task,
                                         {"instance": payload})
        if status != 200:
            raise RuntimeError(f"predict({task!r}) -> {status}: {response}")
        return response["predictions"][0]

    def predict_batch(self, task: str, payloads: List[Dict[str, Any]]
                      ) -> List[Dict[str, Any]]:
        status, response = self._request(API_PREFIX + task,
                                         {"instances": payloads})
        if status != 200:
            raise RuntimeError(f"predict_batch({task!r}) -> {status}: {response}")
        return response["predictions"]

    def post(self, task: str, body: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        """Raw POST for tests that assert on error statuses."""
        return self._request(API_PREFIX + task, body)

    def post_with_headers(self, task: str, body: Dict[str, Any]
                          ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """POST returning (status, body, response headers) — for asserting
        on ``X-Request-Id`` correlation."""
        status, payload, headers = self._request_raw(API_PREFIX + task, body)
        return status, json.loads(payload), headers

    def metrics_prometheus(self) -> Tuple[str, str]:
        """``GET /metrics?format=prometheus``; returns (text, content type)."""
        status, payload, headers = self._request_raw(
            "/metrics?format=prometheus")
        if status != 200:
            raise RuntimeError(f"metrics?format=prometheus -> {status}")
        return payload.decode(), headers.get("Content-Type", "")

    def close(self) -> None:
        self.server.shutdown()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
