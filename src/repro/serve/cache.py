"""The shared transformer-output cache behind :class:`repro.serve.Predictor`.

Serving traffic is dominated by repeated tables: every task head funnels
through :meth:`repro.core.model.TURLModel.encode`, so memoizing its
``(token_hidden, entity_hidden)`` output lets a repeated table skip the
whole Transformer stack.  :class:`EncodeCache` mirrors the keying approach
of :func:`repro.core.visibility.cached_visibility` — content bytes of the
structure-defining arrays — but digests them (a batch is orders of
magnitude larger than a structure triple) and guards every lookup with a
lock so HTTP handler threads and the micro-batcher worker can share one
instance.

The model only ever consults the cache when it is in eval mode with
gradient recording off (see ``TURLModel.encode``): cached tensors carry no
autograd tape, so replaying them into a training step would silently
detach gradients.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.nn import Tensor

#: Default maximum number of distinct (batch, flags) entries kept.
ENCODE_CACHE_SIZE = 256


class EncodeCache:
    """A thread-safe LRU over ``TURLModel.encode`` outputs.

    Keys are content digests of every array in the encoder's input batch
    (tokens, entities, structure, visibility — sorted by field name so dict
    ordering is irrelevant) plus the ``use_visibility`` flag.  Values are
    the ``(token_hidden, entity_hidden)`` pair with read-only ``data``
    buffers, so one cached activation can be shared across requests without
    any copy.
    """

    def __init__(self, capacity: int = ENCODE_CACHE_SIZE):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[bytes, Tuple[Tensor, Tensor]]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    # -- keying -----------------------------------------------------------
    @staticmethod
    def key_for(batch: Dict[str, np.ndarray], use_visibility: bool) -> bytes:
        """Content digest of an encoder input batch.

        Hashes field names, dtypes, shapes and raw bytes, so two batches
        collide only when they are element-for-element identical requests.
        """
        digest = hashlib.blake2b(digest_size=16)
        digest.update(b"visibility:on" if use_visibility else b"visibility:off")
        for name in sorted(batch):
            value = np.ascontiguousarray(batch[name])
            digest.update(name.encode())
            digest.update(str(value.dtype).encode())
            digest.update(str(value.shape).encode())
            digest.update(value.tobytes())
        return digest.digest()

    # -- lookup -----------------------------------------------------------
    def get(self, key: bytes) -> Optional[Tuple[Tensor, Tensor]]:
        with self._lock:
            cached = self._entries.get(key)
            if cached is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return cached

    def put(self, key: bytes, value: Tuple[Tensor, Tensor]) -> None:
        for tensor in value:
            tensor.data.setflags(write=False)
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    # -- introspection ----------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self._hits + self._misses
            return self._hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """Hit/miss counters, entry count, and the overall hit rate."""
        with self._lock:
            total = self._hits + self._misses
            return {
                "hits": self._hits,
                "misses": self._misses,
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hit_rate": self._hits / total if total else 0.0,
            }

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0

    @staticmethod
    def aggregate(stats: Sequence[Dict[str, float]]) -> Dict[str, float]:
        """Roll per-cache :meth:`stats` dicts up into fleet totals.

        Counters (hits, misses, entries, capacity) sum; ``hit_rate`` is
        recomputed from the summed counters.  Averaging the per-worker
        rates would be wrong — a worker answering 10x the traffic must
        weigh 10x in the fleet rate — which is exactly the aggregation bug
        this helper exists to prevent.
        """
        totals = {"hits": 0.0, "misses": 0.0, "entries": 0.0, "capacity": 0.0}
        for entry in stats:
            for field in totals:
                totals[field] += entry.get(field, 0.0)
        total = totals["hits"] + totals["misses"]
        totals["hit_rate"] = totals["hits"] / total if total else 0.0
        return totals
