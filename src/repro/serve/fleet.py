"""A multi-worker serving fleet with cache-aware request routing.

One :class:`~repro.serve.predictor.Predictor` bounds serving throughput in
two ways: every request funnels through one queue, and one encode cache of
capacity ``C`` thrashes as soon as live traffic touches more than ``C``
distinct tables.  The fleet fixes both with N workers that *partition the
table keyspace* instead of competing over it:

- each :class:`FleetWorker` owns a private :class:`Predictor` clone — own
  :class:`~repro.serve.cache.EncodeCache`, shared read-only weights (see
  :func:`clone_predictor`; pair with ``load_checkpoint(..., mmap=True)``
  for one on-disk weight copy across the whole fleet);
- the :class:`PredictorFleet` dispatcher routes every request by the
  blake2b content digest of its table payload over a consistent-hash
  :class:`~repro.serve.ring.HashRing`, so repeats of a table always hit
  the worker whose cache already holds it, and the fleet's *aggregate*
  cache capacity is ``N x C``;
- per-worker queues are bounded: a full queue raises
  :class:`FleetSaturated` (HTTP 429) instead of buffering unboundedly, and
  a draining/stopped fleet raises :class:`FleetUnavailable` (HTTP 503) —
  callers always get a typed answer, never a silent hang;
- :meth:`PredictorFleet.drain` parks intake, finishes every queued
  request (no lost futures), and makes weight swaps legal:
  :meth:`PredictorFleet.reload_state` rebinds the shared parameters in
  place, clears the now-stale encode caches, and :meth:`resume` reopens
  intake.

Metric names: per-worker caches report ``serve.worker<i>.cache.*``; the
fleet-wide rollup (counter-summed, *not* rate-averaged — see
:meth:`EncodeCache.aggregate`) keeps the historical
``serve.encode_cache.hit_rate`` gauge honest, and rejections count under
``serve.fleet.rejected.<class>``.
"""

from __future__ import annotations

import copy
import threading
from collections import deque
from concurrent.futures import Future
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs import RunJournal, get_registry
from repro.serve.adapters import Prediction
from repro.serve.cache import EncodeCache
from repro.serve.predictor import Predictor
from repro.serve.ring import DEFAULT_REPLICAS, HashRing, route_key_for

#: Default bound on each worker's queue before submissions get a 429.
DEFAULT_MAX_QUEUE = 64


class FleetError(RuntimeError):
    """Base class for typed fleet rejections; carries an HTTP status."""

    status = 500


class FleetSaturated(FleetError):
    """The routed worker's queue is full — back off and retry (429)."""

    status = 429


class FleetUnavailable(FleetError):
    """The fleet is draining or stopped, not accepting work (503)."""

    status = 503


def pin_eval(module: Any) -> None:
    """Permanently mark ``module`` (and children) as serving-only.

    Fleet workers run concurrently over shared submodules, and the heads'
    ``eval_mode`` guard restores ``training=True`` on exit *if the module
    was training* — a lost-update race when another worker is mid-predict.
    Pinning ``training=False`` everywhere makes every concurrent mode write
    idempotent (always ``False``), which is what makes shared-weight
    serving deterministic.  Only the trainer flips modules back.
    """
    for sub in module.modules():
        sub.training = False


def clone_predictor(template: Predictor, name: str,
                    cache_size: Optional[int] = None,
                    journal: Optional[RunJournal] = None) -> Predictor:
    """A worker-private :class:`Predictor` sharing ``template``'s weights.

    Each distinct model is shallow-copied (submodules and
    :class:`Parameter` objects shared — zero weight duplication) so the
    worker's ``encode_cache`` attribute doesn't fight the template's or the
    other workers'.  Adapters are shallow-cloned around the copied models;
    task resources (datasets, candidate generators) are shared read-only.
    Everything served is eval-pinned via :func:`pin_eval`, template
    included — a fleet's weights are serving-only until a drain + reload.
    """
    model_map: Dict[int, Any] = {}
    for model in template._distinct_models():
        clone = copy.copy(model)
        model_map[id(model)] = clone
    for adapter in template.adapters.values():
        pin_eval(adapter.head if hasattr(adapter.head, "modules")
                 else adapter.model)
    adapters = [adapter.clone_with_models(model_map)
                for adapter in template.adapters.values()]
    for adapter in adapters:
        pin_eval(adapter.head if hasattr(adapter.head, "modules")
                 else adapter.model)
    enable_cache = template.cache is not None
    if cache_size is None:
        cache_size = template.cache.capacity if enable_cache else 0
    return Predictor(adapters, cache_size=max(cache_size, 1),
                     enable_cache=enable_cache, journal=journal, name=name)


class _Work:
    """One queued request: a (mode, task, items) triple plus its future."""

    __slots__ = ("mode", "task", "items", "future")

    def __init__(self, mode: str, task: str, items: Sequence[Any]):
        self.mode = mode  # "instances" -> predict_batch, "payloads" -> JSON
        self.task = task
        self.items = list(items)
        self.future: "Future[List[Any]]" = Future()


class FleetWorker:
    """One serving lane: a bounded queue drained by a dedicated thread.

    The thread owns the worker's :class:`Predictor` exclusively, so each
    lane is internally race-free; cross-lane safety comes from shared
    state being read-only (weights) or locked (visibility cache).
    """

    def __init__(self, name: str, predictor: Predictor,
                 max_queue: int = DEFAULT_MAX_QUEUE):
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.name = name
        self.predictor = predictor
        self.max_queue = max_queue
        self._queue: "deque[_Work]" = deque()
        self._state = threading.Condition()
        self._accepting = True
        self._closed = False
        self._inflight = 0
        self._served = 0
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name=f"repro-fleet-{name}")
        self._thread.start()

    # -- intake --------------------------------------------------------
    def submit(self, mode: str, task: str,
               items: Sequence[Any]) -> "Future[List[Any]]":
        work = _Work(mode, task, items)
        with self._state:
            if self._closed or not self._accepting:
                raise FleetUnavailable(
                    f"{self.name} is not accepting requests (draining or "
                    "stopped)")
            if len(self._queue) >= self.max_queue:
                raise FleetSaturated(
                    f"{self.name} queue is full "
                    f"({self.max_queue} pending); retry later")
            self._queue.append(work)
            self._state.notify_all()
        get_registry().counter(f"serve.{self.name}.requests").inc(len(work.items))
        return work.future

    # -- lifecycle -----------------------------------------------------
    def pause(self) -> None:
        """Stop accepting new work; queued work still runs."""
        with self._state:
            self._accepting = False

    def resume(self) -> None:
        with self._state:
            if self._closed:
                raise FleetUnavailable(f"{self.name} is stopped")
            self._accepting = True

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Park intake and wait until every accepted request completed.

        Returns ``True`` once idle (``False`` on timeout).  No future is
        ever dropped: everything that :meth:`submit` accepted resolves.
        """
        with self._state:
            self._accepting = False
            return self._state.wait_for(
                lambda: not self._queue and self._inflight == 0,
                timeout=timeout)

    def close(self, timeout: Optional[float] = None) -> None:
        """Drain, then stop the lane thread."""
        self.drain(timeout=timeout)
        with self._state:
            self._closed = True
            self._state.notify_all()
        self._thread.join(timeout=timeout)

    # -- introspection -------------------------------------------------
    @property
    def queue_depth(self) -> int:
        with self._state:
            return len(self._queue) + self._inflight

    @property
    def served(self) -> int:
        """Instances answered so far (completed work only)."""
        with self._state:
            return self._served

    def cache_stats(self) -> Dict[str, float]:
        return self.predictor.cache_stats()

    # -- the lane thread -----------------------------------------------
    def _run(self) -> None:
        while True:
            with self._state:
                self._state.wait_for(lambda: self._queue or self._closed)
                if not self._queue:
                    return  # closed and empty
                work = self._queue.popleft()
                self._inflight += 1
            try:
                if work.mode == "payloads":
                    result = self.predictor.predict_payloads(work.task,
                                                             work.items)
                else:
                    result = self.predictor.predict_batch(work.task,
                                                          work.items)
            except BaseException as error:
                work.future.set_exception(error)
            else:
                work.future.set_result(result)
            finally:
                with self._state:
                    self._inflight -= 1
                    self._served += len(work.items)
                    self._state.notify_all()


class PredictorFleet:
    """Route requests over N :class:`FleetWorker` lanes by content key.

    Drop-in superset of the :class:`Predictor` serving surface
    (``predict`` / ``predict_batch`` / ``predict_payloads`` /
    ``cache_stats`` / ``tasks`` / ``adapter_for``), so the HTTP layer and
    the bench harness treat one worker and a fleet uniformly.
    """

    def __init__(self, template: Predictor, workers: int = 4,
                 max_queue: int = DEFAULT_MAX_QUEUE,
                 cache_size: Optional[int] = None,
                 replicas: int = DEFAULT_REPLICAS,
                 journal: Optional[RunJournal] = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.template = template
        self.journal = journal
        self.max_queue = max_queue
        self.cache_size = cache_size
        self._lock = threading.Lock()
        self._workers: Dict[str, FleetWorker] = {}
        self.ring = HashRing(replicas=replicas)
        self._draining = False
        self._next_index = 0
        for _ in range(workers):
            self.add_worker()

    # -- membership ----------------------------------------------------
    @property
    def worker_names(self) -> List[str]:
        with self._lock:
            return list(self._workers)

    def add_worker(self) -> str:
        """Clone a new lane onto the ring; moves ~1/N of the keyspace."""
        with self._lock:
            name = f"worker{self._next_index}"
            self._next_index += 1
            predictor = clone_predictor(self.template, name=name,
                                        cache_size=self.cache_size,
                                        journal=None)
            worker = FleetWorker(name, predictor, max_queue=self.max_queue)
            if self._draining:
                worker.pause()
            self._workers[name] = worker
            self.ring.add_worker(name)
            get_registry().gauge("serve.fleet.workers").set(len(self._workers))
        if self.journal is not None:
            self.journal.event("fleet_worker_added", worker=name,
                               workers=len(self._workers))
        return name

    def remove_worker(self, name: str) -> None:
        """Drain one lane off the ring; its keys fall to ring successors."""
        with self._lock:
            worker = self._workers.pop(name, None)
            if worker is None:
                raise KeyError(f"no such worker {name!r}")
            self.ring.remove_worker(name)
            get_registry().gauge("serve.fleet.workers").set(len(self._workers))
        worker.close()
        if self.journal is not None:
            self.journal.event("fleet_worker_removed", worker=name,
                               workers=len(self._workers))

    # -- Predictor-compatible introspection ----------------------------
    @property
    def tasks(self) -> List[str]:
        return self.template.tasks

    def adapter_for(self, task: str):
        return self.template.adapter_for(task)

    def cache_stats(self) -> Dict[str, Any]:
        """Per-worker cache stats plus the counter-summed fleet rollup.

        Also refreshes the gauges: ``serve.worker<i>.cache.hit_rate`` per
        lane and the fleet-wide ``serve.encode_cache.hit_rate`` (summed
        hits over summed lookups — a traffic-weighted rate, not an average
        of per-worker rates).
        """
        registry = get_registry()
        with self._lock:
            workers = dict(self._workers)
        per_worker: Dict[str, Dict[str, float]] = {}
        for name, worker in workers.items():
            stats = worker.cache_stats()
            per_worker[name] = stats
            if stats.get("enabled"):
                registry.gauge(f"serve.{name}.cache.hit_rate").set(
                    stats.get("hit_rate", 0.0))
        enabled = [s for s in per_worker.values() if s.get("enabled")]
        rollup = EncodeCache.aggregate(enabled)
        rollup["enabled"] = 1.0 if enabled else 0.0
        rollup["workers"] = float(len(per_worker))
        if enabled:
            registry.gauge("serve.encode_cache.hit_rate").set(
                rollup["hit_rate"])
        return {**rollup, "per_worker": per_worker}

    # -- routing -------------------------------------------------------
    def route(self, task: str, payload: Any) -> str:
        """Name of the worker owning this payload's content key."""
        return self.ring.route(route_key_for(payload, task=task))

    def _worker(self, name: str) -> FleetWorker:
        with self._lock:
            worker = self._workers.get(name)
        if worker is None:
            raise FleetUnavailable(f"worker {name!r} left the fleet")
        return worker

    def _submit(self, name: str, mode: str, task: str,
                items: Sequence[Any]) -> "Future[List[Any]]":
        try:
            return self._worker(name).submit(mode, task, items)
        except FleetSaturated:
            get_registry().counter("serve.fleet.rejected.saturated").inc()
            raise
        except FleetUnavailable:
            get_registry().counter("serve.fleet.rejected.unavailable").inc()
            raise

    def _grouped(self, task: str,
                 payloads: Sequence[Any]) -> List[Tuple[List[int], str]]:
        """Group request indices by routed worker, preserving order."""
        groups: Dict[str, List[int]] = {}
        for index, payload in enumerate(payloads):
            groups.setdefault(self.route(task, payload), []).append(index)
        return [(indices, name) for name, indices in groups.items()]

    # -- prediction ----------------------------------------------------
    def predict_payloads(self, task: str,
                         payloads: Sequence[Dict[str, Any]]
                         ) -> List[Dict[str, Any]]:
        """JSON payloads in, JSON predictions out — content-routed.

        Decoding, prediction and re-encoding all happen on the routed
        worker's lane, so the dispatcher thread never touches the model.
        """
        self.template.adapter_for(task)  # unknown task -> KeyError up front
        futures = []
        for indices, name in self._grouped(task, payloads):
            futures.append((indices, self._submit(
                name, "payloads", task, [payloads[i] for i in indices])))
        results: List[Optional[Dict[str, Any]]] = [None] * len(payloads)
        for indices, future in futures:
            for index, output in zip(indices, future.result()):
                results[index] = output
        return results  # type: ignore[return-value]

    def predict_batch(self, task: str,
                      instances: Sequence[Any]) -> List[Prediction]:
        """Instance-level twin of :meth:`Predictor.predict_batch`."""
        adapter = self.template.adapter_for(task)
        route_payloads = [adapter.encode_instance(instance)
                          for instance in instances]
        futures = []
        for indices, name in self._grouped(task, route_payloads):
            futures.append((indices, self._submit(
                name, "instances", task, [instances[i] for i in indices])))
        results: List[Optional[Prediction]] = [None] * len(instances)
        for indices, future in futures:
            for index, output in zip(indices, future.result()):
                results[index] = output
        return results  # type: ignore[return-value]

    def predict(self, task: str, instance: Any) -> Prediction:
        return self.predict_batch(task, [instance])[0]

    # -- drain / reload ------------------------------------------------
    def drain(self, timeout: Optional[float] = None) -> bool:
        """Park intake fleet-wide and wait for every lane to go idle."""
        with self._lock:
            self._draining = True
            workers = list(self._workers.values())
        for worker in workers:
            worker.pause()
        idle = all(worker.drain(timeout=timeout) for worker in workers)
        if self.journal is not None:
            self.journal.event("fleet_drained", idle=idle,
                               workers=len(workers))
        return idle

    def resume(self) -> None:
        """Reopen intake after a drain (and any reload)."""
        with self._lock:
            self._draining = False
            workers = list(self._workers.values())
        for worker in workers:
            worker.resume()
        if self.journal is not None:
            self.journal.event("fleet_resumed", workers=len(workers))

    def reload_state(self, state: Dict[str, Any], copy: bool = True) -> None:
        """Swap weights under drain; requires :meth:`drain` first.

        The workers' models share the template's :class:`Parameter`
        objects, so loading into the template retargets every lane at
        once.  Each worker's encode cache (and the template's) is cleared
        — cached activations are functions of the old weights.
        ``copy=False`` binds memory-mapped arrays zero-copy (pair with
        :func:`repro.nn.serialization.load_state` ``mmap=True``).
        """
        with self._lock:
            if not self._draining:
                raise FleetUnavailable(
                    "reload requires a drained fleet: call drain() first, "
                    "resume() after")
            workers = list(self._workers.values())
        for worker in workers:
            if not worker.drain(timeout=0):
                raise FleetUnavailable(
                    f"{worker.name} still has in-flight work; finish "
                    "drain() before reloading")
        for model in self.template._distinct_models():
            model.load_state_dict(state, copy=copy)
            pin_eval(model)
        for worker in workers:
            if worker.predictor.cache is not None:
                worker.predictor.cache.clear()
        if self.template.cache is not None:
            self.template.cache.clear()
        if self.journal is not None:
            self.journal.event("fleet_reloaded", parameters=len(state),
                               zero_copy=not copy)

    def reload_checkpoint_weights(self, path: str, mmap: bool = True) -> None:
        """Drain-time weight swap straight from a ``model.npz`` archive."""
        from repro.nn.serialization import load_state

        state = load_state(path, mmap=mmap)
        self.reload_state(state, copy=not mmap)

    # -- shutdown ------------------------------------------------------
    def close(self, timeout: Optional[float] = None) -> None:
        """Drain and stop every lane."""
        with self._lock:
            self._draining = True
            workers = list(self._workers.values())
        for worker in workers:
            worker.pause()
        for worker in workers:
            worker.close(timeout=timeout)

    def __enter__(self) -> "PredictorFleet":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
