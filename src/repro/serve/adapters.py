"""Uniform task adapters: one ``predict_one`` / ``predict_batch`` surface.

Each TURL task head grew its own entry point (``predict`` with a dataset,
``rank`` with a candidate list, ``rank`` with none) — fine for scripts,
hostile to a server that must dispatch any task behind one door.  A
:class:`TaskAdapter` wraps one fine-tuned head together with whatever task
resources its entry point needs (label vocabulary, candidate generator)
and exposes:

- ``predict_batch(instances) -> List[Prediction]`` — delegates to the
  head's canonical entry point, so adapter outputs are bit-identical to
  calling the head directly;
- ``predict_one(instance) -> Prediction`` — the single-instance special
  case;
- ``decode_instance(payload)`` / ``encode_prediction(prediction)`` — the
  JSON codecs the HTTP layer uses, built on ``Table.from_dict``.

Adapters are the canonical programmatic serving API; the per-module entry
points remain for training-time evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence

from repro.data.table import Table
from repro.tasks.cell_filling import (
    CellFillingCandidates,
    FillingInstance,
    TURLCellFiller,
)
from repro.tasks.column_type import ColumnInstance, ColumnTypeDataset, TURLColumnTypeAnnotator
from repro.tasks.entity_linking import LinkingInstance, TURLEntityLinker
from repro.tasks.relation_extraction import (
    RelationDataset,
    RelationInstance,
    TURLRelationExtractor,
)
from repro.tasks.row_population import (
    PopulationCandidateGenerator,
    PopulationInstance,
    TURLRowPopulator,
)
from repro.tasks.schema_augmentation import SchemaInstance, TURLSchemaAugmenter


@dataclass
class Prediction:
    """One task output: the task name plus its JSON-safe payload."""

    task: str
    output: Any

    def to_dict(self) -> Dict[str, Any]:
        return {"task": self.task, "output": self.output}


class TaskAdapter:
    """Base adapter: a named task with a uniform prediction surface.

    Subclasses set :attr:`task_name`, implement :meth:`predict_batch` and
    :meth:`decode_instance`; everything else derives from those.
    """

    task_name: str = ""

    @property
    def model(self):
        """The underlying :class:`TURLModel` (for encode-cache install)."""
        return self.head.model

    def predict_batch(self, instances: Sequence[Any]) -> List[Prediction]:
        raise NotImplementedError

    def predict_one(self, instance: Any) -> Prediction:
        return self.predict_batch([instance])[0]

    def decode_instance(self, payload: Dict[str, Any]) -> Any:
        """Build a task instance from a JSON payload (``table`` is a
        ``Table.to_dict`` blob)."""
        raise NotImplementedError

    def encode_instance(self, instance: Any) -> Dict[str, Any]:
        """Inverse of :meth:`decode_instance` — a JSON-safe payload."""
        raise NotImplementedError

    def encode_prediction(self, prediction: Prediction) -> Dict[str, Any]:
        return prediction.to_dict()

    def clone_with_models(self, model_map: Dict[int, Any]) -> "TaskAdapter":
        """Shallow-clone this adapter, rebinding its head's model.

        ``model_map`` maps ``id(original_model) -> replacement_model``.  The
        clone shares every task resource (datasets, candidate generators —
        all read-only at serving time) but gets its own head object bound to
        the replacement model, so fleet workers can install per-worker
        encode caches without fighting over one model's ``encode_cache``
        attribute.  Weights are untouched: the replacement is itself a
        shallow copy sharing the original's parameters.
        """
        import copy

        clone = copy.copy(self)
        head = copy.copy(self.head)
        replacement = model_map.get(id(self.head.model))
        if replacement is not None:
            head.model = replacement
        clone.head = head
        return clone


class EntityLinkingAdapter(TaskAdapter):
    """Disambiguate one mention against its candidate entity set."""

    task_name = "entity_linking"

    def __init__(self, head: TURLEntityLinker):
        self.head = head

    def predict_batch(self, instances: Sequence[LinkingInstance]) -> List[Prediction]:
        linked = self.head.predict(instances)
        return [Prediction(self.task_name, entity_id) for entity_id in linked]

    def decode_instance(self, payload: Dict[str, Any]) -> LinkingInstance:
        return LinkingInstance(
            table=Table.from_dict(payload["table"]),
            row=int(payload["row"]),
            col=int(payload["col"]),
            mention=payload.get("mention", ""),
            true_id=payload.get("true_id", ""),
            candidates=list(payload.get("candidates", [])),
            candidate_scores=[float(s) for s in payload.get("candidate_scores", [])],
        )

    def encode_instance(self, instance: LinkingInstance) -> Dict[str, Any]:
        return {
            "table": instance.table.to_dict(),
            "row": instance.row,
            "col": instance.col,
            "mention": instance.mention,
            "true_id": instance.true_id,
            "candidates": list(instance.candidates),
            "candidate_scores": list(instance.candidate_scores),
        }


class ColumnTypeAdapter(TaskAdapter):
    """Multi-label column typing over the fine-tuned type inventory."""

    task_name = "column_type"

    def __init__(self, head: TURLColumnTypeAnnotator, dataset: ColumnTypeDataset,
                 threshold: float = 0.5):
        self.head = head
        self.dataset = dataset
        self.threshold = threshold

    def predict_batch(self, instances: Sequence[ColumnInstance]) -> List[Prediction]:
        predicted = self.head.predict(instances, self.dataset,
                                      threshold=self.threshold)
        return [Prediction(self.task_name, sorted(types)) for types in predicted]

    def decode_instance(self, payload: Dict[str, Any]) -> ColumnInstance:
        return ColumnInstance(
            table=Table.from_dict(payload["table"]),
            col=int(payload["col"]),
            types=set(payload.get("types", [])),
        )

    def encode_instance(self, instance: ColumnInstance) -> Dict[str, Any]:
        return {
            "table": instance.table.to_dict(),
            "col": instance.col,
            "types": sorted(instance.types),
        }


class RelationExtractionAdapter(TaskAdapter):
    """Multi-label relation typing of a subject–object column pair."""

    task_name = "relation_extraction"

    def __init__(self, head: TURLRelationExtractor, dataset: RelationDataset,
                 threshold: float = 0.5):
        self.head = head
        self.dataset = dataset
        self.threshold = threshold

    def predict_batch(self, instances: Sequence[RelationInstance]) -> List[Prediction]:
        predicted = self.head.predict(instances, self.dataset,
                                      threshold=self.threshold)
        return [Prediction(self.task_name, sorted(relations))
                for relations in predicted]

    def decode_instance(self, payload: Dict[str, Any]) -> RelationInstance:
        return RelationInstance(
            table=Table.from_dict(payload["table"]),
            subject_col=int(payload["subject_col"]),
            object_col=int(payload["object_col"]),
            relations=set(payload.get("relations", [])),
        )

    def encode_instance(self, instance: RelationInstance) -> Dict[str, Any]:
        return {
            "table": instance.table.to_dict(),
            "subject_col": instance.subject_col,
            "object_col": instance.object_col,
            "relations": sorted(instance.relations),
        }


class RowPopulationAdapter(TaskAdapter):
    """Rank candidate subject entities to extend a partial table."""

    task_name = "row_population"

    def __init__(self, head: TURLRowPopulator,
                 generator: PopulationCandidateGenerator):
        self.head = head
        self.generator = generator

    def predict_batch(self, instances: Sequence[PopulationInstance]) -> List[Prediction]:
        return [Prediction(self.task_name,
                           self.head.rank(instance,
                                          self.generator.candidates_for(instance)))
                for instance in instances]

    def decode_instance(self, payload: Dict[str, Any]) -> PopulationInstance:
        return PopulationInstance(
            table=Table.from_dict(payload["table"]),
            seed_entities=list(payload.get("seed_entities", [])),
            target_entities=set(payload.get("target_entities", [])),
        )

    def encode_instance(self, instance: PopulationInstance) -> Dict[str, Any]:
        return {
            "table": instance.table.to_dict(),
            "seed_entities": list(instance.seed_entities),
            "target_entities": sorted(instance.target_entities),
        }


class CellFillingAdapter(TaskAdapter):
    """Rank candidate object entities for one empty cell."""

    task_name = "cell_filling"

    def __init__(self, head: TURLCellFiller,
                 candidate_finder: CellFillingCandidates):
        self.head = head
        self.candidate_finder = candidate_finder

    def predict_batch(self, instances: Sequence[FillingInstance]) -> List[Prediction]:
        predictions = []
        for instance in instances:
            candidates = [entity_id for entity_id, _ in
                          self.candidate_finder.candidates_for(
                              instance.subject_id, instance.object_header)]
            predictions.append(Prediction(self.task_name,
                                          self.head.rank(instance, candidates)))
        return predictions

    def decode_instance(self, payload: Dict[str, Any]) -> FillingInstance:
        return FillingInstance(
            table=Table.from_dict(payload["table"]),
            subject_id=payload["subject_id"],
            subject_mention=payload.get("subject_mention", ""),
            object_header=payload["object_header"],
            true_object=payload.get("true_object", ""),
        )

    def encode_instance(self, instance: FillingInstance) -> Dict[str, Any]:
        return {
            "table": instance.table.to_dict(),
            "subject_id": instance.subject_id,
            "subject_mention": instance.subject_mention,
            "object_header": instance.object_header,
            "true_object": instance.true_object,
        }


class SchemaAugmentationAdapter(TaskAdapter):
    """Rank vocabulary headers to extend a partial schema."""

    task_name = "schema_augmentation"

    def __init__(self, head: TURLSchemaAugmenter):
        self.head = head

    def predict_batch(self, instances: Sequence[SchemaInstance]) -> List[Prediction]:
        return [Prediction(self.task_name, self.head.rank(instance))
                for instance in instances]

    def decode_instance(self, payload: Dict[str, Any]) -> SchemaInstance:
        return SchemaInstance(
            table=Table.from_dict(payload["table"]),
            seed_headers=list(payload.get("seed_headers", [])),
            target_headers=set(payload.get("target_headers", [])),
        )

    def encode_instance(self, instance: SchemaInstance) -> Dict[str, Any]:
        return {
            "table": instance.table.to_dict(),
            "seed_headers": list(instance.seed_headers),
            "target_headers": sorted(instance.target_headers),
        }


def adapters_by_task(adapters: Sequence[TaskAdapter]) -> Dict[str, TaskAdapter]:
    """Index adapters by task name, rejecting duplicates."""
    by_task: Dict[str, TaskAdapter] = {}
    for adapter in adapters:
        if not adapter.task_name:
            raise ValueError(f"{type(adapter).__name__} has no task_name")
        if adapter.task_name in by_task:
            raise ValueError(f"duplicate adapter for task {adapter.task_name!r}")
        by_task[adapter.task_name] = adapter
    return by_task
