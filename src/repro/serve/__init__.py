"""Dependency-free model serving for the six TUBE tasks.

``repro.serve`` turns the per-task entry points (``predict`` / ``rank``)
into one uniform, instrumented surface:

- :mod:`repro.serve.adapters` — :class:`TaskAdapter` per task with
  ``predict_one`` / ``predict_batch`` and JSON codecs; adapter outputs are
  bit-identical to calling the wrapped head directly;
- :mod:`repro.serve.cache` — :class:`EncodeCache`, a thread-safe LRU over
  ``TURLModel.encode`` outputs keyed on batch content, so repeated tables
  skip the Transformer;
- :mod:`repro.serve.predictor` — the :class:`Predictor` facade: adapter
  dispatch, shared cache install, ``repro.obs`` metrics and journal;
- :mod:`repro.serve.batcher` — :class:`MicroBatcher`: concurrent requests
  queue up and flush as per-task batches through one worker thread;
- :mod:`repro.serve.http` — a stdlib ``http.server`` JSON endpoint
  (``POST /v1/<task>``, ``GET /healthz``, ``GET /metrics``) plus the
  in-process :class:`Client`;
- :mod:`repro.serve.ring` — :class:`HashRing`: consistent hashing with
  virtual nodes, routing table-content digests to workers;
- :mod:`repro.serve.fleet` — :class:`PredictorFleet`: N worker lanes with
  private encode caches behind content-keyed routing, bounded queues with
  typed 429/503 backpressure, and drain/reload for weight swaps;
- :mod:`repro.serve.bootstrap` — build all six heads + resources from
  pipeline artifacts (the ``repro.cli serve`` / smoke-test recipe), for a
  single predictor or a fleet.

Usage::

    from repro.serve import Client, build_serving_bundle

    bundle = build_serving_bundle(model, linearizer, kb, splits)
    with Client(bundle.predictor) as client:
        client.predict("column_type", payload)
        client.metrics()["encode_cache"]
"""

from repro.serve.adapters import (
    CellFillingAdapter,
    ColumnTypeAdapter,
    EntityLinkingAdapter,
    Prediction,
    RelationExtractionAdapter,
    RowPopulationAdapter,
    SchemaAugmentationAdapter,
    TaskAdapter,
    adapters_by_task,
)
from repro.serve.batcher import MicroBatcher
from repro.serve.bootstrap import ServingBundle, build_serving_bundle, build_serving_fleet
from repro.serve.cache import ENCODE_CACHE_SIZE, EncodeCache
from repro.serve.fleet import (
    DEFAULT_MAX_QUEUE,
    FleetError,
    FleetSaturated,
    FleetUnavailable,
    FleetWorker,
    PredictorFleet,
    clone_predictor,
    pin_eval,
)
from repro.serve.http import Client, PredictionServer
from repro.serve.predictor import Predictor
from repro.serve.ring import DEFAULT_REPLICAS, HashRing, route_key_for

__all__ = [
    "TaskAdapter",
    "Prediction",
    "EntityLinkingAdapter",
    "ColumnTypeAdapter",
    "RelationExtractionAdapter",
    "RowPopulationAdapter",
    "CellFillingAdapter",
    "SchemaAugmentationAdapter",
    "adapters_by_task",
    "EncodeCache",
    "ENCODE_CACHE_SIZE",
    "Predictor",
    "MicroBatcher",
    "PredictionServer",
    "Client",
    "ServingBundle",
    "build_serving_bundle",
    "build_serving_fleet",
    "HashRing",
    "route_key_for",
    "DEFAULT_REPLICAS",
    "PredictorFleet",
    "FleetWorker",
    "FleetError",
    "FleetSaturated",
    "FleetUnavailable",
    "DEFAULT_MAX_QUEUE",
    "clone_predictor",
    "pin_eval",
]
