"""Attention extraction and text rendering.

The encoder's attention layers are re-run functionally on a table to obtain
per-head attention weight matrices, honoring the visibility mask — useful
for checking that e.g. a masked award-winner cell attends to its ceremony
and film neighbors rather than unrelated cells.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.batching import collate
from repro.core.linearize import Linearizer, TableInstance
from repro.core.model import TURLModel
from repro.data.table import Table
from repro.nn import Tensor, eval_mode, no_grad
from repro.nn.attention import MASKED_LOGIT


def _layer_attention(model: TURLModel, layer_index: int, hidden: Tensor,
                     visibility: np.ndarray) -> np.ndarray:
    """(heads, L, L) softmax attention weights of one layer."""
    attention = model.encoder.blocks[layer_index].attention
    batch, length, _ = hidden.shape
    q = attention._split_heads(attention.query(hidden), batch, length).data
    k = attention._split_heads(attention.key(hidden), batch, length).data
    logits = (q @ np.swapaxes(k, -1, -2)) / np.sqrt(attention.head_dim)
    mask = visibility[:, None, :, :]
    logits = np.where(mask, logits, logits + MASKED_LOGIT)
    logits -= logits.max(axis=-1, keepdims=True)
    weights = np.exp(logits)
    weights /= weights.sum(axis=-1, keepdims=True)
    return weights[0]


def attention_map(model: TURLModel, linearizer: Linearizer, table: Table,
                  layer: int = 0) -> Tuple[np.ndarray, TableInstance]:
    """Attention weights ``(heads, L, L)`` of ``layer`` for ``table``.

    Also returns the :class:`TableInstance` so callers can label positions.
    """
    if not 0 <= layer < len(model.encoder.blocks):
        raise IndexError(f"layer {layer} out of range")
    instance = linearizer.encode(table)
    batch = collate([instance])
    with eval_mode(model), no_grad():
        hidden = model.embedding(batch)
        visibility = batch["visibility"]
        for i in range(layer):
            hidden = model.encoder.blocks[i](hidden, visibility)
        weights = _layer_attention(model, layer, hidden, visibility)
    return weights, instance


def element_labels(instance: TableInstance, linearizer: Linearizer) -> List[str]:
    """Short human-readable labels for every sequence position."""
    labels = []
    for token_id in instance.token_ids:
        labels.append(linearizer.tokenizer.vocab.token_of(int(token_id)))
    for i in range(instance.n_entities):
        row, col = instance.entity_row[i], instance.entity_col[i]
        if row < 0:
            labels.append("[topic]")
        else:
            labels.append(f"[e r{row}c{col}]")
    return labels


def render_attention(weights: np.ndarray, labels: List[str],
                     query: int, head: int = 0, top_k: int = 8) -> str:
    """Text rendering of one query position's strongest attention targets."""
    row = weights[head, query]
    order = np.argsort(-row)[:top_k]
    lines = [f"query {query} ({labels[query]}), head {head}:"]
    for position in order:
        weight = row[int(position)]
        bar = "#" * int(round(weight * 40))
        lines.append(f"  {labels[int(position)]:>14s} {weight:6.3f} {bar}")
    return "\n".join(lines)
