"""Analysis and introspection tools.

Utilities for understanding what a pre-trained model learned:

- :mod:`repro.analysis.attention` — extract and render per-head attention
  distributions for a table, visibility-mask aware;
- :mod:`repro.analysis.embeddings` — entity-embedding space diagnostics:
  nearest neighbors, type clustering quality, relation offset consistency;
- :mod:`repro.analysis.corpus_profile` — corpus composition reports (genre
  mix, entity frequency curves, link density).
"""

from repro.analysis.attention import attention_map, render_attention
from repro.analysis.embeddings import (
    entity_neighbors,
    relation_offset_consistency,
    type_clustering_score,
)
from repro.analysis.corpus_profile import profile_corpus, render_profile
from repro.analysis.errors import (
    linking_error_breakdown,
    per_genre_breakdown,
    render_genre_breakdown,
)

__all__ = [
    "linking_error_breakdown",
    "per_genre_breakdown",
    "render_genre_breakdown",
    "attention_map",
    "render_attention",
    "entity_neighbors",
    "type_clustering_score",
    "relation_offset_consistency",
    "profile_corpus",
    "render_profile",
]
