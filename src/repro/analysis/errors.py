"""Task error analysis.

Helpers for understanding *where* a model fails rather than just how often:

- :func:`linking_error_breakdown` — entity-linking mistakes categorized as
  candidate-generation misses vs disambiguation errors, with confusion
  pairs (what the model picked instead of what);
- :func:`per_genre_breakdown` — any per-instance metric aggregated by table
  genre (section title), the axis along which synthetic-corpus performance
  actually varies.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.kb.knowledge_base import KnowledgeBase
from repro.tasks.entity_linking import LinkingInstance


@dataclass
class LinkingErrorReport:
    """Categorized entity-linking outcomes."""

    n_instances: int
    correct: int
    no_candidates: int
    truth_missing_from_candidates: int
    disambiguation_errors: int
    confusion_pairs: List[Tuple[str, str, int]] = field(default_factory=list)

    @property
    def disambiguation_accuracy(self) -> float:
        """Accuracy among instances whose truth survived candidate
        generation (the paper's 89.62 % headline on WikiGS)."""
        solvable = self.n_instances - self.no_candidates \
            - self.truth_missing_from_candidates
        return self.correct / solvable if solvable else 0.0

    def render(self, kb: Optional[KnowledgeBase] = None, top: int = 5) -> str:
        def name(entity_id: str) -> str:
            if kb is not None and entity_id in kb:
                return kb.get(entity_id).name
            return entity_id

        lines = [
            f"instances                 : {self.n_instances}",
            f"correct                   : {self.correct}",
            f"no candidates             : {self.no_candidates}",
            f"truth missing (gen. miss) : {self.truth_missing_from_candidates}",
            f"disambiguation errors     : {self.disambiguation_errors}",
            f"disambiguation accuracy   : {self.disambiguation_accuracy:.4f}",
        ]
        if self.confusion_pairs:
            lines.append("top confusions (truth -> predicted):")
            for truth, predicted, count in self.confusion_pairs[:top]:
                lines.append(f"  {name(truth)} -> {name(predicted)}  x{count}")
        return "\n".join(lines)


def linking_error_breakdown(predictions: Sequence[Optional[str]],
                            instances: Sequence[LinkingInstance]) -> LinkingErrorReport:
    """Categorize each prediction outcome."""
    if len(predictions) != len(instances):
        raise ValueError("predictions and instances must align")
    correct = no_candidates = missing = errors = 0
    confusions: Counter = Counter()
    for predicted, instance in zip(predictions, instances):
        if not instance.candidates:
            no_candidates += 1
            continue
        if not instance.truth_in_candidates:
            missing += 1
            continue
        if predicted == instance.true_id:
            correct += 1
        else:
            errors += 1
            if predicted is not None:
                confusions[(instance.true_id, predicted)] += 1
    pairs = [(t, p, c) for (t, p), c in confusions.most_common()]
    return LinkingErrorReport(
        n_instances=len(instances),
        correct=correct,
        no_candidates=no_candidates,
        truth_missing_from_candidates=missing,
        disambiguation_errors=errors,
        confusion_pairs=pairs,
    )


def per_genre_breakdown(instances: Sequence, scores: Sequence[float],
                        genre_of: Callable = None) -> Dict[str, Tuple[float, int]]:
    """Aggregate per-instance scores by table genre.

    ``genre_of`` extracts the genre from an instance; by default the
    instance is expected to expose ``.table.section_title``.  Returns
    ``genre -> (mean score, count)``.
    """
    if len(instances) != len(scores):
        raise ValueError("instances and scores must align")
    if genre_of is None:
        def genre_of(instance):
            return instance.table.section_title

    buckets: Dict[str, List[float]] = defaultdict(list)
    for instance, score in zip(instances, scores):
        buckets[genre_of(instance)].append(score)
    return {genre: (sum(values) / len(values), len(values))
            for genre, values in sorted(buckets.items())}


def render_genre_breakdown(breakdown: Dict[str, Tuple[float, int]]) -> str:
    lines = [f"{'genre':24s}{'mean':>8s}{'n':>6s}"]
    for genre, (mean, count) in sorted(breakdown.items(), key=lambda kv: kv[1][0]):
        lines.append(f"{genre or '(none)':24s}{mean:8.3f}{count:6d}")
    return "\n".join(lines)
