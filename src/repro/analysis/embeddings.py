"""Entity-embedding space diagnostics.

Three probes of what MER pre-training wrote into the entity table:

- :func:`entity_neighbors` — nearest neighbors by cosine, for qualitative
  inspection ("who is closest to this club?");
- :func:`type_clustering_score` — a silhouette-style measure of how well
  entity types separate in embedding space (higher = cleaner clusters);
- :func:`relation_offset_consistency` — word2vec-style relational structure:
  how parallel are the offsets ``object - subject`` across pairs of the same
  relation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.model import TURLModel
from repro.kb.knowledge_base import KnowledgeBase
from repro.text.vocab import SPECIAL_TOKENS, Vocabulary

_FIRST_REAL_ID = len(SPECIAL_TOKENS)


def _normalized_table(model: TURLModel) -> np.ndarray:
    table = model.embedding.entity.weight.data
    norms = np.linalg.norm(table, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return table / norms


def entity_neighbors(model: TURLModel, entity_vocab: Vocabulary,
                     entity_id: str, k: int = 5) -> List[Tuple[str, float]]:
    """Top-``k`` nearest entities by cosine similarity (excluding self)."""
    index = entity_vocab.id_of(entity_id)
    if index < _FIRST_REAL_ID:
        return []
    table = _normalized_table(model)
    scores = table @ table[index]
    order = np.argsort(-scores)
    results = []
    for candidate in order:
        candidate = int(candidate)
        if candidate == index or candidate < _FIRST_REAL_ID:
            continue
        results.append((entity_vocab.token_of(candidate), float(scores[candidate])))
        if len(results) == k:
            break
    return results


def type_clustering_score(model: TURLModel, entity_vocab: Vocabulary,
                          kb: KnowledgeBase, type_names: Sequence[str],
                          max_per_type: int = 60, seed: int = 0) -> float:
    """Mean (intra-type cosine − inter-type cosine); positive = types cluster.

    A crude but monotone analogue of the silhouette coefficient that is
    cheap enough to run inside tests.
    """
    rng = np.random.default_rng(seed)
    table = _normalized_table(model)
    groups: Dict[str, np.ndarray] = {}
    for type_name in type_names:
        ids = [entity_vocab.id_of(e) for e in kb.entities_of_type(type_name)]
        ids = [i for i in ids if i >= _FIRST_REAL_ID]
        if len(ids) < 3:
            continue
        if len(ids) > max_per_type:
            chosen = rng.choice(len(ids), size=max_per_type, replace=False)
            ids = [ids[int(i)] for i in chosen]
        groups[type_name] = table[np.asarray(ids)]
    if len(groups) < 2:
        return 0.0

    def mean_cosine(a: np.ndarray, b: np.ndarray, same: bool) -> float:
        sims = a @ b.T
        if same:
            n = len(a)
            mask = ~np.eye(n, dtype=bool)
            return float(sims[mask].mean())
        return float(sims.mean())

    names = sorted(groups)
    intra = np.mean([mean_cosine(groups[n], groups[n], True) for n in names])
    inter_values = []
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            inter_values.append(mean_cosine(groups[a], groups[b], False))
    return float(intra - np.mean(inter_values))


def relation_offset_consistency(model: TURLModel, entity_vocab: Vocabulary,
                                kb: KnowledgeBase, relation: str,
                                max_pairs: int = 100, seed: int = 0) -> float:
    """Mean pairwise cosine between ``object − subject`` offsets of a
    relation's fact pairs; near 1 would indicate word2vec-like parallel
    structure, near 0 none."""
    rng = np.random.default_rng(seed)
    table = model.embedding.entity.weight.data
    offsets = []
    facts = kb.facts_of_relation(relation)
    if len(facts) > max_pairs:
        chosen = rng.choice(len(facts), size=max_pairs, replace=False)
        facts = [facts[int(i)] for i in chosen]
    for fact in facts:
        s = entity_vocab.id_of(fact.subject)
        o = entity_vocab.id_of(fact.object)
        if s < _FIRST_REAL_ID or o < _FIRST_REAL_ID:
            continue
        offset = table[o] - table[s]
        norm = np.linalg.norm(offset)
        if norm > 0:
            offsets.append(offset / norm)
    if len(offsets) < 2:
        return 0.0
    matrix = np.stack(offsets)
    sims = matrix @ matrix.T
    mask = ~np.eye(len(matrix), dtype=bool)
    return float(sims[mask].mean())
