"""Corpus composition profiling.

Answers "what is actually in this corpus?": genre mix (by section title),
entity-frequency curve, link density, header inventory — the checks one
runs before trusting any benchmark number built on the corpus.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.data.corpus import TableCorpus


@dataclass
class CorpusProfile:
    n_tables: int
    genre_counts: Dict[str, int]
    n_distinct_entities: int
    entity_frequency_quantiles: Dict[str, float]
    link_density: float
    header_counts: Dict[str, int]
    rows_per_table_mean: float

    def top_headers(self, k: int = 10) -> List[str]:
        return [h for h, _ in Counter(self.header_counts).most_common(k)]


def profile_corpus(corpus: TableCorpus) -> CorpusProfile:
    """Compute a :class:`CorpusProfile` for ``corpus``."""
    genre = Counter(table.section_title for table in corpus)
    entity_counts = corpus.entity_counts()
    frequencies = np.asarray(sorted(entity_counts.values())) if entity_counts else np.zeros(1)

    linked = total = 0
    rows = []
    for table in corpus:
        rows.append(table.n_rows)
        for _, _, cell in table.all_entity_cells():
            total += 1
            linked += cell.is_linked

    return CorpusProfile(
        n_tables=len(corpus),
        genre_counts=dict(genre),
        n_distinct_entities=len(entity_counts),
        entity_frequency_quantiles={
            "p50": float(np.quantile(frequencies, 0.5)),
            "p90": float(np.quantile(frequencies, 0.9)),
            "max": float(frequencies.max()),
        },
        link_density=linked / total if total else 0.0,
        header_counts=dict(corpus.header_counts()),
        rows_per_table_mean=float(np.mean(rows)) if rows else 0.0,
    )


def render_profile(profile: CorpusProfile) -> str:
    lines = [
        f"tables            : {profile.n_tables}",
        f"rows per table    : {profile.rows_per_table_mean:.1f} (mean)",
        f"distinct entities : {profile.n_distinct_entities}",
        f"entity frequency  : p50={profile.entity_frequency_quantiles['p50']:.0f} "
        f"p90={profile.entity_frequency_quantiles['p90']:.0f} "
        f"max={profile.entity_frequency_quantiles['max']:.0f}",
        f"link density      : {profile.link_density:.2f}",
        "genres:",
    ]
    for genre, count in sorted(profile.genre_counts.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {genre or '(none)':24s} {count}")
    lines.append(f"top headers       : {', '.join(profile.top_headers(8))}")
    return "\n".join(lines)
