"""Cell filling value-ranking baselines (paper Section 6.6, Table 9).

All three rank a candidate entity by the similarity between the query header
``h`` and the candidate's *source* headers ``h'`` (Eqn. 15,
``P(e|h) = MAX sim(h', h)``), differing only in ``sim``:

- **Exact** — 1 if the headers match exactly, else 0;
- **H2H** — ``P(h'|h)`` from corpus header co-occurrence (Eqn. 14);
- **H2V** — cosine similarity of header embeddings trained with Word2Vec
  over per-table header sequences (the Table2Vec-style variant).
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.data.corpus import TableCorpus
from repro.retrieval.word2vec import Word2Vec, Word2VecConfig
from repro.tasks.cell_filling import CellFillingCandidates, FillingInstance, HeaderStatistics
from repro.tasks.metrics import TaskMetrics, precision_at_k
from repro.tasks.schema_augmentation import normalize_header


class _HeaderSimilarityRanker:
    """Shared Eqn. 15 machinery: score = max over source headers."""

    def similarity(self, source_header: str, target_header: str) -> float:
        raise NotImplementedError

    def rank(self, instance: FillingInstance,
             candidates: Sequence[Tuple[str, List[str]]]) -> List[str]:
        scored = []
        for entity_id, source_headers in candidates:
            score = max((self.similarity(h, instance.object_header)
                         for h in source_headers), default=0.0)
            scored.append((-score, entity_id))
        scored.sort()
        return [entity_id for _, entity_id in scored]

    def evaluate(self, instances: Sequence[FillingInstance],
                 candidate_finder: CellFillingCandidates,
                 ks: Sequence[int] = (1, 3, 5, 10)) -> TaskMetrics:
        """P@K over instances whose truth survives candidate finding."""
        per_k: Dict[int, List[float]] = {k: [] for k in ks}
        for instance in instances:
            candidates = candidate_finder.candidates_for(
                instance.subject_id, instance.object_header)
            ids = [c for c, _ in candidates]
            if instance.true_object not in ids:
                continue
            ranked = self.rank(instance, candidates)
            for k in ks:
                per_k[k].append(precision_at_k(ranked, {instance.true_object}, k))
        values = {f"p@{k}": float(np.mean(v)) if v else 0.0
                  for k, v in per_k.items()}
        return TaskMetrics(task="cell_filling", values=values,
                           primary=f"p@{min(ks)}" if ks else "")

    def evaluate_precision_at(self, instances: Sequence[FillingInstance],
                              candidate_finder: CellFillingCandidates,
                              ks: Sequence[int] = (1, 3, 5, 10)) -> Dict[int, float]:
        """Deprecated alias of :meth:`evaluate`; returns ``{k: P@K}``."""
        warnings.warn("evaluate_precision_at() is deprecated; use "
                      "evaluate(...).values['p@<k>']", DeprecationWarning,
                      stacklevel=2)
        metrics = self.evaluate(instances, candidate_finder, ks=ks)
        return {k: metrics.values[f"p@{k}"] for k in ks}


class ExactRanker(_HeaderSimilarityRanker):
    """sim = exact header match."""

    def similarity(self, source_header: str, target_header: str) -> float:
        return 1.0 if normalize_header(source_header) == normalize_header(target_header) else 0.0


class H2HRanker(_HeaderSimilarityRanker):
    """sim = P(h'|h) from header co-occurrence statistics."""

    def __init__(self, statistics: HeaderStatistics):
        self.statistics = statistics

    def similarity(self, source_header: str, target_header: str) -> float:
        return self.statistics.probability(source_header, target_header)


class H2VRanker(_HeaderSimilarityRanker):
    """sim = cosine of Word2Vec header embeddings."""

    def __init__(self, corpus: TableCorpus, dim: int = 16, epochs: int = 5,
                 seed: int = 0):
        sentences = []
        for table in corpus:
            headers = [normalize_header(h) for h in table.headers if h.strip()]
            if len(headers) >= 2:
                sentences.append(headers)
        self.embeddings = Word2Vec(
            Word2VecConfig(dim=dim, epochs=epochs, seed=seed, window=4)
        ).train(sentences)

    def similarity(self, source_header: str, target_header: str) -> float:
        source = normalize_header(source_header)
        target = normalize_header(target_header)
        if source == target:
            return 1.0
        return self.embeddings.similarity(source, target)
