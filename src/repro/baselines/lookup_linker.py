"""The plain lookup baseline for entity linking.

"Wikidata Lookup" in the paper: take the candidate service's top-ranked
result as the prediction, with no disambiguation model at all.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.tasks.entity_linking import LinkingInstance, evaluate_linking
from repro.tasks.metrics import PrecisionRecallF1


class LookupLinker:
    """Predicts each mention's top lookup candidate."""

    def predict(self, instances: Sequence[LinkingInstance]) -> List[Optional[str]]:
        return [instance.candidates[0] if instance.candidates else None
                for instance in instances]

    def evaluate(self, instances: Sequence[LinkingInstance]) -> PrecisionRecallF1:
        return evaluate_linking(self.predict(instances), instances)
