"""Table2Vec row population baseline (Deng, Zhang & Balog, SIGIR 2019).

Table2Vec trains fixed entity embeddings on serialized tables (our skip-gram
substrate over per-table entity sequences) and ranks row-population
candidates by average cosine similarity to the seed entities.  With zero
seeds the method is not applicable — the paper reports "-" in that cell of
Table 8 — which :meth:`Table2VecRowPopulator.rank` mirrors by returning the
candidates unranked.
"""

from __future__ import annotations

import warnings
from typing import List, Optional, Sequence

import numpy as np

from repro.data.corpus import TableCorpus
from repro.retrieval.word2vec import Word2Vec, Word2VecConfig
from repro.tasks.metrics import TaskMetrics, mean_average_precision
from repro.tasks.row_population import PopulationCandidateGenerator, PopulationInstance


def train_entity_embeddings(corpus: TableCorpus, dim: int = 32, epochs: int = 2,
                            seed: int = 0) -> Word2Vec:
    """Skip-gram entity embeddings over per-table entity sequences."""
    sentences = []
    for table in corpus:
        entities = table.linked_entities()
        if len(entities) >= 2:
            sentences.append(entities)
    return Word2Vec(Word2VecConfig(dim=dim, epochs=epochs, seed=seed,
                                   window=8)).train(sentences)


class Table2VecRowPopulator:
    """Fixed-embedding similarity ranking for row population."""

    def __init__(self, embeddings: Word2Vec):
        self.embeddings = embeddings

    @property
    def requires_seeds(self) -> bool:
        return True

    def rank(self, instance: PopulationInstance,
             candidates: Sequence[str]) -> List[str]:
        if not instance.seed_entities:
            # Not applicable without seeds (paper Table 8 reports "-").
            return list(candidates)
        seed_vectors = [self.embeddings.vector(e) for e in instance.seed_entities]
        seed_vectors = [v for v in seed_vectors if v is not None]
        if not seed_vectors:
            return list(candidates)
        seeds = np.stack(seed_vectors)
        seed_norms = np.linalg.norm(seeds, axis=1)
        scored = []
        for candidate in candidates:
            vector = self.embeddings.vector(candidate)
            if vector is None:
                scored.append((0.0, candidate))
                continue
            norm = np.linalg.norm(vector)
            if not norm:
                scored.append((0.0, candidate))
                continue
            sims = seeds @ vector / (seed_norms * norm + 1e-12)
            scored.append((float(sims.mean()), candidate))
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        return [candidate for _, candidate in scored]

    def evaluate(self, instances: Sequence[PopulationInstance],
                 generator: PopulationCandidateGenerator
                 ) -> Optional[TaskMetrics]:
        """MAP, or None when no instance has seeds (not applicable —
        the paper reports "-" in that Table 8 cell)."""
        if not any(instance.seed_entities for instance in instances):
            return None
        rankings, truths = [], []
        for instance in instances:
            candidates = generator.candidates_for(instance)
            rankings.append(self.rank(instance, candidates))
            truths.append(instance.target_entities)
        return TaskMetrics(
            task="row_population",
            values={"map": mean_average_precision(rankings, truths)},
            primary="map")

    def evaluate_map(self, instances: Sequence[PopulationInstance],
                     generator: PopulationCandidateGenerator) -> Optional[float]:
        """Deprecated alias of :meth:`evaluate`; returns the bare MAP."""
        warnings.warn("evaluate_map() is deprecated; use "
                      "evaluate(...).values['map']", DeprecationWarning,
                      stacklevel=2)
        metrics = self.evaluate(instances, generator)
        return None if metrics is None else metrics.primary_value
