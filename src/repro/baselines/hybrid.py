"""Hybrid II-style entity linking (Efthymiou et al., ISWC 2017).

Hybrid II combines a lookup method with an *entity embedding* method: fixed
entity vectors are trained on the table corpus (we use our skip-gram
substrate over per-table entity "sentences"), and each mention's candidates
are re-scored by how coherent their embedding is with the embeddings of the
entities currently linked in the same row and column.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.corpus import TableCorpus
from repro.retrieval.word2vec import Word2Vec, Word2VecConfig
from repro.tasks.entity_linking import LinkingInstance, evaluate_linking
from repro.tasks.metrics import PrecisionRecallF1


def train_corpus_entity_embeddings(corpus: TableCorpus, dim: int = 32,
                                   epochs: int = 2, seed: int = 0) -> Word2Vec:
    """Skip-gram embeddings over per-table entity sequences."""
    sentences = []
    for table in corpus:
        entities = table.linked_entities()
        if len(entities) >= 2:
            sentences.append(entities)
    return Word2Vec(Word2VecConfig(dim=dim, epochs=epochs, seed=seed,
                                   window=6)).train(sentences)


class HybridLinker:
    """Lookup scores + embedding coherence with row/column neighbors."""

    def __init__(self, embeddings: Word2Vec, coherence_weight: float = 0.4,
                 iterations: int = 2):
        self.embeddings = embeddings
        self.coherence_weight = coherence_weight
        self.iterations = iterations

    def predict(self, instances: Sequence[LinkingInstance]) -> List[Optional[str]]:
        # Initial pass: lookup top-1.
        current: List[Optional[str]] = [
            instance.candidates[0] if instance.candidates else None
            for instance in instances
        ]
        by_table: Dict[str, List[int]] = defaultdict(list)
        for i, instance in enumerate(instances):
            by_table[instance.table.table_id].append(i)

        for _ in range(self.iterations):
            for indexes in by_table.values():
                self._refine_table(instances, indexes, current)
        return current

    def _neighbors(self, instances: Sequence[LinkingInstance],
                   indexes: List[int], target: int,
                   current: List[Optional[str]]) -> List[str]:
        me = instances[target]
        linked = []
        for i in indexes:
            if i == target or current[i] is None:
                continue
            other = instances[i]
            if other.row == me.row or other.col == me.col:
                linked.append(current[i])
        return linked

    def _refine_table(self, instances: Sequence[LinkingInstance],
                      indexes: List[int], current: List[Optional[str]]) -> None:
        for i in indexes:
            instance = instances[i]
            if not instance.candidates:
                continue
            neighbors = self._neighbors(instances, indexes, i, current)
            neighbor_vectors = [self.embeddings.vector(n) for n in neighbors]
            neighbor_vectors = [v for v in neighbor_vectors if v is not None]
            best, best_score = current[i], -np.inf
            for candidate, string_score in zip(instance.candidates,
                                               instance.candidate_scores):
                coherence = 0.0
                vector = self.embeddings.vector(candidate)
                if vector is not None and neighbor_vectors:
                    sims = []
                    for neighbor in neighbor_vectors:
                        norm = float(np.linalg.norm(vector) * np.linalg.norm(neighbor))
                        sims.append(float(vector @ neighbor / norm) if norm else 0.0)
                    coherence = float(np.mean(sims))
                score = string_score + self.coherence_weight * coherence
                if score > best_score:
                    best, best_score = candidate, score
            current[i] = best

    def evaluate(self, instances: Sequence[LinkingInstance]) -> PrecisionRecallF1:
        return evaluate_linking(self.predict(instances), instances)
