"""The "BERT-based" relation extraction baseline (paper Section 6.4).

The paper adapts a text relation extractor [39]: the concatenated table
metadata is treated as a sentence and the two column headers as entity
mentions.  A pre-trained English BERT is unavailable offline, so we
substitute a same-capacity *text-only* Transformer trained from scratch —
no table structure, no visibility matrix, no table pre-training.  The
comparison the paper draws (Table 7 and the Figure 6 convergence curve:
TURL starts from a better initialization and converges faster) is exactly
the contrast this baseline preserves.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.nn import (
    Adam,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    Tensor,
    TransformerEncoder,
    binary_cross_entropy_logits,
    concat,
    eval_mode,
    no_grad,
    stack,
)
from repro.tasks.metrics import PrecisionRecallF1, average_precision, multilabel_micro_prf
from repro.tasks.relation_extraction import RelationDataset, RelationInstance
from repro.text.tokenizer import WordPieceTokenizer
from repro.text.vocab import PAD_ID


class BertStyleRelationExtractor(Module):
    """Text-only Transformer over [caption ; header1 ; header2]."""

    def __init__(self, tokenizer: WordPieceTokenizer, n_relations: int,
                 dim: int = 64, num_layers: int = 2, num_heads: int = 4,
                 intermediate_dim: int = 128, max_caption_tokens: int = 24,
                 max_header_tokens: int = 6, seed: int = 0):
        super().__init__()
        self.tokenizer = tokenizer
        self.max_caption_tokens = max_caption_tokens
        self.max_header_tokens = max_header_tokens
        rng = np.random.default_rng(seed)
        vocab_size = len(tokenizer.vocab)
        self.word = Embedding(vocab_size, dim, rng)
        self.position = Embedding(max_caption_tokens + 2 * max_header_tokens, dim, rng)
        self.segment = Embedding(3, dim, rng)  # caption / header1 / header2
        self.norm = LayerNorm(dim)
        self.encoder = TransformerEncoder(num_layers, dim, num_heads,
                                          intermediate_dim, rng)
        self.classifier = Linear(2 * dim, n_relations, rng)

    def _encode_ids(self, instance: RelationInstance):
        caption = self.tokenizer.encode(instance.table.caption_text(),
                                        max_length=self.max_caption_tokens)
        header1 = self.tokenizer.encode(
            instance.table.columns[instance.subject_col].header,
            max_length=self.max_header_tokens) or [PAD_ID]
        header2 = self.tokenizer.encode(
            instance.table.columns[instance.object_col].header,
            max_length=self.max_header_tokens) or [PAD_ID]
        ids = np.asarray(caption + header1 + header2, dtype=np.int64)
        segments = np.asarray([0] * len(caption) + [1] * len(header1)
                              + [2] * len(header2), dtype=np.int64)
        positions = np.arange(len(ids), dtype=np.int64)
        return ids, segments, positions, len(caption), len(header1)

    def _pair_representation(self, instance: RelationInstance) -> Tensor:
        ids, segments, positions, n_caption, n_header1 = self._encode_ids(instance)
        hidden = self.word(ids[None, :]) + self.segment(segments[None, :]) \
            + self.position(positions[None, :])
        hidden = self.encoder(self.norm(hidden))  # (1, L, d)
        header1 = hidden[0, n_caption:n_caption + n_header1].mean(axis=0)
        header2 = hidden[0, n_caption + n_header1:].mean(axis=0)
        return concat([header1, header2], axis=-1)

    def pair_logits(self, instance: RelationInstance) -> Tensor:
        return self.classifier(self._pair_representation(instance))

    # -- training/inference: mirrors TURLRelationExtractor ------------------
    def finetune(self, dataset: RelationDataset, epochs: int = 3,
                 batch_size: int = 1, lr: float = 1e-3, seed: int = 0,
                 spec=None, max_instances: Optional[int] = None,
                 map_every: Optional[int] = None,
                 map_instances: int = 40,
                 learning_rate: Optional[float] = None) -> Dict[str, List[float]]:
        """Hand-rolled loop kept off the shared Trainer (no table batching
        here); accepts the canonical keyword set — an explicit ``spec``
        supplies ``epochs``/``lr``/``seed``/``max_instances``, and
        ``learning_rate`` is a deprecated alias of ``lr``.  The loop steps
        one instance at a time, so ``batch_size`` only describes collation
        and must stay 1.
        """
        if learning_rate is not None:
            warnings.warn("finetune(learning_rate=...) is deprecated; "
                          "pass lr=...", DeprecationWarning, stacklevel=2)
            lr = learning_rate
        if spec is not None:
            epochs, lr, seed = spec.epochs, spec.learning_rate, spec.seed
            max_instances = spec.max_items
            batch_size = spec.batch_size
        if batch_size != 1:
            raise ValueError("BertStyleRelationExtractor.finetune steps one "
                             "instance at a time; batch_size must be 1")
        rng = np.random.default_rng(seed)
        optimizer = Adam(self.parameters(), learning_rate=lr)
        instances = list(dataset.train)
        if max_instances is not None and len(instances) > max_instances:
            chosen = rng.choice(len(instances), size=max_instances, replace=False)
            instances = [instances[int(i)] for i in chosen]

        history: Dict[str, List[float]] = {"losses": [], "map_steps": [], "map_values": []}
        step = 0
        self.train()
        for _ in range(epochs):
            order = rng.permutation(len(instances))
            for index in order:
                instance = instances[int(index)]
                logits = self.pair_logits(instance).reshape(1, -1)
                labels = dataset.label_vector(instance).reshape(1, -1)
                loss = binary_cross_entropy_logits(logits, labels)
                self.zero_grad()
                loss.backward()
                optimizer.step()
                history["losses"].append(loss.item())
                step += 1
                if map_every and step % map_every == 0:
                    history["map_steps"].append(step)
                    history["map_values"].append(
                        self.validation_map(dataset, max_instances=map_instances))
                    self.train()
        return history

    def predict(self, instances: Sequence[RelationInstance],
                dataset: RelationDataset, threshold: float = 0.5) -> List[Set[str]]:
        predictions = []
        with eval_mode(self), no_grad():
            for instance in instances:
                logits = self.pair_logits(instance).data
                probabilities = 1.0 / (1.0 + np.exp(-logits))
                predicted = {dataset.relation_names[j]
                             for j in np.where(probabilities >= threshold)[0]}
                if not predicted:
                    predicted = {dataset.relation_names[int(probabilities.argmax())]}
                predictions.append(predicted)
        return predictions

    def evaluate(self, instances: Sequence[RelationInstance],
                 dataset: RelationDataset) -> PrecisionRecallF1:
        predictions = self.predict(instances, dataset)
        return multilabel_micro_prf(predictions, [i.relations for i in instances])

    def validation_map(self, dataset: RelationDataset,
                       max_instances: int = 40) -> float:
        instances = dataset.validation[:max_instances]
        scores = []
        with eval_mode(self), no_grad():
            for instance in instances:
                logits = self.pair_logits(instance).data
                ranked = [dataset.relation_names[j] for j in np.argsort(-logits)]
                scores.append(average_precision(ranked, instance.relations))
        return float(np.mean(scores)) if scores else 0.0
