"""T2K-style entity linking (Ritze et al., WIMS 2015).

T2K is an iterative matching framework combining schema matching and entity
matching: initial string-similarity links induce a column type estimate,
which then re-scores candidates by type agreement, and the process repeats
until it stabilizes.  We implement the entity-matching core: per column,
alternate between (a) linking every cell to its best candidate and
(b) estimating the column's type distribution from the current links, with
candidate scores = string score + type-coherence bonus.

Like the original, the approach is precision-oriented: it refuses to link
when the best score falls below a confidence threshold, which is why the
paper reports T2K with high precision but low recall (Table 4).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.kb.knowledge_base import KnowledgeBase
from repro.tasks.entity_linking import LinkingInstance, evaluate_linking
from repro.tasks.metrics import PrecisionRecallF1


class T2KLinker:
    """Iterative type-coherence disambiguation."""

    def __init__(self, kb: KnowledgeBase, iterations: int = 3,
                 type_weight: float = 0.5, min_confidence: float = 0.82):
        self.kb = kb
        self.iterations = iterations
        self.type_weight = type_weight
        self.min_confidence = min_confidence

    def _column_groups(self, instances: Sequence[LinkingInstance]
                       ) -> Dict[Tuple[str, int], List[int]]:
        groups: Dict[Tuple[str, int], List[int]] = defaultdict(list)
        for i, instance in enumerate(instances):
            groups[(instance.table.table_id, instance.col)].append(i)
        return groups

    def predict(self, instances: Sequence[LinkingInstance]) -> List[Optional[str]]:
        predictions: List[Optional[str]] = [None] * len(instances)
        for indexes in self._column_groups(instances).values():
            self._link_column(instances, indexes, predictions)
        return predictions

    def _link_column(self, instances: Sequence[LinkingInstance],
                     indexes: List[int],
                     predictions: List[Optional[str]]) -> None:
        # Round 0: pure string scores.
        current: Dict[int, Optional[str]] = {}
        for i in indexes:
            instance = instances[i]
            current[i] = instance.candidates[0] if instance.candidates else None

        for _ in range(self.iterations):
            # Schema-matching step: estimate the column's type distribution.
            type_counts: Counter = Counter()
            n_links = 0
            for i in indexes:
                if current[i] is None or current[i] not in self.kb:
                    continue
                n_links += 1
                # Most specific types only: shared ancestors like `person`
                # would otherwise support every candidate equally.
                type_counts.update(self.kb.get(current[i]).types)
            if not n_links:
                break
            type_support = {t: c / n_links for t, c in type_counts.items()}

            # Entity-matching step: re-score candidates with type coherence.
            changed = False
            for i in indexes:
                instance = instances[i]
                best, best_score = None, -1.0
                for candidate, string_score in zip(instance.candidates,
                                                   instance.candidate_scores):
                    coherence = 0.0
                    if candidate in self.kb:
                        types = self.kb.get(candidate).types
                        coherence = max((type_support.get(t, 0.0) for t in types),
                                        default=0.0)
                    score = string_score + self.type_weight * coherence
                    if score > best_score:
                        best, best_score = candidate, score
                if best != current[i]:
                    current[i] = best
                    changed = True
            if not changed:
                break

        # Confidence gate: refuse weak links (precision over recall).
        for i in indexes:
            instance = instances[i]
            if current[i] is None:
                continue
            position = instance.candidates.index(current[i])
            if instance.candidate_scores[position] >= self.min_confidence:
                predictions[i] = current[i]

    def evaluate(self, instances: Sequence[LinkingInstance]) -> PrecisionRecallF1:
        return evaluate_linking(self.predict(instances), instances)
