"""EntiTables baselines (Zhang & Balog, SIGIR 2017).

Two components the paper compares against:

- :class:`EntiTablesRowPopulator` — a generative probabilistic ranker for
  row population: with no seeds, candidates are scored by *caption
  likelihood* (aggregated retrieval scores of the tables that contain them);
  with seeds, by *entity similarity* (co-occurrence overlap with the seed
  set), the configuration the paper found best per setting (Section 6.5).
- :class:`KNNSchemaAugmenter` — the schema augmentation method of
  Section 6.7: tf-idf + cosine kNN over captions; headers of the top-10
  most similar tables are ranked by aggregated table similarity, re-weighted
  by seed-header overlap when seeds exist.
"""

from __future__ import annotations

import warnings
from collections import Counter, defaultdict
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.data.corpus import TableCorpus
from repro.retrieval.tfidf import TfIdfVectorizer, cosine_similarity
from repro.tasks.row_population import PopulationCandidateGenerator, PopulationInstance
from repro.tasks.metrics import TaskMetrics, mean_average_precision
from repro.tasks.schema_augmentation import SchemaInstance, normalize_header


class EntiTablesRowPopulator:
    """Generative probabilistic row population."""

    def __init__(self, corpus: TableCorpus):
        self.corpus = corpus
        # Entity co-occurrence sets over subject columns.
        self.cooccurrence: Dict[str, Set[str]] = defaultdict(set)
        self._containing_tables: Dict[str, List[str]] = defaultdict(list)
        for table in corpus:
            subjects = table.subject_entities()
            subject_set = set(subjects)
            for entity_id in subjects:
                self.cooccurrence[entity_id] |= subject_set - {entity_id}
                self._containing_tables[entity_id].append(table.table_id)

    def _caption_likelihood_scores(self, instance: PopulationInstance,
                                   generator: PopulationCandidateGenerator,
                                   candidates: Sequence[str]) -> Dict[str, float]:
        """Aggregate BM25 scores of retrieved tables containing a candidate."""
        query = generator.query_for(instance)
        retrieved = dict(generator.index.search(query, k=generator.k_tables))
        scores: Dict[str, float] = Counter()
        for table_id, score in retrieved.items():
            for entity_id in generator._subjects.get(table_id, ()):
                scores[entity_id] += score
        return {c: scores.get(c, 0.0) for c in candidates}

    def _entity_similarity_scores(self, instance: PopulationInstance,
                                  candidates: Sequence[str]) -> Dict[str, float]:
        """Jaccard overlap between candidate and seed co-occurrence sets."""
        seed_set = set(instance.seed_entities)
        scores = {}
        for candidate in candidates:
            neighbors = self.cooccurrence.get(candidate, set())
            direct = len(neighbors & seed_set)
            scores[candidate] = direct / (len(seed_set) or 1)
        return scores

    def rank(self, instance: PopulationInstance,
             generator: PopulationCandidateGenerator,
             candidates: Sequence[str]) -> List[str]:
        if instance.seed_entities:
            scores = self._entity_similarity_scores(instance, candidates)
        else:
            scores = self._caption_likelihood_scores(instance, generator, candidates)
        return sorted(candidates, key=lambda c: (-scores[c], c))

    def evaluate(self, instances: Sequence[PopulationInstance],
                 generator: PopulationCandidateGenerator) -> TaskMetrics:
        """MAP over candidate rankings (paper Table 8 baseline row)."""
        rankings, truths = [], []
        for instance in instances:
            candidates = generator.candidates_for(instance)
            rankings.append(self.rank(instance, generator, candidates))
            truths.append(instance.target_entities)
        return TaskMetrics(
            task="row_population",
            values={"map": mean_average_precision(rankings, truths)},
            primary="map")

    def evaluate_map(self, instances: Sequence[PopulationInstance],
                     generator: PopulationCandidateGenerator) -> float:
        """Deprecated alias of :meth:`evaluate`; returns the bare MAP."""
        warnings.warn("evaluate_map() is deprecated; use "
                      "evaluate(...).values['map']", DeprecationWarning,
                      stacklevel=2)
        return self.evaluate(instances, generator).primary_value


class KNNSchemaAugmenter:
    """tf-idf kNN schema augmentation (Section 6.7 baseline)."""

    def __init__(self, corpus: TableCorpus, k: int = 10):
        self.corpus = corpus
        self.k = k
        self.vectorizer = TfIdfVectorizer().fit(t.caption_text() for t in corpus)
        self._matrix = self.vectorizer.transform_many(
            [t.caption_text() for t in corpus])
        self._headers: List[List[str]] = [
            [normalize_header(h) for h in table.headers] for table in corpus]

    def _top_tables(self, caption: str) -> List[Tuple[int, float]]:
        query = self.vectorizer.transform(caption)
        scores = self._matrix @ query
        order = np.argsort(-scores)[: self.k]
        return [(int(i), float(scores[int(i)])) for i in order if scores[int(i)] > 0]

    def rank(self, instance: SchemaInstance,
             header_vocabulary: Sequence[str]) -> List[str]:
        """Rank vocabulary headers by aggregated neighbor-table similarity."""
        seed_set = set(instance.seed_headers)
        vocabulary = set(header_vocabulary)
        scores: Counter = Counter()
        for table_index, similarity in self._top_tables(instance.caption):
            headers = self._headers[table_index]
            weight = similarity
            if seed_set:
                overlap = len(seed_set & set(headers)) / len(seed_set)
                weight *= 0.5 + overlap  # re-weight by schema overlap
            for header in headers:
                if header in vocabulary and header not in seed_set:
                    scores[header] += weight
        ranked = [h for h, _ in scores.most_common()]
        return ranked

    def evaluate(self, instances: Sequence[SchemaInstance],
                 header_vocabulary: Sequence[str]) -> TaskMetrics:
        """MAP over header rankings (paper Table 10 baseline row)."""
        rankings = [self.rank(instance, header_vocabulary)
                    for instance in instances]
        truths = [instance.target_headers for instance in instances]
        return TaskMetrics(
            task="schema_augmentation",
            values={"map": mean_average_precision(rankings, truths)},
            primary="map")

    def evaluate_map(self, instances: Sequence[SchemaInstance],
                     header_vocabulary: Sequence[str]) -> float:
        """Deprecated alias of :meth:`evaluate`; returns the bare MAP."""
        warnings.warn("evaluate_map() is deprecated; use "
                      "evaluate(...).values['map']", DeprecationWarning,
                      stacklevel=2)
        return self.evaluate(instances, header_vocabulary).primary_value

    def best_support_caption(self, instance: SchemaInstance) -> Optional[str]:
        """Caption of the most similar corpus table (paper Table 11)."""
        top = self._top_tables(instance.caption)
        if not top:
            return None
        return self.corpus[top[0][0]].caption_text()
