"""Baseline systems the paper compares against (Table 2).

Every comparator is implemented from scratch:

- :mod:`repro.baselines.lookup_linker` — the Wikidata Lookup baseline and
  its Oracle bound;
- :mod:`repro.baselines.t2k` — T2K-style iterative schema+entity matching;
- :mod:`repro.baselines.hybrid` — Hybrid II-style lookup + entity-embedding
  disambiguation;
- :mod:`repro.baselines.sherlock` — Sherlock-style feature-based column type
  prediction (character distributions, statistics, embeddings → MLP);
- :mod:`repro.baselines.bert_re` — the "BERT-based" text-only relation
  extractor (metadata as a sentence, headers as mentions);
- :mod:`repro.baselines.entitables` — EntiTables generative row population
  and the tf-idf kNN schema augmentation;
- :mod:`repro.baselines.table2vec` — Table2Vec fixed-embedding ranking;
- :mod:`repro.baselines.cell_filling` — Exact / H2H / H2V value ranking.
"""

from repro.baselines.lookup_linker import LookupLinker
from repro.baselines.t2k import T2KLinker
from repro.baselines.hybrid import HybridLinker
from repro.baselines.sherlock import SherlockModel, column_features
from repro.baselines.bert_re import BertStyleRelationExtractor
from repro.baselines.entitables import EntiTablesRowPopulator, KNNSchemaAugmenter
from repro.baselines.table2vec import Table2VecRowPopulator, train_entity_embeddings
from repro.baselines.cell_filling import ExactRanker, H2HRanker, H2VRanker

__all__ = [
    "LookupLinker",
    "T2KLinker",
    "HybridLinker",
    "SherlockModel",
    "column_features",
    "BertStyleRelationExtractor",
    "EntiTablesRowPopulator",
    "KNNSchemaAugmenter",
    "Table2VecRowPopulator",
    "train_entity_embeddings",
    "ExactRanker",
    "H2HRanker",
    "H2VRanker",
]
