"""Sherlock-style column type prediction (Hulsebos et al., KDD 2019).

Sherlock describes a column by 1 588 hand-engineered features over its cell
values (character distributions, statistical properties, word embeddings,
paragraph vectors) and classifies with a feed-forward network.  We implement
a compact variant with the same feature families — character distribution,
value statistics, and aggregated word embeddings from our Word2Vec substrate
— feeding an MLP with per-type sigmoid outputs (the paper adapts Sherlock to
multi-label the same way, Section 6.3).

Crucially, Sherlock sees *only the cell text* — no table context — which is
exactly why it trails TURL on fine-grained types (paper Table 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.nn import Adam, Linear, Module, Sequential, Tensor, binary_cross_entropy_logits, no_grad
from repro.retrieval.word2vec import Word2Vec, Word2VecConfig
from repro.tasks.column_type import ColumnInstance, ColumnTypeDataset
from repro.tasks.metrics import PrecisionRecallF1, multilabel_micro_prf
from repro.text.tokenizer import basic_tokenize

_CHARSET = "abcdefghijklmnopqrstuvwxyz0123456789 .,-"


def _char_distribution(values: List[str]) -> np.ndarray:
    counts = np.zeros(len(_CHARSET))
    total = 0
    for value in values:
        for char in value.lower():
            index = _CHARSET.find(char)
            if index >= 0:
                counts[index] += 1
                total += 1
    return counts / total if total else counts


def _value_statistics(values: List[str]) -> np.ndarray:
    lengths = np.array([len(v) for v in values], dtype=float)
    word_counts = np.array([len(v.split()) for v in values], dtype=float)
    digit_fraction = np.array(
        [sum(c.isdigit() for c in v) / len(v) if v else 0.0 for v in values])
    capitalized = np.array([1.0 if v[:1].isupper() else 0.0 for v in values])
    numeric = np.array([1.0 if v.replace(".", "").isdigit() else 0.0 for v in values])
    distinct_ratio = len(set(values)) / len(values) if values else 0.0
    return np.array([
        lengths.mean(), lengths.std(), lengths.max() if len(lengths) else 0.0,
        word_counts.mean(), word_counts.std(),
        digit_fraction.mean(), capitalized.mean(), numeric.mean(),
        distinct_ratio,
    ])


def column_features(values: List[str], word2vec: Optional[Word2Vec] = None) -> np.ndarray:
    """Sherlock feature vector for a column's cell strings."""
    values = [v for v in values if v]
    if not values:
        dim = len(_CHARSET) + 9 + (word2vec.config.dim if word2vec else 0)
        return np.zeros(dim)
    parts = [_char_distribution(values), _value_statistics(values)]
    if word2vec is not None:
        vectors = []
        for value in values:
            for token in basic_tokenize(value):
                vector = word2vec.vector(token)
                if vector is not None:
                    vectors.append(vector)
        embedding = (np.mean(vectors, axis=0) if vectors
                     else np.zeros(word2vec.config.dim))
        parts.append(embedding)
    return np.concatenate(parts)


class _GeluLayer(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.gelu()


class SherlockModel:
    """Feature MLP with per-type sigmoid outputs."""

    def __init__(self, n_types: int, embedding_dim: int = 32, hidden_dim: int = 64,
                 seed: int = 0):
        self.n_types = n_types
        self.embedding_dim = embedding_dim
        rng = np.random.default_rng(seed)
        feature_dim = len(_CHARSET) + 9 + embedding_dim
        self.network = Sequential(
            Linear(feature_dim, hidden_dim, rng),
            _GeluLayer(),
            Linear(hidden_dim, n_types, rng),
        )
        self.word2vec: Optional[Word2Vec] = None
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    # -- features ---------------------------------------------------------
    def _cell_values(self, instance: ColumnInstance) -> List[str]:
        return [cell.mention for cell in instance.table.columns[instance.col].cells]

    def _features(self, instances: Sequence[ColumnInstance]) -> np.ndarray:
        matrix = np.stack([
            column_features(self._cell_values(instance), self.word2vec)
            for instance in instances
        ])
        if self._mean is not None:
            matrix = (matrix - self._mean) / self._std
        return matrix

    # -- training ---------------------------------------------------------
    def fit(self, dataset: ColumnTypeDataset, epochs: int = 30,
            learning_rate: float = 3e-3, batch_size: int = 64, seed: int = 0,
            validation_patience: Optional[int] = None) -> List[float]:
        """Train with BCE; early-stops on validation F1 when patience given."""
        rng = np.random.default_rng(seed)
        sentences = [basic_tokenize(" ".join(self._cell_values(i)))
                     for i in dataset.train]
        sentences = [s for s in sentences if len(s) >= 2]
        self.word2vec = Word2Vec(Word2VecConfig(dim=self.embedding_dim, epochs=2,
                                                seed=seed)).train(sentences)

        raw = np.stack([
            column_features(self._cell_values(instance), self.word2vec)
            for instance in dataset.train
        ])
        self._mean = raw.mean(axis=0)
        self._std = raw.std(axis=0) + 1e-6
        features = (raw - self._mean) / self._std
        labels = np.stack([dataset.label_vector(i) for i in dataset.train])

        optimizer = Adam(self.network.parameters(), learning_rate=learning_rate)
        losses = []
        best_f1, patience_left = -1.0, validation_patience
        for _ in range(epochs):
            order = rng.permutation(len(features))
            epoch_losses = []
            for start in range(0, len(order), batch_size):
                rows = order[start:start + batch_size]
                logits = self.network(Tensor(features[rows]))
                loss = binary_cross_entropy_logits(logits, labels[rows])
                self.network.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_losses.append(loss.item())
            losses.append(float(np.mean(epoch_losses)))
            if validation_patience is not None and dataset.validation:
                f1 = self.evaluate(dataset.validation, dataset).f1
                if f1 > best_f1:
                    best_f1, patience_left = f1, validation_patience
                else:
                    patience_left -= 1
                    if patience_left <= 0:
                        break
        return losses

    # -- inference ---------------------------------------------------------
    def predict(self, instances: Sequence[ColumnInstance],
                dataset: ColumnTypeDataset, threshold: float = 0.5) -> List[Set[str]]:
        features = self._features(instances)
        with no_grad():
            logits = self.network(Tensor(features)).data
        probabilities = 1.0 / (1.0 + np.exp(-logits))
        predictions = []
        for row in probabilities:
            predicted = {dataset.type_names[j] for j in np.where(row >= threshold)[0]}
            if not predicted:
                predicted = {dataset.type_names[int(row.argmax())]}
            predictions.append(predicted)
        return predictions

    def evaluate(self, instances: Sequence[ColumnInstance],
                 dataset: ColumnTypeDataset) -> PrecisionRecallF1:
        predictions = self.predict(instances, dataset)
        return multilabel_micro_prf(predictions, [i.types for i in instances])

    def per_type_f1(self, instances: Sequence[ColumnInstance],
                    dataset: ColumnTypeDataset,
                    type_names: Sequence[str]) -> Dict[str, float]:
        predictions = self.predict(instances, dataset)
        report: Dict[str, float] = {}
        for type_name in type_names:
            tp = fp = fn = 0
            for predicted, instance in zip(predictions, instances):
                has = type_name in instance.types
                said = type_name in predicted
                tp += has and said
                fp += said and not has
                fn += has and not said
            report[type_name] = PrecisionRecallF1.from_counts(tp, fp, fn).f1
        return report
