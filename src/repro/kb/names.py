"""Deterministic name factories for the synthetic world.

Names are composed from syllable inventories so the generated world has the
statistical texture of real Web-table data: shared surnames create genuinely
ambiguous mentions (homonyms) that exercise entity disambiguation, and city /
country / film names share sub-strings the tokenizer must segment.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

FIRST_SYLLABLES = [
    "an", "bel", "cor", "dan", "el", "far", "gil", "han", "is", "jor",
    "kal", "lem", "mar", "nor", "ol", "per", "quin", "ros", "sal", "tam",
]
SECOND_SYLLABLES = [
    "a", "do", "en", "ia", "io", "ka", "la", "mi", "na", "o",
    "ra", "sa", "ta", "u", "vi", "win", "ya", "zo",
]
SURNAME_ROOTS = [
    "ald", "bern", "cald", "dorn", "ever", "fenn", "gart", "hale", "ives",
    "jens", "kerr", "lund", "mont", "nash", "orr", "penn", "quill", "roth",
    "sten", "thorn", "umber", "vance", "wick", "yates", "zell",
]
SURNAME_SUFFIXES = ["son", "er", "ley", "man", "wood", "field", "well", "by"]

CITY_ROOTS = [
    "ash", "bright", "clear", "deep", "east", "fair", "green", "high",
    "iron", "long", "mill", "new", "oak", "red", "stone", "swift",
    "west", "white", "wolf", "york",
]
CITY_SUFFIXES = ["ton", "ville", "burg", "ford", "port", "field", "mouth", "haven", "bury", "dale"]

COUNTRY_ROOTS = [
    "alvar", "brend", "casp", "dorv", "elst", "fenr", "gall", "harv",
    "istr", "jolm", "kest", "lorn", "morv", "nadir", "ostr", "palt",
]
COUNTRY_SUFFIXES = ["ia", "land", "mark", "stan", "ora"]

LANGUAGE_SUFFIXES = ["ish", "ese", "ic", "ian"]

FILM_ADJECTIVES = [
    "silent", "golden", "broken", "hidden", "burning", "distant", "crimson",
    "endless", "falling", "frozen", "lonely", "midnight", "pale", "restless",
    "rising", "scarlet", "shattered", "stolen", "wandering", "winter",
]
FILM_NOUNS = [
    "river", "crown", "mirror", "garden", "letter", "horizon", "shadow",
    "voyage", "harvest", "lantern", "orchard", "bridge", "station", "archive",
    "compass", "island", "monument", "passage", "symphony", "threshold",
]
GENRE_NAMES = ["folk", "jazz", "rock", "classical", "electronic", "blues", "soul", "ambient"]
AWARD_CATEGORIES = [
    "direction", "picture", "screenplay", "cinematography", "editing",
    "original score", "production design", "documentary",
]
CLUB_WORDS = ["united", "city", "athletic", "rovers", "wanderers", "dynamo", "rangers", "albion"]
POSITIONS = ["goalkeeper", "defender", "midfielder", "forward", "winger", "striker"]
STADIUM_WORDS = ["park", "arena", "grounds", "stadium", "field"]
ALBUM_NOUNS = [
    "echo", "ember", "tide", "aurora", "cascade", "prism", "velvet",
    "meridian", "solstice", "mosaic", "drift", "halcyon",
]


def _pick(rng: np.random.Generator, items: Sequence[str]) -> str:
    return items[int(rng.integers(len(items)))]


def _title(words: str) -> str:
    return " ".join(w.capitalize() for w in words.split())


def person_name(rng: np.random.Generator) -> str:
    first = _pick(rng, FIRST_SYLLABLES) + _pick(rng, SECOND_SYLLABLES)
    last = _pick(rng, SURNAME_ROOTS) + _pick(rng, SURNAME_SUFFIXES)
    return _title(f"{first} {last}")


def person_aliases(rng: np.random.Generator, name: str) -> List[str]:
    """Alias variants for a person: surname only, initial + surname."""
    first, last = name.split(" ", 1)
    aliases = [last, f"{first[0]}. {last}"]
    if rng.random() < 0.3:
        aliases.append(first)
    return aliases


def city_name(rng: np.random.Generator) -> str:
    return _title(_pick(rng, CITY_ROOTS) + _pick(rng, CITY_SUFFIXES))


def country_name(rng: np.random.Generator) -> str:
    return _title(_pick(rng, COUNTRY_ROOTS) + _pick(rng, COUNTRY_SUFFIXES))


def language_name(rng: np.random.Generator, country: str) -> str:
    root = country.lower()
    for suffix in COUNTRY_SUFFIXES:
        if root.endswith(suffix):
            root = root[: -len(suffix)]
            break
    return _title(root + _pick(rng, LANGUAGE_SUFFIXES))


def film_title(rng: np.random.Generator) -> str:
    style = rng.random()
    adjective = _pick(rng, FILM_ADJECTIVES)
    noun = _pick(rng, FILM_NOUNS)
    if style < 0.5:
        return _title(f"the {adjective} {noun}")
    if style < 0.8:
        return _title(f"{adjective} {noun}")
    second_noun = _pick(rng, FILM_NOUNS)
    return _title(f"{noun} of the {second_noun}")


def film_aliases(title: str) -> List[str]:
    if title.lower().startswith("the "):
        return [title[4:]]
    return []


def club_name(rng: np.random.Generator, city: str) -> str:
    return _title(f"{city} {_pick(rng, CLUB_WORDS)}")


def club_aliases(name: str) -> List[str]:
    parts = name.split()
    # "Ashton United" -> "Ashton", "AU".
    aliases = [parts[0]]
    if len(parts) >= 2:
        aliases.append("".join(p[0].upper() for p in parts))
    return aliases


def stadium_name(rng: np.random.Generator, city: str) -> str:
    return _title(f"{city} {_pick(rng, STADIUM_WORDS)}")


def award_name(rng: np.random.Generator, country: str) -> str:
    category = _pick(rng, AWARD_CATEGORIES)
    return _title(f"{country} film award for best {category}")


def ordinal(n: int) -> str:
    if 10 <= n % 100 <= 20:
        suffix = "th"
    else:
        suffix = {1: "st", 2: "nd", 3: "rd"}.get(n % 10, "th")
    return f"{n}{suffix}"


def ceremony_name(n: int, award: str) -> str:
    return f"{ordinal(n)} {award}"


def album_title(rng: np.random.Generator) -> str:
    style = rng.random()
    noun = _pick(rng, ALBUM_NOUNS)
    if style < 0.4:
        return _title(noun)
    return _title(f"{_pick(rng, FILM_ADJECTIVES)} {noun}")
