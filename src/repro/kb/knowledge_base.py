"""The knowledge-base store.

A :class:`KnowledgeBase` holds typed, described :class:`Entity` objects and
directed :class:`Fact` triples, with the indexes the rest of the system
needs: by subject, by relation, by type, and an inverse index for
object→subject traversal.
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.kb.schema import RELATIONS, expand_types


@dataclass
class Entity:
    """A KB entity.

    ``types`` stores the most specific type(s); ancestor types are derived via
    :func:`repro.kb.schema.expand_types` and exposed by :meth:`all_types`.
    """

    entity_id: str
    name: str
    types: List[str]
    aliases: List[str] = field(default_factory=list)
    description: str = ""

    def all_types(self) -> List[str]:
        return expand_types(self.types)

    def mentions(self) -> List[str]:
        """Every surface form: canonical name plus aliases."""
        return [self.name] + [a for a in self.aliases if a != self.name]


@dataclass(frozen=True)
class Fact:
    """A directed triple ``(subject, relation, object)`` over entity ids."""

    subject: str
    relation: str
    object: str


class KnowledgeBase:
    """Entity + fact store with lookup indexes."""

    def __init__(self) -> None:
        self.entities: Dict[str, Entity] = {}
        self.facts: Set[Fact] = set()
        self._by_subject: Dict[Tuple[str, str], List[str]] = defaultdict(list)
        self._by_object: Dict[Tuple[str, str], List[str]] = defaultdict(list)
        self._by_relation: Dict[str, List[Fact]] = defaultdict(list)
        self._by_type: Dict[str, List[str]] = defaultdict(list)

    # -- construction ----------------------------------------------------
    def add_entity(self, entity: Entity) -> None:
        if entity.entity_id in self.entities:
            raise ValueError(f"duplicate entity id: {entity.entity_id}")
        self.entities[entity.entity_id] = entity
        for type_name in entity.all_types():
            self._by_type[type_name].append(entity.entity_id)

    def add_fact(self, subject: str, relation: str, object_: str) -> None:
        if relation not in RELATIONS:
            raise KeyError(f"unknown relation: {relation}")
        if subject not in self.entities:
            raise KeyError(f"unknown subject entity: {subject}")
        if object_ not in self.entities:
            raise KeyError(f"unknown object entity: {object_}")
        fact = Fact(subject, relation, object_)
        if fact in self.facts:
            return
        self.facts.add(fact)
        self._by_subject[(subject, relation)].append(object_)
        self._by_object[(object_, relation)].append(subject)
        self._by_relation[relation].append(fact)

    # -- queries ---------------------------------------------------------
    def __contains__(self, entity_id: str) -> bool:
        return entity_id in self.entities

    def __len__(self) -> int:
        return len(self.entities)

    def get(self, entity_id: str) -> Entity:
        return self.entities[entity_id]

    def objects_of(self, subject: str, relation: str) -> List[str]:
        """Object entity ids for ``(subject, relation, ?)``."""
        return list(self._by_subject.get((subject, relation), ()))

    def subjects_of(self, object_: str, relation: str) -> List[str]:
        """Subject entity ids for ``(?, relation, object)``."""
        return list(self._by_object.get((object_, relation), ()))

    def facts_of_relation(self, relation: str) -> List[Fact]:
        return list(self._by_relation.get(relation, ()))

    def entities_of_type(self, type_name: str) -> List[str]:
        return list(self._by_type.get(type_name, ()))

    def relations_between(self, subject: str, object_: str) -> List[str]:
        """All relation names holding between two specific entities."""
        return [
            relation
            for relation in RELATIONS
            if object_ in self._by_subject.get((subject, relation), ())
        ]

    def has_fact(self, subject: str, relation: str, object_: str) -> bool:
        return Fact(subject, relation, object_) in self.facts

    def types_of(self, entity_id: str) -> List[str]:
        return self.entities[entity_id].all_types()

    # -- persistence ----------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "entities": [
                {
                    "entity_id": e.entity_id,
                    "name": e.name,
                    "types": e.types,
                    "aliases": e.aliases,
                    "description": e.description,
                }
                for e in self.entities.values()
            ],
            "facts": [[f.subject, f.relation, f.object] for f in sorted(
                self.facts, key=lambda f: (f.relation, f.subject, f.object))],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "KnowledgeBase":
        kb = cls()
        for blob in payload["entities"]:
            kb.add_entity(Entity(**blob))
        for subject, relation, object_ in payload["facts"]:
            kb.add_fact(subject, relation, object_)
        return kb

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle)

    @classmethod
    def load(cls, path: str) -> "KnowledgeBase":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))
