"""Knowledge-base substrate.

The paper grounds tables in Wikipedia hyperlinks and uses Freebase types and
relations plus DBpedia descriptions.  None of those resources are available
offline, so this package provides an equivalent synthetic world:

- :mod:`repro.kb.schema` — a type taxonomy (with the coarse/fine contrast of
  the paper's Table 6, e.g. ``person`` vs ``actor``) and a relation catalog.
- :mod:`repro.kb.knowledge_base` — the KB store with entity/fact indexes.
- :mod:`repro.kb.generator` — a deterministic synthetic-world generator that
  produces entities, facts, aliases and descriptions.
- :mod:`repro.kb.lookup` — a fuzzy name-lookup service standing in for the
  Wikidata Lookup candidate generator used by the entity-linking experiments.
"""

from repro.kb.schema import TYPE_TAXONOMY, RELATIONS, Relation, ancestors_of, all_types
from repro.kb.knowledge_base import Entity, Fact, KnowledgeBase
from repro.kb.generator import WorldConfig, generate_world
from repro.kb.lookup import LookupService, LookupResult

__all__ = [
    "TYPE_TAXONOMY",
    "RELATIONS",
    "Relation",
    "ancestors_of",
    "all_types",
    "Entity",
    "Fact",
    "KnowledgeBase",
    "WorldConfig",
    "generate_world",
    "LookupService",
    "LookupResult",
]
