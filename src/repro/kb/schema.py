"""Type taxonomy and relation catalog for the synthetic knowledge base.

The taxonomy deliberately contains both coarse types (``person``,
``location``) and fine-grained subtypes (``actor``, ``citytown``) so the
column-type-annotation experiment reproduces the paper's Table 6 contrast:
coarse types are easy, fine types need table context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: child type -> parent type (None for roots).  An entity tagged with a type
#: implicitly carries every ancestor type as well.
TYPE_TAXONOMY: Dict[str, Optional[str]] = {
    "person": None,
    "pro_athlete": "person",
    "actor": "person",
    "director": "person",
    "musician": "person",
    "location": None,
    "citytown": "location",
    "country": "location",
    "stadium": "location",
    "organization": None,
    "sports_club": "organization",
    "creative_work": None,
    "film": "creative_work",
    "album": "creative_work",
    "event": None,
    "award_ceremony": "event",
    "sports_season": "event",
    "award": None,
    "language": None,
    "genre": None,
}


def ancestors_of(type_name: str) -> List[str]:
    """Return ``type_name`` plus all its ancestors, most specific first."""
    chain: List[str] = []
    current: Optional[str] = type_name
    while current is not None:
        if current not in TYPE_TAXONOMY:
            raise KeyError(f"unknown type: {current}")
        chain.append(current)
        current = TYPE_TAXONOMY[current]
    return chain


def expand_types(type_names) -> List[str]:
    """Expand a list of types with all ancestors (deduplicated, ordered)."""
    seen: List[str] = []
    for name in type_names:
        for ancestor in ancestors_of(name):
            if ancestor not in seen:
                seen.append(ancestor)
    return seen


def all_types() -> List[str]:
    return list(TYPE_TAXONOMY)


@dataclass(frozen=True)
class Relation:
    """A directed KB relation with domain and range types."""

    name: str
    domain: str
    range: str
    #: Header phrases under which this relation typically appears in tables.
    header_phrases: Tuple[str, ...] = ()

    def __str__(self) -> str:
        return self.name


#: The relation catalog; the generator instantiates facts for each of these.
RELATIONS: Dict[str, Relation] = {
    relation.name: relation
    for relation in [
        Relation("film.director", "film", "director", ("director", "directed by")),
        Relation("film.starring", "film", "actor", ("starring", "lead actor", "cast")),
        Relation("film.language", "film", "language", ("language",)),
        Relation("film.country", "film", "country", ("country",)),
        Relation("person.birthplace", "person", "citytown", ("birthplace", "place of birth", "born in")),
        Relation("person.nationality", "person", "country", ("nationality", "country")),
        Relation("athlete.club", "pro_athlete", "sports_club", ("club", "team", "current club")),
        Relation("club.city", "sports_club", "citytown", ("city", "home city", "location")),
        Relation("club.stadium", "sports_club", "stadium", ("stadium", "ground", "home ground", "venue")),
        Relation("city.country", "citytown", "country", ("country",)),
        Relation("ceremony.award", "award_ceremony", "award", ("award",)),
        Relation("ceremony.winner", "award_ceremony", "director", ("recipient", "winner", "awardee")),
        Relation("ceremony.best_film", "award_ceremony", "film", ("film", "winning film", "work")),
        Relation("album.artist", "album", "musician", ("artist", "performer", "musician")),
        Relation("album.genre", "album", "genre", ("genre", "style")),
        Relation("season.club", "sports_season", "sports_club", ("club", "team")),
    ]
}


def relations_with_domain(type_name: str) -> List[Relation]:
    """All relations whose domain accepts an entity of ``type_name``."""
    mine = set(ancestors_of(type_name))
    return [r for r in RELATIONS.values() if r.domain in mine]
