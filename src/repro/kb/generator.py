"""Synthetic world generation.

:func:`generate_world` builds a coherent knowledge base: countries with
languages, cities, football clubs with stadiums and athletes, a film industry
(directors, actors, films), award ceremonies whose winners really direct the
winning films (the coherence MER must learn to exploit — compare the paper's
Figure 1, where the award table implies "[Satyajit] directs [Chiriyakhana]"),
and a music scene (musicians, albums, genres).

Everything is driven by a seeded ``numpy.random.Generator`` so the same
config always produces the identical world.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.kb import names
from repro.kb.knowledge_base import Entity, KnowledgeBase


@dataclass
class WorldConfig:
    """Sizing knobs for the synthetic world.

    The defaults produce roughly 1 500 entities — big enough for a realistic
    entity vocabulary, small enough that pre-training runs on a laptop CPU.
    """

    seed: int = 0
    n_countries: int = 10
    n_cities: int = 60
    n_clubs: int = 30
    n_athletes: int = 240
    n_directors: int = 40
    n_actors: int = 160
    n_films: int = 200
    n_awards_per_country: int = 1
    n_ceremonies_per_award: int = 18
    n_musicians: int = 50
    n_albums: int = 100
    n_seasons_per_club: int = 3
    first_season_year: int = 2004

    def scaled(self, factor: float) -> "WorldConfig":
        """Return a copy with all entity counts multiplied by ``factor``."""
        scaled = WorldConfig(seed=self.seed)
        for name in (
            "n_countries", "n_cities", "n_clubs", "n_athletes", "n_directors",
            "n_actors", "n_films", "n_musicians", "n_albums",
        ):
            setattr(scaled, name, max(1, int(getattr(self, name) * factor)))
        scaled.n_awards_per_country = self.n_awards_per_country
        scaled.n_ceremonies_per_award = self.n_ceremonies_per_award
        scaled.n_seasons_per_club = self.n_seasons_per_club
        scaled.first_season_year = self.first_season_year
        return scaled


@dataclass
class _World:
    """Intermediate bookkeeping while the world is being assembled."""

    kb: KnowledgeBase
    countries: List[str] = field(default_factory=list)
    languages: Dict[str, str] = field(default_factory=dict)  # country -> language
    cities: List[str] = field(default_factory=list)
    city_country: Dict[str, str] = field(default_factory=dict)
    clubs: List[str] = field(default_factory=list)
    athletes: List[str] = field(default_factory=list)
    directors: List[str] = field(default_factory=list)
    actors: List[str] = field(default_factory=list)
    films: List[str] = field(default_factory=list)
    awards: List[str] = field(default_factory=list)
    ceremonies: List[str] = field(default_factory=list)
    musicians: List[str] = field(default_factory=list)
    albums: List[str] = field(default_factory=list)
    genres: List[str] = field(default_factory=list)
    seasons: List[str] = field(default_factory=list)


def _add(kb: KnowledgeBase, entity_id: str, name: str, types: List[str],
         aliases: List[str] = (), description: str = "") -> str:
    kb.add_entity(Entity(entity_id, name, list(types), list(aliases), description))
    return entity_id


def _choice(rng: np.random.Generator, items: List[str]) -> str:
    return items[int(rng.integers(len(items)))]


def _sample(rng: np.random.Generator, items: List[str], k: int) -> List[str]:
    k = min(k, len(items))
    indexes = rng.choice(len(items), size=k, replace=False)
    return [items[int(i)] for i in indexes]


def generate_world(config: WorldConfig = WorldConfig()) -> KnowledgeBase:
    """Generate the full synthetic knowledge base described by ``config``."""
    rng = np.random.default_rng(config.seed)
    world = _World(kb=KnowledgeBase())
    _make_geography(world, config, rng)
    _make_football(world, config, rng)
    _make_film_industry(world, config, rng)
    _make_awards(world, config, rng)
    _make_music(world, config, rng)
    return world.kb


def _make_geography(world: _World, config: WorldConfig, rng: np.random.Generator) -> None:
    kb = world.kb
    used_names = set()
    for i in range(config.n_countries):
        name = names.country_name(rng)
        while name in used_names:
            name = names.country_name(rng)
        used_names.add(name)
        country_id = _add(kb, f"country_{i:04d}", name, ["country"],
                          description=f"{name} is a sovereign country.")
        world.countries.append(country_id)

        language = names.language_name(rng, name)
        language_id = _add(kb, f"language_{i:04d}", language, ["language"],
                           description=f"{language} is the official language of {name}.")
        world.languages[country_id] = language_id

    for i in range(config.n_cities):
        name = names.city_name(rng)
        country_id = _choice(rng, world.countries)
        country = kb.get(country_id).name
        city_id = _add(kb, f"city_{i:04d}", name, ["citytown"],
                       description=f"{name} is a city in {country}.")
        world.cities.append(city_id)
        world.city_country[city_id] = country_id
        kb.add_fact(city_id, "city.country", country_id)


def _make_person(world: _World, rng: np.random.Generator, entity_id: str,
                 fine_type: str, occupation: str) -> str:
    kb = world.kb
    name = names.person_name(rng)
    city_id = _choice(rng, world.cities)
    country_id = world.city_country[city_id]
    city = kb.get(city_id).name
    country = kb.get(country_id).name
    _add(kb, entity_id, name, [fine_type], aliases=names.person_aliases(rng, name),
         description=f"{name} is a {occupation} from {country}, born in {city}.")
    kb.add_fact(entity_id, "person.birthplace", city_id)
    kb.add_fact(entity_id, "person.nationality", country_id)
    return entity_id


def _make_football(world: _World, config: WorldConfig, rng: np.random.Generator) -> None:
    kb = world.kb
    for i in range(config.n_clubs):
        city_id = _choice(rng, world.cities)
        city = kb.get(city_id).name
        club_name = names.club_name(rng, city)
        club_id = _add(kb, f"club_{i:04d}", club_name, ["sports_club"],
                       aliases=names.club_aliases(club_name),
                       description=f"{club_name} is a football club based in {city}.")
        world.clubs.append(club_id)
        kb.add_fact(club_id, "club.city", city_id)

        stadium_name = names.stadium_name(rng, city)
        stadium_id = _add(kb, f"stadium_{i:04d}", stadium_name, ["stadium"],
                          description=f"{stadium_name} is a football stadium in {city}.")
        kb.add_fact(club_id, "club.stadium", stadium_id)

        for season_index in range(config.n_seasons_per_club):
            year = config.first_season_year + season_index
            season_name = f"{year} {club_name} Season"
            season_id = _add(kb, f"season_{i:04d}_{season_index}", season_name,
                             ["sports_season"],
                             description=f"The {year} season of {club_name}.")
            world.seasons.append(season_id)
            kb.add_fact(season_id, "season.club", club_id)

    for i in range(config.n_athletes):
        athlete_id = _make_person(world, rng, f"athlete_{i:05d}", "pro_athlete",
                                  "professional footballer")
        world.athletes.append(athlete_id)
        # Careers span 1-3 clubs, in order: cell filling then faces several
        # plausible club candidates per athlete, and which one is correct is
        # determined by table context ("moving from" = previous club,
        # "club" = current club).  ``objects_of`` preserves insertion order,
        # so the fact list IS the career order.
        n_clubs = 1 + int(rng.integers(3))
        for club_id in _sample(rng, world.clubs, n_clubs):
            kb.add_fact(athlete_id, "athlete.club", club_id)
        position = names.POSITIONS[int(rng.integers(len(names.POSITIONS)))]
        entity = kb.get(athlete_id)
        entity.description += f" Plays as a {position}."


def _make_film_industry(world: _World, config: WorldConfig, rng: np.random.Generator) -> None:
    kb = world.kb
    for i in range(config.n_directors):
        world.directors.append(
            _make_person(world, rng, f"director_{i:05d}", "director", "film director"))
    for i in range(config.n_actors):
        world.actors.append(
            _make_person(world, rng, f"actor_{i:05d}", "actor", "film actor"))

    used_titles = set()
    for i in range(config.n_films):
        title = names.film_title(rng)
        attempts = 0
        while title in used_titles and attempts < 5:
            title = names.film_title(rng)
            attempts += 1
        used_titles.add(title)

        director_id = _choice(rng, world.directors)
        director = kb.get(director_id)
        country_id = kb.objects_of(director_id, "person.nationality")[0]
        language_id = world.languages[country_id]
        year = 1950 + int(rng.integers(70))
        film_id = _add(
            kb, f"film_{i:05d}", title, ["film"], aliases=names.film_aliases(title),
            description=(f"{title} is a {year} {kb.get(language_id).name}-language "
                         f"film directed by {director.name}."))
        world.films.append(film_id)
        kb.add_fact(film_id, "film.director", director_id)
        kb.add_fact(film_id, "film.language", language_id)
        kb.add_fact(film_id, "film.country", country_id)
        for actor_id in _sample(rng, world.actors, 2 + int(rng.integers(3))):
            kb.add_fact(film_id, "film.starring", actor_id)


def _make_awards(world: _World, config: WorldConfig, rng: np.random.Generator) -> None:
    kb = world.kb
    award_index = 0
    for country_id in world.countries:
        country = kb.get(country_id).name
        for _ in range(config.n_awards_per_country):
            award_name = names.award_name(rng, country)
            award_id = _add(kb, f"award_{award_index:04d}", award_name, ["award"],
                            description=f"{award_name} is an annual film award of {country}.")
            world.awards.append(award_id)

            # Ceremony winners and winning films are coherent: the winner is
            # the director of the winning film.
            for n in range(1, config.n_ceremonies_per_award + 1):
                ceremony_name = names.ceremony_name(n, award_name)
                ceremony_id = _add(
                    kb, f"ceremony_{award_index:04d}_{n:03d}", ceremony_name,
                    ["award_ceremony"], aliases=[names.ordinal(n)],
                    description=f"The {names.ordinal(n)} edition of the {award_name}.")
                world.ceremonies.append(ceremony_id)
                kb.add_fact(ceremony_id, "ceremony.award", award_id)

                winner_id = _choice(rng, world.directors)
                winner_films = kb.subjects_of(winner_id, "film.director")
                if not winner_films:
                    continue
                film_id = _choice(rng, winner_films)
                kb.add_fact(ceremony_id, "ceremony.winner", winner_id)
                kb.add_fact(ceremony_id, "ceremony.best_film", film_id)
            award_index += 1


def _make_music(world: _World, config: WorldConfig, rng: np.random.Generator) -> None:
    kb = world.kb
    for i, genre in enumerate(names.GENRE_NAMES):
        genre_id = _add(kb, f"genre_{i:02d}", genre.capitalize(), ["genre"],
                        description=f"{genre.capitalize()} is a music genre.")
        world.genres.append(genre_id)

    for i in range(config.n_musicians):
        world.musicians.append(
            _make_person(world, rng, f"musician_{i:05d}", "musician", "musician"))

    used_titles = set()
    for i in range(config.n_albums):
        title = names.album_title(rng)
        attempts = 0
        while title in used_titles and attempts < 5:
            title = names.album_title(rng)
            attempts += 1
        used_titles.add(title)
        artist_id = _choice(rng, world.musicians)
        genre_id = _choice(rng, world.genres)
        album_id = _add(
            kb, f"album_{i:05d}", title, ["album"],
            description=(f"{title} is a {kb.get(genre_id).name.lower()} album "
                         f"by {kb.get(artist_id).name}."))
        world.albums.append(album_id)
        kb.add_fact(album_id, "album.artist", artist_id)
        kb.add_fact(album_id, "album.genre", genre_id)
