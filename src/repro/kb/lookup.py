"""Fuzzy name-lookup service (Wikidata Lookup stand-in).

Entity-linking experiments in the paper use the Wikidata Lookup service for
candidate generation and an "Oracle" variant that counts an instance correct
whenever the ground truth appears in the candidate set.  This module provides
the equivalent: an in-memory index over every entity surface form, queried by
a noisy mention, returning up to ``k`` scored candidates.

Scoring combines exact-alias match, token overlap, and character-bigram Dice
similarity (robust to the typos the table synthesizer injects), plus a small
popularity prior so ambiguous surnames rank prominent entities first — the
same failure mode real lookup services exhibit.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.kb.knowledge_base import KnowledgeBase
from repro.text.tokenizer import basic_tokenize


def _bigrams(text: str) -> Set[str]:
    text = text.lower().replace(" ", "")
    if len(text) < 2:
        return {text} if text else set()
    return {text[i:i + 2] for i in range(len(text) - 1)}


def dice_similarity(a: str, b: str) -> float:
    """Character-bigram Dice coefficient in [0, 1]."""
    ba, bb = _bigrams(a), _bigrams(b)
    if not ba or not bb:
        return 0.0
    return 2.0 * len(ba & bb) / (len(ba) + len(bb))


@dataclass(frozen=True)
class LookupResult:
    entity_id: str
    score: float


class LookupService:
    """Candidate generation over a knowledge base.

    Parameters
    ----------
    kb:
        The knowledge base to index.
    popularity_weight:
        Weight of the log-popularity prior added to the string score.
    """

    def __init__(self, kb: KnowledgeBase, popularity_weight: float = 0.05):
        self.kb = kb
        self.popularity_weight = popularity_weight
        self._token_index: Dict[str, Set[str]] = defaultdict(set)
        self._exact_index: Dict[str, Set[str]] = defaultdict(set)
        self._popularity: Counter = Counter()

        for entity in kb.entities.values():
            for mention in entity.mentions():
                self._exact_index[mention.lower()].add(entity.entity_id)
                for token in basic_tokenize(mention):
                    self._token_index[token].add(entity.entity_id)
        for fact in kb.facts:
            self._popularity[fact.subject] += 1
            self._popularity[fact.object] += 1

    def _string_score(self, mention: str, entity_id: str) -> float:
        entity = self.kb.get(entity_id)
        mention_lower = mention.lower()
        best = 0.0
        for surface in entity.mentions():
            if surface.lower() == mention_lower:
                return 1.0
            best = max(best, dice_similarity(mention, surface))
        return best

    def lookup(self, mention: str, k: int = 50,
               min_score: float = 0.35) -> List[LookupResult]:
        """Return up to ``k`` candidates for ``mention``, best first.

        An empty list models the real service's empty-candidate-set failures
        for garbled mentions.
        """
        mention = mention.strip()
        if not mention:
            return []
        candidate_ids: Set[str] = set(self._exact_index.get(mention.lower(), ()))
        for token in basic_tokenize(mention):
            candidate_ids |= self._token_index.get(token, set())
        if not candidate_ids:
            # Typo fallback: scan entities sharing a character bigram prefix.
            prefix = mention.lower()[:2]
            candidate_ids = {
                entity_id
                for surface, ids in self._exact_index.items()
                if surface[:2] == prefix
                for entity_id in ids
            }

        scored: List[Tuple[float, str]] = []
        for entity_id in candidate_ids:
            string_score = self._string_score(mention, entity_id)
            if string_score < min_score:
                continue
            prior = self.popularity_weight * math.log1p(self._popularity[entity_id])
            scored.append((string_score + prior, entity_id))
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        return [LookupResult(entity_id, score) for score, entity_id in scored[:k]]

    def top1(self, mention: str) -> Optional[str]:
        """The plain "Wikidata Lookup" baseline: best candidate or None."""
        results = self.lookup(mention, k=1)
        return results[0].entity_id if results else None
