"""Trainable WordPiece-style tokenizer.

Training collects word frequencies from a corpus and keeps: (a) all single
characters seen (so segmentation never fails to [UNK] for known alphabets),
(b) frequent whole words, and (c) frequent ``##``-prefixed suffix pieces
harvested from words.  Tokenization lower-cases, splits on
whitespace/punctuation (punctuation becomes its own token, as in BERT's basic
tokenizer) and then greedily matches the longest known piece left-to-right.
"""

from __future__ import annotations

import json
import re
from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence

from repro.text.vocab import SPECIAL_TOKENS, UNK_ID, Vocabulary

_WORD_RE = re.compile(r"[a-z0-9]+|[^\sa-z0-9]")


def basic_tokenize(text: str) -> List[str]:
    """Lower-case and split into words and single punctuation marks."""
    return _WORD_RE.findall(text.lower())


class WordPieceTokenizer:
    """Greedy longest-match-first subword tokenizer.

    Use :meth:`train` to learn a vocabulary from raw text, then
    :meth:`tokenize` / :meth:`encode` at inference time.
    """

    def __init__(self, vocab: Optional[Vocabulary] = None,
                 max_word_chars: int = 32):
        self.vocab = vocab if vocab is not None else Vocabulary()
        self.max_word_chars = max_word_chars

    # -- training ---------------------------------------------------------
    @classmethod
    def train(cls, texts: Iterable[str], vocab_size: int = 8000,
              min_frequency: int = 2, max_word_chars: int = 32) -> "WordPieceTokenizer":
        """Learn a WordPiece vocabulary from ``texts``.

        Whole words and suffix pieces compete for the remaining slots by
        frequency after all seen characters are admitted.
        """
        word_counts: Counter = Counter()
        char_counts: Counter = Counter()
        for text in texts:
            for word in basic_tokenize(text):
                word_counts[word] += 1
                char_counts.update(word)

        piece_counts: Counter = Counter()
        for word, count in word_counts.items():
            if len(word) < 2:
                continue
            # Harvest suffix continuation pieces of length 2..4.
            for start in range(1, len(word)):
                for width in range(2, 5):
                    piece = word[start:start + width]
                    if len(piece) == width:
                        piece_counts[f"##{piece}"] += count

        vocab = Vocabulary()
        # Characters first (both bare and continuation form) so any
        # lowercase-latin/digit word can always be segmented, plus any extra
        # characters actually seen in the corpus.
        alphabet = set("abcdefghijklmnopqrstuvwxyz0123456789") | set(char_counts)
        for char in sorted(alphabet):
            vocab.add(char)
            vocab.add(f"##{char}")

        candidates = Counter()
        for word, count in word_counts.items():
            if count >= min_frequency:
                candidates[word] = count
        for piece, count in piece_counts.items():
            if count >= min_frequency * 4:  # suffixes must be clearly reusable
                candidates[piece] = count
        for token, _count in candidates.most_common():
            if len(vocab) >= vocab_size:
                break
            vocab.add(token)
        return cls(vocab, max_word_chars=max_word_chars)

    # -- inference ----------------------------------------------------------
    def _wordpiece(self, word: str) -> List[str]:
        if len(word) > self.max_word_chars:
            return ["[UNK]"]
        pieces: List[str] = []
        start = 0
        while start < len(word):
            end = len(word)
            piece = None
            while start < end:
                candidate = word[start:end]
                if start > 0:
                    candidate = f"##{candidate}"
                if candidate in self.vocab:
                    piece = candidate
                    break
                end -= 1
            if piece is None:
                return ["[UNK]"]
            pieces.append(piece)
            start = end
        return pieces

    def tokenize(self, text: str) -> List[str]:
        """Split ``text`` into WordPiece tokens."""
        tokens: List[str] = []
        for word in basic_tokenize(text):
            tokens.extend(self._wordpiece(word))
        return tokens

    def encode(self, text: str, max_length: Optional[int] = None) -> List[int]:
        """Tokenize and map to ids, optionally truncating to ``max_length``."""
        ids = [self.vocab.id_of(t) for t in self.tokenize(text)]
        if max_length is not None:
            ids = ids[:max_length]
        return ids

    def decode(self, ids: Sequence[int]) -> str:
        """Best-effort inverse of :meth:`encode` (for debugging/examples)."""
        words: List[str] = []
        for token_id in ids:
            token = self.vocab.token_of(token_id)
            if token in SPECIAL_TOKENS:
                continue
            if token.startswith("##") and words:
                words[-1] += token[2:]
            else:
                words.append(token)
        return " ".join(words)

    @property
    def unk_id(self) -> int:
        return UNK_ID

    # -- persistence ----------------------------------------------------
    def to_json(self) -> str:
        return json.dumps({
            "vocab": json.loads(self.vocab.to_json()),
            "max_word_chars": self.max_word_chars,
        })

    @classmethod
    def from_json(cls, payload: str) -> "WordPieceTokenizer":
        blob: Dict = json.loads(payload)
        vocab = Vocabulary.from_json(json.dumps(blob["vocab"]))
        return cls(vocab, max_word_chars=blob["max_word_chars"])
