"""Vocabulary containers for tokens and entities.

Two id spaces exist in TURL (Section 5.2): a WordPiece token vocabulary for
table metadata and a separate entity vocabulary built from the training
corpus, with entities appearing only once removed.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, Iterable, List, Optional

#: Special tokens shared by the token and entity vocabularies.  Order fixes
#: their ids: PAD=0, UNK=1, MASK=2, CLS=3, SEP=4.
SPECIAL_TOKENS = ("[PAD]", "[UNK]", "[MASK]", "[CLS]", "[SEP]")

PAD_ID = 0
UNK_ID = 1
MASK_ID = 2
CLS_ID = 3
SEP_ID = 4


class Vocabulary:
    """A bidirectional string <-> id mapping with reserved special tokens."""

    def __init__(self, tokens: Iterable[str] = ()):
        self._token_to_id: Dict[str, int] = {}
        self._id_to_token: List[str] = []
        for special in SPECIAL_TOKENS:
            self.add(special)
        for token in tokens:
            self.add(token)

    def add(self, token: str) -> int:
        """Add ``token`` if new; return its id either way."""
        if token in self._token_to_id:
            return self._token_to_id[token]
        token_id = len(self._id_to_token)
        self._token_to_id[token] = token_id
        self._id_to_token.append(token)
        return token_id

    def id_of(self, token: str) -> int:
        """Return the id of ``token``, or the UNK id if absent."""
        return self._token_to_id.get(token, UNK_ID)

    def token_of(self, token_id: int) -> str:
        return self._id_to_token[token_id]

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __iter__(self):
        return iter(self._id_to_token)

    # -- persistence -----------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(self._id_to_token)

    @classmethod
    def from_json(cls, payload: str) -> "Vocabulary":
        tokens = json.loads(payload)
        if tokens[: len(SPECIAL_TOKENS)] != list(SPECIAL_TOKENS):
            raise ValueError("vocabulary payload missing special-token prefix")
        vocab = cls.__new__(cls)
        vocab._id_to_token = list(tokens)
        vocab._token_to_id = {token: i for i, token in enumerate(tokens)}
        return vocab

    @classmethod
    def build(cls, token_iter: Iterable[str], min_frequency: int = 1,
              max_size: Optional[int] = None) -> "Vocabulary":
        """Build a vocabulary from a token stream by frequency."""
        counts = Counter(token_iter)
        kept = [t for t, c in counts.most_common() if c >= min_frequency]
        if max_size is not None:
            kept = kept[: max(0, max_size - len(SPECIAL_TOKENS))]
        return cls(kept)


class EntityVocabulary(Vocabulary):
    """Entity id space.

    The paper removes entities that appear only once in the training corpus
    (Section 5.2); :meth:`build_from_counts` mirrors that with
    ``min_frequency=2`` as the default.
    """

    @classmethod
    def build_from_counts(cls, counts: Counter, min_frequency: int = 2) -> "EntityVocabulary":
        kept = [e for e, c in counts.most_common() if c >= min_frequency]
        return cls(kept)
