"""Text substrate: tokenization and vocabularies.

The paper builds its token vocabulary with the BERT tokenizer (30 522
WordPiece tokens).  We implement a trainable WordPiece-style tokenizer from
scratch: a vocabulary of whole words, subword continuation pieces (``##x``)
and characters is learned from a corpus, and text is tokenized by greedy
longest-match-first segmentation, exactly the inference algorithm BERT uses.
"""

from repro.text.tokenizer import WordPieceTokenizer, basic_tokenize
from repro.text.vocab import Vocabulary, EntityVocabulary, SPECIAL_TOKENS

__all__ = [
    "WordPieceTokenizer",
    "basic_tokenize",
    "Vocabulary",
    "EntityVocabulary",
    "SPECIAL_TOKENS",
]
