"""Extensions beyond the paper's evaluated scope.

The paper's conclusion names two future-work directions; both are
implemented here, plus one extra baseline the follow-up literature compares
against:

- :mod:`repro.ext.numeric` — *"focusing on other types of knowledge such as
  numerical attributes"*: numeric-cell parsing, quantile binning, and a
  Masked Value Recovery head that predicts a masked numeric cell's bin from
  table context.
- :mod:`repro.ext.kb_injection` — *"incorporating the rich information
  contained in an external KB into pre-training"*: an ERNIE-style auxiliary
  objective that predicts the KB relation holding between same-row entity
  pairs during pre-training.
- :mod:`repro.ext.tapas_baseline` — a TAPAS-style flat-text table encoder
  (all cells as tokens with row/column embeddings, full attention, no entity
  vocabulary), a strong comparison point for the structure-aware design.
"""

from repro.ext.numeric import NumericBinner, TURLValuePredictor, build_numeric_instances
from repro.ext.kb_injection import KBInjectionPretrainer, RelationInjectionHead
from repro.ext.tapas_baseline import TapasStyleColumnTyper

__all__ = [
    "NumericBinner",
    "TURLValuePredictor",
    "build_numeric_instances",
    "KBInjectionPretrainer",
    "RelationInjectionHead",
    "TapasStyleColumnTyper",
]
