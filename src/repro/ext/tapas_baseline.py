"""TAPAS-style flat-text table encoder (extra baseline).

Follow-up work on table pre-training (TAPAS, TaBERT) linearizes *all* cell
text into one token sequence with learned row/column id embeddings and full
(unmasked) self-attention — no entity vocabulary, no visibility matrix.
This module implements that design at our scale and trains it from scratch
for column type annotation, providing a second "how much do TURL's entity
embeddings + structure mask buy" comparison alongside Sherlock.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.data.table import Table
from repro.nn import (
    Adam,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    Tensor,
    TransformerEncoder,
    binary_cross_entropy_logits,
    eval_mode,
    no_grad,
)
from repro.tasks.column_type import ColumnInstance, ColumnTypeDataset
from repro.tasks.metrics import PrecisionRecallF1, multilabel_micro_prf
from repro.text.tokenizer import WordPieceTokenizer
from repro.text.vocab import PAD_ID


class TapasStyleColumnTyper(Module):
    """Flat-text table encoder with row/column id embeddings."""

    def __init__(self, tokenizer: WordPieceTokenizer, n_types: int,
                 dim: int = 64, num_layers: int = 2, num_heads: int = 4,
                 intermediate_dim: int = 128, max_tokens: int = 96,
                 max_rows: int = 12, max_columns: int = 8,
                 max_cell_tokens: int = 3, seed: int = 0):
        super().__init__()
        self.tokenizer = tokenizer
        self.max_tokens = max_tokens
        self.max_rows = max_rows
        self.max_columns = max_columns
        self.max_cell_tokens = max_cell_tokens
        rng = np.random.default_rng(seed)
        vocab_size = len(tokenizer.vocab)
        self.word = Embedding(vocab_size, dim, rng)
        self.row_embedding = Embedding(max_rows + 2, dim, rng)     # 0 = metadata
        self.column_embedding = Embedding(max_columns + 2, dim, rng)
        self.position = Embedding(max_tokens, dim, rng)
        self.norm = LayerNorm(dim)
        self.encoder = TransformerEncoder(num_layers, dim, num_heads,
                                          intermediate_dim, rng)
        self.classifier = Linear(dim, n_types, rng)

    # -- flattening --------------------------------------------------------
    def _flatten(self, table: Table) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Dict[int, List[int]]]:
        """Token ids + row/col ids + per-column token positions."""
        ids: List[int] = []
        rows: List[int] = []
        cols: List[int] = []
        column_positions: Dict[int, List[int]] = {}

        def push(token_ids: List[int], row: int, col: int) -> List[int]:
            taken = []
            for token in token_ids:
                if len(ids) >= self.max_tokens:
                    break
                taken.append(len(ids))
                ids.append(token)
                rows.append(row)
                cols.append(col)
            return taken

        push(self.tokenizer.encode(table.caption_text(), max_length=16), 0, 0)
        n_cols = min(table.n_columns, self.max_columns)
        for col in range(n_cols):
            positions = push(
                self.tokenizer.encode(table.columns[col].header, max_length=3),
                0, col + 1)
            column_positions.setdefault(col, []).extend(positions)
        n_rows = min(table.n_rows, self.max_rows)
        for row in range(n_rows):
            for col in range(n_cols):
                cell = table.columns[col].cells[row]
                text = cell.mention if table.columns[col].is_entity else str(cell)
                positions = push(
                    self.tokenizer.encode(text, max_length=self.max_cell_tokens),
                    row + 1, col + 1)
                column_positions.setdefault(col, []).extend(positions)
        if not ids:
            ids, rows, cols = [PAD_ID], [0], [0]
        return (np.asarray(ids), np.asarray(rows), np.asarray(cols),
                column_positions)

    def _encode(self, table: Table):
        ids, rows, cols, column_positions = self._flatten(table)
        hidden = (self.word(ids[None, :])
                  + self.row_embedding(rows[None, :])
                  + self.column_embedding(cols[None, :])
                  + self.position(np.arange(len(ids))[None, :]))
        hidden = self.encoder(self.norm(hidden))
        return hidden[0], column_positions

    def column_logits(self, table: Table, cols: Sequence[int]) -> Tensor:
        from repro.nn import stack

        hidden, column_positions = self._encode(table)
        pooled = []
        for col in cols:
            positions = column_positions.get(col, [])
            if positions:
                pooled.append(hidden[np.asarray(positions)].mean(axis=0))
            else:
                pooled.append(hidden.mean(axis=0))
        return self.classifier(stack(pooled, axis=0))

    # -- training / evaluation: mirrors the TURL annotator ------------------
    def fit(self, dataset: ColumnTypeDataset, epochs: int = 3,
            learning_rate: float = 1e-3, max_instances: Optional[int] = None,
            seed: int = 0) -> List[float]:
        rng = np.random.default_rng(seed)
        optimizer = Adam(self.parameters(), learning_rate=learning_rate)
        instances = list(dataset.train)
        if max_instances is not None and len(instances) > max_instances:
            chosen = rng.choice(len(instances), size=max_instances, replace=False)
            instances = [instances[int(i)] for i in chosen]
        by_table: Dict[str, List[ColumnInstance]] = {}
        for instance in instances:
            by_table.setdefault(instance.table.table_id, []).append(instance)
        table_ids = sorted(by_table)

        self.train()
        epoch_losses = []
        for _ in range(epochs):
            order = rng.permutation(len(table_ids))
            losses = []
            for index in order:
                group = by_table[table_ids[int(index)]]
                labels = np.stack([dataset.label_vector(g) for g in group])
                logits = self.column_logits(group[0].table, [g.col for g in group])
                loss = binary_cross_entropy_logits(logits, labels)
                self.zero_grad()
                loss.backward()
                optimizer.step()
                losses.append(loss.item())
            epoch_losses.append(float(np.mean(losses)))
        return epoch_losses

    def predict(self, instances: Sequence[ColumnInstance],
                dataset: ColumnTypeDataset, threshold: float = 0.5) -> List[Set[str]]:
        predictions: List[Set[str]] = []
        with eval_mode(self), no_grad():
            for instance in instances:
                logits = self.column_logits(instance.table, [instance.col]).numpy()[0]
                probabilities = 1.0 / (1.0 + np.exp(-logits))
                predicted = {dataset.type_names[j]
                             for j in np.where(probabilities >= threshold)[0]}
                if not predicted:
                    predicted = {dataset.type_names[int(probabilities.argmax())]}
                predictions.append(predicted)
        return predictions

    def evaluate(self, instances: Sequence[ColumnInstance],
                 dataset: ColumnTypeDataset) -> PrecisionRecallF1:
        predictions = self.predict(instances, dataset)
        return multilabel_micro_prf(predictions, [i.types for i in instances])
