"""ERNIE-style KB injection into pre-training (paper future work #2).

The related-work section highlights ERNIE [39], which injects KB knowledge
into a pre-trained language model.  This extension does the analogous thing
for TURL: during pre-training, an auxiliary **relation prediction** head is
trained with distant supervision from the KB — for pairs of linked entities
appearing in the same row, predict which KB relation (if any) holds between
them from their contextualized representations.

The result is a pre-trained encoder whose entity representations carry
explicit relational structure, which transfers to relation extraction
(see ``benchmarks/bench_ext_kb_injection.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.linearize import TableInstance
from repro.core.pretrain import Pretrainer
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.schema import RELATIONS
from repro.nn import Linear, Module, Tensor, concat, cross_entropy_logits, stack

#: class id reserved for "no relation holds" pairs.
NO_RELATION = 0


class RelationInjectionHead(Module):
    """Classifies the KB relation between two contextualized entity states."""

    def __init__(self, dim: int, n_relations: int, rng: np.random.Generator):
        super().__init__()
        self.pair_project = Linear(2 * dim, dim, rng)
        self.classifier = Linear(dim, n_relations + 1, rng)  # +1 for NO_RELATION

    def forward(self, left: Tensor, right: Tensor) -> Tensor:
        """(n_pairs, n_relations+1) logits for stacked pair representations."""
        pair = concat([left, right], axis=-1)
        return self.classifier(self.pair_project(pair).gelu())


class KBInjectionPretrainer(Pretrainer):
    """Pre-trainer with the auxiliary relation-prediction objective.

    The joint loss becomes ``MLM + MER + λ · relation``.  Pair labels are
    built once per batch by distant supervision: every same-row linked pair
    whose entities stand in a KB relation is a positive; an equal number of
    unrelated same-row pairs are negatives.
    """

    def __init__(self, model, instances: Sequence[TableInstance],
                 candidate_builder, kb: KnowledgeBase,
                 config=None, seed: int = 0, use_visibility: bool = True,
                 relation_weight: float = 0.5, max_pairs_per_batch: int = 48):
        super().__init__(model, instances, candidate_builder, config=config,
                         seed=seed, use_visibility=use_visibility)
        self.kb = kb
        self.relation_weight = relation_weight
        self.max_pairs_per_batch = max_pairs_per_batch
        self.relation_names = sorted(RELATIONS)
        self._relation_index = {name: i + 1 for i, name in enumerate(self.relation_names)}
        rng = np.random.default_rng(seed + 17)
        self.relation_head = RelationInjectionHead(
            model.config.dim, len(self.relation_names), rng)
        # The auxiliary head's parameters must be optimized together with the
        # model's; rebuild the optimizer lazily with the union.
        self._kb_id_of: Dict[int, Optional[str]] = {}
        self.relation_losses: List[float] = []

    def _ensure_optimizer(self, total_steps: int) -> None:
        if self.optimizer is None:
            from repro.nn import Adam, LinearDecaySchedule

            schedule = LinearDecaySchedule(self.config.learning_rate,
                                           total_steps=max(1, total_steps),
                                           final_fraction=0.1)
            parameters = self.model.parameters() + self.relation_head.parameters()
            self.optimizer = Adam(parameters,
                                  learning_rate=self.config.learning_rate,
                                  weight_decay=self.config.weight_decay,
                                  schedule=schedule)

    # -- distant supervision -------------------------------------------------
    def _pair_labels(self, batch: Dict[str, np.ndarray],
                     kb_ids: List[List[Optional[str]]],
                     rng: np.random.Generator) -> List[Tuple[int, int, int, int]]:
        """(batch index, position a, position b, relation class) tuples."""
        positives: List[Tuple[int, int, int, int]] = []
        negatives: List[Tuple[int, int, int, int]] = []
        rows = batch["entity_row"]
        mask = batch["entity_mask"]
        for b in range(rows.shape[0]):
            ids = kb_ids[b]
            for i in range(len(ids)):
                if not mask[b, i] or ids[i] is None or rows[b, i] < 0:
                    continue
                for j in range(len(ids)):
                    if j == i or not mask[b, j] or ids[j] is None:
                        continue
                    if rows[b, i] != rows[b, j]:
                        continue
                    relations = self.kb.relations_between(ids[i], ids[j])
                    if relations:
                        positives.append(
                            (b, i, j, self._relation_index[relations[0]]))
                    else:
                        negatives.append((b, i, j, NO_RELATION))
        if not positives:
            return []
        n = min(len(positives), self.max_pairs_per_batch // 2)
        chosen_pos = [positives[int(k)] for k in
                      rng.choice(len(positives), size=n, replace=False)]
        if negatives:
            m = min(len(negatives), n)
            chosen_neg = [negatives[int(k)] for k in
                          rng.choice(len(negatives), size=m, replace=False)]
        else:
            chosen_neg = []
        return chosen_pos + chosen_neg

    # -- training step ----------------------------------------------------
    def step(self, batch: Dict[str, np.ndarray],
             kb_ids: Optional[List[List[Optional[str]]]] = None) -> Dict[str, float]:
        """One optimization step with the auxiliary loss.

        ``kb_ids`` carries per-position KB entity ids; when omitted the step
        degrades gracefully to the base objectives.
        """
        if kb_ids is None:
            result = super().step(batch)
            result["relation"] = 0.0
            self.relation_losses.append(0.0)
            return result

        masked = self.masking.apply(batch, self.rng)
        token_hidden, entity_hidden = self.model.encode(
            masked.batch, use_visibility=self.use_visibility)

        from repro.core.masking import IGNORE
        from repro.nn import clip_grad_norm, masked_cross_entropy

        losses: Dict[str, float] = {"mlm": 0.0, "mer": 0.0, "relation": 0.0}
        total = None
        if masked.n_mlm:
            mlm_logits = self.model.mlm_logits(token_hidden)
            mlm_loss = masked_cross_entropy(
                mlm_logits, np.maximum(masked.mlm_labels, 0),
                masked.mlm_labels != IGNORE)
            losses["mlm"] = mlm_loss.item()
            total = mlm_loss
        if masked.n_mer:
            candidate_ids, remapped = self.candidates.build(
                batch["entity_ids"], masked.mer_labels, self.rng)
            mer_logits = self.model.mer_logits(entity_hidden, candidate_ids)
            mer_loss = masked_cross_entropy(
                mer_logits, np.maximum(remapped, 0), remapped != IGNORE)
            losses["mer"] = mer_loss.item()
            total = mer_loss if total is None else total + mer_loss

        pairs = self._pair_labels(batch, kb_ids, self.rng)
        if pairs:
            lefts = stack([entity_hidden[b, i] for b, i, _, _ in pairs], axis=0)
            rights = stack([entity_hidden[b, j] for b, _, j, _ in pairs], axis=0)
            labels = np.asarray([label for _, _, _, label in pairs])
            relation_logits = self.relation_head(lefts, rights)
            relation_loss = cross_entropy_logits(relation_logits, labels)
            losses["relation"] = relation_loss.item()
            weighted = relation_loss * self.relation_weight
            total = weighted if total is None else total + weighted
        self.relation_losses.append(losses["relation"])

        if total is None:
            return {"loss": 0.0, **losses}
        self.model.zero_grad()
        self.relation_head.zero_grad()
        total.backward()
        clip_grad_norm(self.model.parameters() + self.relation_head.parameters(),
                       self.config.gradient_clip)
        self.optimizer.step()
        losses["loss"] = total.item()
        return losses

    # -- training loop with kb ids threaded through ------------------------
    def train_with_kb(self, n_epochs: int = 1) -> List[float]:
        """Pre-train with the auxiliary objective; returns per-step losses."""
        from repro.core.batching import collate

        steps_per_epoch = max(1, int(np.ceil(len(self.instances)
                                             / self.config.batch_size)))
        self._ensure_optimizer(steps_per_epoch * n_epochs)
        self.model.train()
        losses: List[float] = []
        for _ in range(n_epochs):
            order = self.rng.permutation(len(self.instances))
            for start in range(0, len(order), self.config.batch_size):
                chunk = [self.instances[int(i)]
                         for i in order[start:start + self.config.batch_size]]
                batch = collate(chunk)
                kb_ids = [self._padded_kb_ids(instance, batch["entity_ids"].shape[1])
                          for instance in chunk]
                result = self.step(batch, kb_ids=kb_ids)
                losses.append(result["loss"])
        return losses

    @staticmethod
    def _padded_kb_ids(instance: TableInstance, width: int) -> List[Optional[str]]:
        ids = list(instance.entity_kb_ids)
        return ids + [None] * (width - len(ids))
