"""Numerical attributes (paper future work #1).

TURL's input drops text-column cell values entirely; numeric columns (years,
counts) contribute only their headers.  This extension adds the machinery to
model them:

- :func:`parse_numeric` — robust numeric parsing of cell strings;
- :class:`NumericBinner` — quantile binning fitted on a corpus, turning a
  continuous value into a discrete class usable by a softmax head;
- :func:`build_numeric_instances` — extract (table, row, column, value)
  prediction instances from numeric text columns;
- :class:`TURLValuePredictor` — a fine-tuned head that recovers a masked
  numeric cell's bin from the row's contextualized entity representations
  (Masked Value Recovery, the numeric analogue of MER).

The design follows the paper's own recipe: reuse the pre-trained encoder,
attach a small task head, fine-tune briefly.
"""

from __future__ import annotations

import re
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.batching import collate
from repro.core.linearize import Linearizer
from repro.core.model import TURLModel
from repro.data.corpus import TableCorpus
from repro.data.table import Table
from repro.nn import Adam, Linear, Module, Tensor, cross_entropy_logits, eval_mode, no_grad

_NUMERIC_RE = re.compile(r"-?\d+(?:[.,]\d+)?")


def parse_numeric(text: str) -> Optional[float]:
    """Extract the first numeric value from a cell string, or None.

    Handles thousands separators and decimal commas ("1,234" -> 1234.0,
    "3,5" -> 3.5 heuristically by digit count).
    """
    if not text:
        return None
    match = _NUMERIC_RE.search(text.replace(" ", ""))
    if match is None:
        return None
    raw = match.group(0)
    if "," in raw:
        integer, _, fraction = raw.partition(",")
        if len(fraction) == 3 and "." not in raw:
            raw = integer + fraction  # thousands separator
        else:
            raw = integer + "." + fraction
    try:
        return float(raw)
    except ValueError:
        return None


def is_numeric_column(values: Sequence[str], threshold: float = 0.8) -> bool:
    """True when at least ``threshold`` of non-empty cells parse as numbers."""
    parsed = [parse_numeric(v) for v in values if v]
    if not parsed:
        return False
    return sum(1 for p in parsed if p is not None) / len(parsed) >= threshold


class NumericBinner:
    """Quantile binning of continuous values into ``n_bins`` classes."""

    def __init__(self, n_bins: int = 8):
        if n_bins < 2:
            raise ValueError("need at least two bins")
        self.n_bins = n_bins
        self.edges: Optional[np.ndarray] = None

    def fit(self, values: Sequence[float]) -> "NumericBinner":
        values = np.asarray([v for v in values if v is not None], dtype=float)
        if values.size < self.n_bins:
            raise ValueError(
                f"need at least {self.n_bins} values to fit, got {values.size}")
        quantiles = np.linspace(0, 1, self.n_bins + 1)[1:-1]
        self.edges = np.unique(np.quantile(values, quantiles))
        return self

    @property
    def n_classes(self) -> int:
        if self.edges is None:
            raise RuntimeError("binner is not fitted")
        return len(self.edges) + 1

    def transform(self, value: float) -> int:
        if self.edges is None:
            raise RuntimeError("binner is not fitted")
        return int(np.searchsorted(self.edges, value, side="right"))

    def bin_range(self, bin_id: int) -> Tuple[float, float]:
        """(low, high) bounds of a bin (±inf at the extremes)."""
        lows = np.concatenate([[-np.inf], self.edges])
        highs = np.concatenate([self.edges, [np.inf]])
        return float(lows[bin_id]), float(highs[bin_id])


@dataclass
class NumericInstance:
    """One masked-value-recovery query."""

    table: Table
    col: int
    row: int
    value: float


def build_numeric_instances(corpus: TableCorpus,
                            max_per_table: int = 4) -> List[NumericInstance]:
    """Extract numeric cells from text columns (e.g. Year) across a corpus."""
    instances = []
    for table in corpus:
        taken = 0
        for col, column in enumerate(table.columns):
            if column.is_entity:
                continue
            values = [cell for cell in column.cells]
            if not is_numeric_column(values):
                continue
            for row, cell in enumerate(values):
                parsed = parse_numeric(cell)
                if parsed is None or taken >= max_per_table:
                    continue
                instances.append(NumericInstance(table, col, row, parsed))
                taken += 1
    return instances


class TURLValuePredictor(Module):
    """Masked Value Recovery: predict a numeric cell's bin from context.

    The row's entity representations (the subject entity and its row
    neighbors) are pooled and classified over the binner's classes — e.g.
    "which era is this film from", answerable from the director/actors.
    """

    def __init__(self, model: TURLModel, linearizer: Linearizer,
                 binner: NumericBinner, seed: int = 0):
        super().__init__()
        self.model = model
        self.linearizer = linearizer
        self.binner = binner
        rng = np.random.default_rng(seed)
        self.classifier = Linear(model.config.dim, binner.n_classes, rng)

    def _row_hidden(self, instance: NumericInstance) -> Tensor:
        encoded = self.linearizer.encode(instance.table)
        batch = collate([encoded])
        _, entity_hidden = self.model.encode(batch)
        row_positions = np.where(encoded.entity_row == instance.row)[0]
        if len(row_positions) == 0:  # fall back to the whole table
            row_positions = np.arange(encoded.n_entities)
        return entity_hidden[0][row_positions].mean(axis=0)

    def logits(self, instance: NumericInstance) -> Tensor:
        return self.classifier(self._row_hidden(instance))

    def finetune(self, instances: Sequence[NumericInstance], epochs: int = 2,
                 batch_size: int = 1, lr: float = 1e-3, seed: int = 0,
                 spec=None, max_instances: Optional[int] = None,
                 learning_rate: Optional[float] = None) -> List[float]:
        """Hand-rolled loop with the canonical keyword set; an explicit
        ``spec`` supplies ``epochs``/``lr``/``seed``/``max_instances``, and
        ``learning_rate`` is a deprecated alias of ``lr``.  The loop steps
        one instance at a time, so ``batch_size`` must stay 1.
        """
        if learning_rate is not None:
            warnings.warn("finetune(learning_rate=...) is deprecated; "
                          "pass lr=...", DeprecationWarning, stacklevel=2)
            lr = learning_rate
        if spec is not None:
            epochs, lr, seed = spec.epochs, spec.learning_rate, spec.seed
            max_instances = spec.max_items
            batch_size = spec.batch_size
        if batch_size != 1:
            raise ValueError("TURLValuePredictor.finetune steps one instance "
                             "at a time; batch_size must be 1")
        rng = np.random.default_rng(seed)
        optimizer = Adam(self.parameters(), learning_rate=lr)
        instances = list(instances)
        if max_instances is not None and len(instances) > max_instances:
            chosen = rng.choice(len(instances), size=max_instances, replace=False)
            instances = [instances[int(i)] for i in chosen]
        self.model.train()
        epoch_losses = []
        for _ in range(epochs):
            order = rng.permutation(len(instances))
            losses = []
            for index in order:
                instance = instances[int(index)]
                target = np.asarray([self.binner.transform(instance.value)])
                loss = cross_entropy_logits(self.logits(instance).reshape(1, -1),
                                            target)
                self.zero_grad()
                loss.backward()
                optimizer.step()
                losses.append(loss.item())
            epoch_losses.append(float(np.mean(losses)) if losses else 0.0)
        return epoch_losses

    def predict_bin(self, instance: NumericInstance) -> int:
        with eval_mode(self.model), no_grad():
            return int(self.logits(instance).data.argmax())

    def accuracy(self, instances: Sequence[NumericInstance]) -> float:
        if not instances:
            return 0.0
        hits = sum(1 for instance in instances
                   if self.predict_bin(instance) == self.binner.transform(instance.value))
        return hits / len(instances)

    def within_one_bin(self, instances: Sequence[NumericInstance]) -> float:
        """Accuracy allowing off-by-one bins (ordinal tolerance)."""
        if not instances:
            return 0.0
        hits = 0
        with eval_mode(self.model), no_grad():
            for instance in instances:
                predicted = int(self.logits(instance).data.argmax())
                truth = self.binner.transform(instance.value)
                hits += abs(predicted - truth) <= 1
        return hits / len(instances)
