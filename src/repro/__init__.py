"""TURL: Table Understanding through Representation Learning — reproduction.

A from-scratch, pure-NumPy reproduction of Deng et al., VLDB 2020: the
structure-aware Transformer encoder for relational Web tables, Masked Entity
Recovery pre-training, and the six-task TUBE benchmark, together with every
substrate the paper depends on (autograd, tokenizer, knowledge base, table
corpus, retrieval, baselines).

Quick start::

    from repro import build_context, TURLConfig, WorldConfig, SynthesisConfig

    context = build_context(WorldConfig(seed=1),
                            SynthesisConfig(seed=2, n_tables=300),
                            TURLConfig(), pretrain_epochs=8)

See ``examples/`` for complete workflows and ``DESIGN.md`` for the system
inventory.
"""

from repro.config import TURLConfig
from repro.core.context import TURLContext, build_context
from repro.core.model import TURLModel
from repro.data.synthesis import SynthesisConfig
from repro.kb.generator import WorldConfig, generate_world

__version__ = "1.0.0"

__all__ = [
    "TURLConfig",
    "TURLContext",
    "TURLModel",
    "build_context",
    "SynthesisConfig",
    "WorldConfig",
    "generate_world",
    "__version__",
]
