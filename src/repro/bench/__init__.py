"""Dependency-free micro/end-to-end benchmark harness for the hot paths.

The repo's north star is "as fast as the hardware allows"; this package
makes that measurable and regression-proof:

- :mod:`repro.bench.runner` — :class:`BenchCase` (setup / timed run /
  optional reference twin), the warmup-then-repeat timing protocol on
  :func:`repro.obs.clock.perf_counter`, and peak traced-allocation bytes
  (ndarray-dominated) via ``tracemalloc``;
- :mod:`repro.bench.cases` — the registry of default cases covering every
  optimized kernel: visibility construction (vectorized vs. index-by-index
  reference, plus the structure-triple LRU cache), MER candidate-set
  assembly, the additive attention mask, length-bucketed collation, and
  end-to-end pre-training steps/sec;
- :mod:`repro.bench.reference` — :func:`reference_mode`, which swaps every
  optimized kernel for its committed ``_reference_*`` twin so end-to-end
  speedups are measured against real, runnable baselines;
- :mod:`repro.bench.report` — the ``BENCH_<name>.json`` reporter and a
  human-readable text table;
- :mod:`repro.bench.compare` — the regression gate: diff a fresh report
  against a committed ``BENCH_*.json`` baseline on the machine-independent
  speedup ratio with per-case tolerance (``repro.cli bench --compare-to``,
  enforced by the CI ``bench-gate`` job).

Every optimization measured here is bit-identical to its reference (proven
by ``tests/bench/test_equivalence.py``); the benchmark exists to show the
speed difference, not a behaviour difference.  Run via
``python -m repro.cli bench --json BENCH_dev.json``.
"""

from repro.bench.runner import BenchCase, CaseResult, run_cases
from repro.bench.cases import default_cases
from repro.bench.compare import (
    CaseComparison,
    ComparisonReport,
    compare_report_files,
    compare_reports,
    format_comparison,
)
from repro.bench.reference import reference_mode
from repro.bench.report import format_report, report_to_dict, write_report

__all__ = [
    "BenchCase",
    "CaseResult",
    "run_cases",
    "default_cases",
    "reference_mode",
    "format_report",
    "report_to_dict",
    "write_report",
    "CaseComparison",
    "ComparisonReport",
    "compare_reports",
    "compare_report_files",
    "format_comparison",
]
