"""Regression gate: diff a fresh bench report against a committed baseline.

:func:`compare_reports` pairs cases by name and compares the
machine-independent **speedup** ratio (optimized vs. in-repo reference
implementation) when both reports carry one, falling back to raw
throughput otherwise.  Speedup is the right cross-commit metric: absolute
seconds shift with the host, but the optimized/reference ratio is measured
on the same machine in the same run, so a drop means the optimized path
itself got slower.

A case regresses when ``current / baseline < 1 - tolerance`` (default 5%).
``repro.cli bench --compare-to BENCH_pr5.json`` runs a fresh bench, prints
the comparison table and exits non-zero on any regression — the CI
``bench-gate`` job.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

DEFAULT_TOLERANCE = 0.05


@dataclass
class CaseComparison:
    """One case's baseline-vs-current verdict."""

    name: str
    #: which number was compared: "speedup" or "throughput"
    metric: str
    baseline: float
    current: float
    tolerance: float

    @property
    def ratio(self) -> float:
        """current / baseline; > 1 means the case got better."""
        return self.current / self.baseline if self.baseline else 0.0

    @property
    def change(self) -> float:
        """Signed fractional change (-0.08 = 8% worse)."""
        return self.ratio - 1.0

    @property
    def regressed(self) -> bool:
        return self.ratio < 1.0 - self.tolerance

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "ratio": self.ratio,
            "change": self.change,
            "tolerance": self.tolerance,
            "regressed": self.regressed,
        }


@dataclass
class ComparisonReport:
    """Every paired case plus cases only one report knows about."""

    baseline_name: str
    current_name: str
    cases: List[CaseComparison] = field(default_factory=list)
    #: baseline cases the current run did not execute (e.g. ``--only``)
    missing: List[str] = field(default_factory=list)
    #: current cases the baseline has no entry for (new benchmarks)
    added: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[CaseComparison]:
        return [case for case in self.cases if case.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> Dict[str, Any]:
        return {
            "baseline": self.baseline_name,
            "current": self.current_name,
            "ok": self.ok,
            "cases": [case.to_dict() for case in self.cases],
            "missing": self.missing,
            "added": self.added,
        }


def _case_metric(case: Dict[str, Any]) -> Optional[Dict[str, float]]:
    """Pick the comparison metric for one case dict (prefer speedup)."""
    speedup = case.get("speedup")
    if speedup:
        return {"metric": "speedup", "value": float(speedup)}
    throughput = case.get("throughput")
    if throughput:
        return {"metric": "throughput", "value": float(throughput)}
    return None


def compare_reports(current: Dict[str, Any], baseline: Dict[str, Any],
                    tolerance: float = DEFAULT_TOLERANCE,
                    per_case: Optional[Dict[str, float]] = None
                    ) -> ComparisonReport:
    """Diff two ``report_to_dict`` payloads case by case.

    ``per_case`` overrides the tolerance for individual case names (e.g.
    ``{"pretrain_steps": 0.02}`` to hold the training hot path to 2%).
    Cases are compared on speedup when **both** sides carry one, on
    throughput when both carry that instead, and skipped (reported under
    ``missing``/``added``) when only one side knows the case.
    """
    per_case = per_case or {}
    current_cases = {c["name"]: c for c in current.get("cases", [])}
    baseline_cases = {c["name"]: c for c in baseline.get("cases", [])}
    report = ComparisonReport(
        baseline_name=str(baseline.get("bench", "?")),
        current_name=str(current.get("bench", "?")))
    for name in sorted(baseline_cases):
        if name not in current_cases:
            report.missing.append(name)
            continue
        base = _case_metric(baseline_cases[name])
        cur = _case_metric(current_cases[name])
        if base is None or cur is None:
            continue
        if base["metric"] != cur["metric"]:
            # One report gained/lost its reference twin; fall back to the
            # metric both sides still share.
            base = {"metric": "throughput",
                    "value": float(baseline_cases[name].get("throughput", 0.0))}
            cur = {"metric": "throughput",
                   "value": float(current_cases[name].get("throughput", 0.0))}
            if not base["value"] or not cur["value"]:
                continue
        report.cases.append(CaseComparison(
            name=name, metric=base["metric"], baseline=base["value"],
            current=cur["value"],
            tolerance=per_case.get(name, tolerance)))
    report.added = sorted(set(current_cases) - set(baseline_cases))
    return report


def compare_report_files(current_path: str, baseline_path: str,
                         tolerance: float = DEFAULT_TOLERANCE,
                         per_case: Optional[Dict[str, float]] = None
                         ) -> ComparisonReport:
    """File-path convenience wrapper over :func:`compare_reports`."""
    with open(current_path) as handle:
        current = json.load(handle)
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    return compare_reports(current, baseline, tolerance=tolerance,
                           per_case=per_case)


def format_comparison(report: ComparisonReport) -> str:
    """Fixed-width verdict table, one line per paired case."""
    header = (f"{'case':<22} {'metric':<11} {'baseline':>12} "
              f"{'current':>12} {'change':>9} {'verdict':>8}")
    lines = [f"bench compare: {report.current_name} vs "
             f"baseline {report.baseline_name}",
             header, "-" * len(header)]
    for case in report.cases:
        verdict = "REGRESS" if case.regressed else "ok"
        lines.append(
            f"{case.name:<22} {case.metric:<11} {case.baseline:>12.3f} "
            f"{case.current:>12.3f} {case.change:>+8.1%} {verdict:>8}")
    for name in report.missing:
        lines.append(f"{name:<22} {'-':<11} {'?':>12} {'absent':>12} "
                     f"{'-':>9} {'skip':>8}")
    for name in report.added:
        lines.append(f"{name:<22} {'-':<11} {'absent':>12} {'?':>12} "
                     f"{'-':>9} {'new':>8}")
    n = len(report.regressions)
    lines.append(f"{'PASS' if report.ok else 'FAIL'}: {n} regression(s) "
                 f"across {len(report.cases)} compared case(s)")
    return "\n".join(lines)
