"""The timed-case registry and warmup/repeat measurement protocol.

A :class:`BenchCase` bundles an untimed ``setup`` (workload construction),
a timed ``run`` (one repetition over the whole workload, returning how many
items it processed) and an optional ``reference`` twin implementing the same
work with the committed pre-optimization code path.  :func:`run_cases`
executes each case as::

    state = setup()
    run(state) x warmup          # untimed: caches warm, allocator settles
    run(state) x repeat          # timed with repro.obs.clock.perf_counter
    run(state) under tracemalloc # untimed: peak traced bytes
    ... same protocol for reference ...

Timing flows exclusively through :func:`repro.obs.clock.perf_counter` (the
repo's single clock gateway, lint rule CLK001) and peak memory through
``tracemalloc``, which numpy registers its ndarray buffers with — so
``peak_bytes`` is dominated by ndarray allocations.
"""

from __future__ import annotations

import tracemalloc
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.obs.clock import perf_counter


@dataclass
class BenchCase:
    """One benchmarkable workload with an optional reference baseline."""

    name: str
    setup: Callable[[], Any]
    run: Callable[[Any], float]
    reference: Optional[Callable[[Any], float]] = None
    unit: str = "items"
    description: str = ""


@dataclass
class CaseResult:
    """Measured timings for one case (and, if present, its reference)."""

    name: str
    unit: str
    description: str
    warmup: int
    repeat: int
    items: float
    seconds: List[float] = field(default_factory=list)
    peak_bytes: int = 0
    reference_seconds: Optional[List[float]] = None
    reference_peak_bytes: Optional[int] = None

    @property
    def best_seconds(self) -> float:
        return min(self.seconds) if self.seconds else 0.0

    @property
    def mean_seconds(self) -> float:
        return (sum(self.seconds) / len(self.seconds)) if self.seconds else 0.0

    @property
    def throughput(self) -> float:
        """Items per second at the best (least-noisy) repetition."""
        best = self.best_seconds
        return self.items / best if best > 0 else 0.0

    @property
    def reference_best_seconds(self) -> Optional[float]:
        if not self.reference_seconds:
            return None
        return min(self.reference_seconds)

    @property
    def reference_throughput(self) -> Optional[float]:
        best = self.reference_best_seconds
        if best is None or best <= 0:
            return None
        return self.items / best

    @property
    def speedup(self) -> Optional[float]:
        """Optimized throughput over reference throughput (>1 is faster)."""
        reference = self.reference_best_seconds
        best = self.best_seconds
        if reference is None or best <= 0:
            return None
        return reference / best

    def to_dict(self) -> dict:
        payload = {
            "name": self.name,
            "unit": self.unit,
            "description": self.description,
            "warmup": self.warmup,
            "repeat": self.repeat,
            "items": self.items,
            "seconds": self.seconds,
            "best_seconds": self.best_seconds,
            "mean_seconds": self.mean_seconds,
            "throughput": self.throughput,
            "peak_bytes": self.peak_bytes,
        }
        if self.reference_seconds is not None:
            payload["reference"] = {
                "seconds": self.reference_seconds,
                "best_seconds": self.reference_best_seconds,
                "throughput": self.reference_throughput,
                "peak_bytes": self.reference_peak_bytes,
            }
            payload["speedup"] = self.speedup
        return payload


def _timed(run: Callable[[Any], float], state: Any, warmup: int,
           repeat: int) -> tuple:
    items = 0.0
    for _ in range(warmup):
        items = run(state)
    seconds: List[float] = []
    for _ in range(repeat):
        start = perf_counter()
        items = run(state)
        seconds.append(perf_counter() - start)
    return seconds, float(items)


def _peak_bytes(run: Callable[[Any], float], state: Any) -> int:
    tracemalloc.start()
    try:
        run(state)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return int(peak)


def run_case(case: BenchCase, warmup: int = 1, repeat: int = 3) -> CaseResult:
    """Run one case through the full protocol (see module docstring)."""
    if repeat < 1:
        raise ValueError("repeat must be at least 1")
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    state = case.setup()
    seconds, items = _timed(case.run, state, warmup, repeat)
    result = CaseResult(name=case.name, unit=case.unit,
                        description=case.description, warmup=warmup,
                        repeat=repeat, items=items, seconds=seconds,
                        peak_bytes=_peak_bytes(case.run, state))
    if case.reference is not None:
        reference_seconds, reference_items = _timed(case.reference, state,
                                                    warmup, repeat)
        if reference_items != items:
            raise RuntimeError(
                f"bench case {case.name!r}: reference processed "
                f"{reference_items} {case.unit} but the optimized path "
                f"processed {items} — the comparison would be meaningless")
        result.reference_seconds = reference_seconds
        result.reference_peak_bytes = _peak_bytes(case.reference, state)
    return result


def run_cases(cases: List[BenchCase], warmup: int = 1, repeat: int = 3,
              progress: Optional[Callable[[str], None]] = None
              ) -> List[CaseResult]:
    """Run every case in order; ``progress`` receives one line per case."""
    results = []
    for case in cases:
        if progress is not None:
            progress(f"running {case.name} ...")
        results.append(run_case(case, warmup=warmup, repeat=repeat))
    return results
