"""Swap every optimized hot-path kernel for its committed reference twin.

:func:`reference_mode` is a context manager that monkeypatches the three
vectorized kernels back to their pre-optimization implementations —
visibility construction (loop oracle, no LRU cache), MER candidate-set
assembly (per-element Python sets) and the attention mask (per-call boolean
broadcast + ``masked_fill``).  Inside the context, a full pre-training run
exercises exactly the old code paths, which is how the end-to-end bench case
gets an honest steps/sec baseline without keeping a second training engine
around.

All references are bit-identical to their optimized twins (see
``tests/bench/test_equivalence.py``), so metrics gathered in and out of
reference mode differ only in speed.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

import repro.core.batching as _batching
import repro.core.visibility as _visibility
from repro.core.candidates import CandidateBuilder
from repro.core.linearize import TableInstance
from repro.nn.attention import MultiHeadAttention


def _reference_build_visibility(instance: TableInstance) -> np.ndarray:
    """Uncached, loop-built visibility for one instance."""
    return _visibility._reference_visibility_from_structure(
        instance.element_kinds(), instance.element_rows(),
        instance.element_cols())


@contextmanager
def reference_mode():
    """Run the enclosed block on the pre-optimization kernel implementations.

    Patches (and restores on exit, even on error):

    - ``build_visibility`` in both :mod:`repro.core.visibility` and
      :mod:`repro.core.batching` (the latter holds its own imported binding)
      to the uncached index-by-index loop construction;
    - :meth:`CandidateBuilder.build` to ``_reference_build``;
    - :meth:`MultiHeadAttention.forward` to ``_reference_forward``.
    """
    originals = (
        _visibility.build_visibility,
        _batching.build_visibility,
        CandidateBuilder.build,
        MultiHeadAttention.forward,
    )
    _visibility.build_visibility = _reference_build_visibility
    _batching.build_visibility = _reference_build_visibility
    CandidateBuilder.build = CandidateBuilder._reference_build
    MultiHeadAttention.forward = MultiHeadAttention._reference_forward
    try:
        yield
    finally:
        (_visibility.build_visibility, _batching.build_visibility,
         CandidateBuilder.build, MultiHeadAttention.forward) = originals
