"""Benchmark reporting: ``BENCH_<name>.json`` and a human-readable table.

The JSON layout is stable so reports from different commits diff cleanly::

    {
      "bench": "<name>",
      "created_unix": <wall_time()>,
      "protocol": {"warmup": W, "repeat": R,
                   "timer": "repro.obs.clock.perf_counter"},
      "cases": [<CaseResult.to_dict()>, ...]
    }

Per case: every repetition's wall seconds, best/mean seconds, throughput
(items at the best repetition), peak traced-allocation bytes (ndarray
buffers dominate), and — when a reference twin ran — the same numbers for
the reference plus the headline ``speedup`` ratio.
"""

from __future__ import annotations

import json
import os
from typing import List

from repro.bench.runner import CaseResult
from repro.obs.clock import wall_time


def report_to_dict(name: str, results: List[CaseResult], warmup: int,
                   repeat: int) -> dict:
    return {
        "bench": name,
        "created_unix": wall_time(),
        "protocol": {
            "warmup": warmup,
            "repeat": repeat,
            "timer": "repro.obs.clock.perf_counter",
        },
        "cases": [result.to_dict() for result in results],
    }


def write_report(path: str, name: str, results: List[CaseResult],
                 warmup: int, repeat: int) -> dict:
    """Write ``BENCH_<name>.json``-style output to ``path``; returns the dict."""
    payload = report_to_dict(name, results, warmup, repeat)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def _human_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}"
        value /= 1024
    return f"{value:.1f} GiB"


def format_report(results: List[CaseResult]) -> str:
    """A fixed-width text table of the results (one line per case)."""
    header = (f"{'case':<22} {'best (s)':>10} {'items/s':>12} "
              f"{'peak mem':>10} {'ref (s)':>10} {'speedup':>8}")
    lines = [header, "-" * len(header)]
    for result in results:
        reference = result.reference_best_seconds
        speedup = result.speedup
        lines.append(
            f"{result.name:<22} {result.best_seconds:>10.4f} "
            f"{result.throughput:>12.1f} "
            f"{_human_bytes(result.peak_bytes):>10} "
            f"{(f'{reference:.4f}' if reference is not None else '-'):>10} "
            f"{(f'{speedup:.2f}x' if speedup is not None else '-'):>8}")
    return "\n".join(lines)
