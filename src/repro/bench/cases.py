"""The default benchmark cases — one per optimized hot path.

Every case that has a ``reference`` twin measures the *same work* twice:
the optimized kernel and the committed pre-optimization implementation
(``_reference_*`` or :func:`repro.bench.reference.reference_mode`), from
identical seeds, so the reported speedup compares two paths whose outputs
are bit-identical (proven in ``tests/bench/test_equivalence.py``).

Workload construction (world synthesis, tokenizer training, model init)
happens in the untimed ``setup`` and the heavier shared pipeline is built
once per process, so ``--repeat 1`` smoke runs stay quick.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

import numpy as np

from repro.bench.reference import reference_mode
from repro.bench.runner import BenchCase
from repro.config import TURLConfig
from repro.core.batching import batches_of
from repro.core.candidates import CandidateBuilder, _FIRST_REAL_ID
from repro.core.linearize import (
    KIND_CAPTION,
    KIND_CELL,
    KIND_HEADER,
    KIND_TOPIC,
    Linearizer,
    TableInstance,
)
from repro.core.masking import IGNORE
from repro.core.model import TURLModel
from repro.core.pretrain import Pretrainer
from repro.core.visibility import (
    _reference_visibility_from_structure,
    cached_visibility,
    clear_visibility_cache,
    visibility_from_structure,
)
from repro.data.preprocessing import filter_relational
from repro.data.synthesis import SynthesisConfig, build_corpus
from repro.kb.generator import WorldConfig, generate_world
from repro.nn import no_grad
from repro.nn.attention import AdditiveVisibilityMask, MultiHeadAttention
from repro.nn.tensor import Tensor
from repro.text.tokenizer import WordPieceTokenizer
from repro.text.vocab import EntityVocabulary


@lru_cache(maxsize=1)
def _pipeline():
    """One small shared pipeline (corpus, vocabularies, linearized tables).

    Built once per process; several cases draw their workloads from it so a
    ``--repeat 1`` smoke run does not synthesize the world repeatedly.
    """
    config = TURLConfig(num_layers=2, dim=32, intermediate_dim=64,
                        num_heads=2, batch_size=8)
    kb = generate_world(WorldConfig(seed=7))
    corpus = filter_relational(build_corpus(kb, SynthesisConfig(seed=11,
                                                                n_tables=120)))
    tokenizer = WordPieceTokenizer.train(corpus.metadata_texts(),
                                         vocab_size=1200)
    entity_vocab = EntityVocabulary.build_from_counts(corpus.entity_counts(),
                                                      min_frequency=2)
    linearizer = Linearizer(tokenizer, entity_vocab, config)
    instances = [linearizer.encode(table) for table in corpus]
    builder = CandidateBuilder(corpus, entity_vocab, config)
    return config, tokenizer, entity_vocab, instances, builder


# -- visibility construction --------------------------------------------------

def _random_structures(n: int, min_len: int = 60, max_len: int = 140
                       ) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Synthetic ``(kinds, rows, cols)`` triples shaped like real tables."""
    rng = np.random.default_rng(2024)
    structures = []
    for _ in range(n):
        length = int(rng.integers(min_len, max_len + 1))
        n_caption = int(rng.integers(4, 10))
        n_cols = int(rng.integers(2, 6))
        n_header = n_cols * int(rng.integers(1, 4))
        n_cells = max(1, length - n_caption - n_header - 1)
        kinds = np.concatenate([
            np.full(n_caption, KIND_CAPTION),
            np.full(n_header, KIND_HEADER),
            np.asarray([KIND_TOPIC]),
            np.full(n_cells, KIND_CELL),
        ]).astype(np.int64)
        rows = np.concatenate([
            np.full(n_caption + n_header, -1),
            np.asarray([-1]),
            rng.integers(0, max(1, n_cells // n_cols), size=n_cells),
        ]).astype(np.int64)
        cols = np.concatenate([
            np.full(n_caption, -1),
            rng.integers(0, n_cols, size=n_header),
            np.asarray([-1]),
            rng.integers(0, n_cols, size=n_cells),
        ]).astype(np.int64)
        structures.append((kinds, rows, cols))
    return structures


def _visibility_case() -> BenchCase:
    def setup():
        return _random_structures(60)

    def run(structures) -> float:
        for kinds, rows, cols in structures:
            visibility_from_structure(kinds, rows, cols)
        return float(len(structures))

    def reference(structures) -> float:
        for kinds, rows, cols in structures:
            _reference_visibility_from_structure(kinds, rows, cols)
        return float(len(structures))

    return BenchCase(
        name="visibility_construct",
        setup=setup, run=run, reference=reference, unit="matrices",
        description="Vectorized visibility-matrix construction vs. the "
                    "index-by-index loop oracle over 60 random structures "
                    "(L in [60, 140]).")


def _visibility_cache_case() -> BenchCase:
    def setup():
        return _random_structures(20, min_len=80, max_len=120)

    def run(structures) -> float:
        clear_visibility_cache()
        # 10 epochs' worth of repeats: every structure after the first pass
        # is a cache hit, which is the steady-state training access pattern.
        for _ in range(10):
            for kinds, rows, cols in structures:
                cached_visibility(kinds, rows, cols)
        return float(10 * len(structures))

    def reference(structures) -> float:
        for _ in range(10):
            for kinds, rows, cols in structures:
                visibility_from_structure(kinds, rows, cols)
        return float(10 * len(structures))

    return BenchCase(
        name="visibility_cache",
        setup=setup, run=run, reference=reference, unit="lookups",
        description="Structure-triple LRU cache over 10 repeated passes vs. "
                    "rebuilding the (vectorized) matrix every time.")


# -- MER candidate assembly ---------------------------------------------------

def _candidate_case() -> BenchCase:
    def setup():
        config, _, entity_vocab, _, builder = _pipeline()
        rng = np.random.default_rng(99)
        batches = []
        for _ in range(24):
            # Tables in one batch share a corpus slice, so the batch's raw
            # entity stream is large (B x Le elements) but holds few distinct
            # ids — the regime where per-element Python extraction hurts.
            window = int(rng.integers(_FIRST_REAL_ID,
                                      max(_FIRST_REAL_ID + 1,
                                          len(entity_vocab) - 48)))
            entity_ids = rng.integers(window, window + 48, size=(64, 128))
            labels = np.full((64, 128), IGNORE, dtype=np.int64)
            for row in range(64):
                masked = rng.choice(128, size=8, replace=False)
                labels[row, masked] = rng.integers(window, window + 48,
                                                   size=8)
            batches.append((entity_ids, labels))
        return builder, batches

    def run(state) -> float:
        builder, batches = state
        rng = np.random.default_rng(0)
        for entity_ids, labels in batches:
            builder.build(entity_ids, labels, rng)
        return float(len(batches))

    def reference(state) -> float:
        builder, batches = state
        rng = np.random.default_rng(0)
        for entity_ids, labels in batches:
            builder._reference_build(entity_ids, labels, rng)
        return float(len(batches))

    return BenchCase(
        name="candidate_build",
        setup=setup, run=run, reference=reference, unit="batches",
        description="Vectorized MER candidate-set assembly vs. the "
                    "per-element Python-set reference on 24 batches of "
                    "64x128 entity ids (identical seeds, bit-identical "
                    "output).")


# -- additive attention mask --------------------------------------------------

def _attention_case() -> BenchCase:
    batch, length, dim, heads, layers = 8, 96, 64, 4, 4

    def setup():
        rng = np.random.default_rng(3)
        attention = MultiHeadAttention(dim, heads, rng, dropout=0.0)
        hidden = Tensor(rng.standard_normal((batch, length, dim)))
        kinds, rows, cols = _random_structures(1, min_len=length,
                                               max_len=length)[0]
        visibility = np.broadcast_to(
            visibility_from_structure(kinds, rows, cols)[None],
            (batch, length, length)).copy()
        return attention, hidden, visibility

    def run(state) -> float:
        attention, hidden, visibility = state
        mask = AdditiveVisibilityMask(visibility)  # built once per batch
        with no_grad():
            for _ in range(layers):
                attention.forward(hidden, mask)
        return float(layers)

    def reference(state) -> float:
        attention, hidden, visibility = state
        with no_grad():
            for _ in range(layers):
                attention._reference_forward(hidden, visibility)
        return float(layers)

    return BenchCase(
        name="attention_mask",
        setup=setup, run=run, reference=reference, unit="layer-calls",
        description="One precomputed additive float mask shared by 4 "
                    "attention layers vs. a per-layer boolean broadcast + "
                    "masked_fill (B=8, L=96, d=64, h=4).")


# -- length-bucketed collation ------------------------------------------------

def _bucketed_batching_case() -> BenchCase:
    def setup():
        config, tokenizer, entity_vocab, instances, _ = _pipeline()
        model = TURLModel(len(tokenizer.vocab), len(entity_vocab), config,
                          seed=0)
        return model, instances

    def _epoch(model: TURLModel, instances: List[TableInstance],
               shuffle: str) -> float:
        # Padding is what bucketing eliminates, and the padded length is what
        # the encoder's O(B * L^2) attention pays for — so the epoch cost is
        # collate + forward, not collation alone.
        clear_visibility_cache()
        with no_grad():
            for batch in batches_of(instances, 8,
                                    rng=np.random.default_rng(5),
                                    shuffle=shuffle):
                model.encode(batch, use_visibility=True)
        return float(len(instances))

    def run(state) -> float:
        model, instances = state
        return _epoch(model, instances, "bucket")

    def reference(state) -> float:
        model, instances = state
        return _epoch(model, instances, "flat")

    return BenchCase(
        name="bucketed_batching",
        setup=setup, run=run, reference=reference, unit="instances",
        description="One epoch of collate + encoder forward with "
                    "length-bucketed batches (zero padding waste) vs. flat "
                    "shuffled batches over the shared corpus.")


# -- sharded corpus streaming -------------------------------------------------

def _corpus_stream_case() -> BenchCase:
    """Streaming batch assembly off a memory-mapped sharded corpus vs. the
    in-memory path that materializes every linearized instance first.

    The corpus is 10x the shared pipeline's (1200 tables), which is the
    regime the shard pipeline targets: the streaming path's peak ndarray
    footprint is one batch plus the memmapped index, while the reference
    holds all 1200 ``TableInstance`` arrays at once — ``peak_bytes`` is the
    headline, throughput the regression tripwire.
    """
    import shutil
    import tempfile

    from repro.core.batching import collate
    from repro.core.stream import TableInstanceStream
    from repro.data.shards import write_sharded_corpus

    batch_size = 8

    def setup():
        config, tokenizer, entity_vocab, _, _ = _pipeline()
        kb = generate_world(WorldConfig(seed=7))
        directory = tempfile.mkdtemp(prefix="bench_corpus_")
        dataset = write_sharded_corpus(
            kb, SynthesisConfig(seed=11, n_tables=1200), directory,
            n_shards=4)
        linearizer = Linearizer(tokenizer, entity_vocab, config)
        stream = TableInstanceStream(dataset, linearizer, split="train")
        return stream, directory

    def run(state) -> float:
        stream, _ = state
        for start in range(0, len(stream), batch_size):
            chunk = [stream.fetch(i)
                     for i in range(start, min(start + batch_size,
                                               len(stream)))]
            collate(chunk)
        return float(len(stream))

    def reference(state) -> float:
        stream, _ = state
        instances = [stream.fetch(i) for i in range(len(stream))]
        for start in range(0, len(instances), batch_size):
            collate(instances[start:start + batch_size])
        return float(len(instances))

    return BenchCase(
        name="corpus_stream",
        setup=setup, run=run, reference=reference, unit="instances",
        description="One epoch of decode + linearize + collate streamed "
                    "from a 4-shard memory-mapped corpus (1200 tables, 10x "
                    "the shared pipeline) vs. materializing every instance "
                    "in memory first; peak_bytes is the point.")


# -- end-to-end pre-training --------------------------------------------------

def _pretrain_case() -> BenchCase:
    def setup():
        config, tokenizer, entity_vocab, instances, builder = _pipeline()
        model = TURLModel(len(tokenizer.vocab), len(entity_vocab), config,
                          seed=0)
        initial = model.state_dict()
        return config, model, initial, instances[:48], builder

    def _train(state) -> float:
        config, model, initial, instances, builder = state
        model.load_state_dict(initial)
        clear_visibility_cache()
        pretrainer = Pretrainer(model, instances, builder, config, seed=0)
        stats = pretrainer.train(n_epochs=1)
        return float(stats.steps)

    def run(state) -> float:
        return _train(state)

    def reference(state) -> float:
        with reference_mode():
            return _train(state)

    return BenchCase(
        name="pretrain_steps",
        setup=setup, run=run, reference=reference, unit="steps",
        description="One pre-training epoch (48 tables, batch 8, 2-layer "
                    "d=32 model) on the optimized kernels vs. the same "
                    "epoch under reference_mode().")


def _serve_throughput_case() -> BenchCase:
    """Serving with the shared encode cache vs. the same traffic uncached.

    The workload serves every table eight times (87.5% repeated requests —
    the serving regime the cache targets); ``run`` builds a fresh cache
    per repetition, so the measured speedup is cold-start honest.
    """
    from repro.serve import Predictor, SchemaAugmentationAdapter
    from repro.tasks.schema_augmentation import (TURLSchemaAugmenter,
                                                 build_header_vocabulary,
                                                 build_schema_instances)

    def setup():
        config, tokenizer, entity_vocab, _, _ = _pipeline()
        kb = generate_world(WorldConfig(seed=7))
        corpus = filter_relational(build_corpus(
            kb, SynthesisConfig(seed=11, n_tables=120)))
        linearizer = Linearizer(tokenizer, entity_vocab, config)
        model = TURLModel(len(tokenizer.vocab), len(entity_vocab), config,
                          seed=0)
        vocabulary = build_header_vocabulary(corpus, min_tables=2)
        augmenter = TURLSchemaAugmenter(model, linearizer, vocabulary)
        adapter = SchemaAugmentationAdapter(augmenter)
        distinct = build_schema_instances(corpus, vocabulary, n_seed=1)[:8]
        workload = distinct * 8  # every table served 8x: 87.5% repeats
        return adapter, workload

    def _serve(state, enable_cache: bool) -> float:
        adapter, workload = state
        predictor = Predictor([adapter], enable_cache=enable_cache,
                              cache_size=64)
        predictor.predict_batch(adapter.task_name, workload)
        return float(len(workload))

    def run(state) -> float:
        return _serve(state, enable_cache=True)

    def reference(state) -> float:
        return _serve(state, enable_cache=False)

    return BenchCase(
        name="serve_throughput",
        setup=setup, run=run, reference=reference, unit="requests",
        description="64 schema-augmentation requests (8 distinct tables, "
                    "each served 8 times — 87.5% repeated) through the "
                    "serving Predictor with the shared encode cache on vs. "
                    "off.")


def _serve_fleet_case() -> BenchCase:
    """Cache-partitioned 4-worker fleet vs. one cached worker, same traffic.

    The workload cycles through 32 distinct tables — twice a single
    worker's encode-cache capacity (24), so the single worker LRU-thrashes
    (every lookup misses: each key is evicted before its next use).  The
    fleet's consistent-hash routing pins each table to one of 4 workers,
    every worker's ~8-key share fits its private cache, and after the
    first sweep the whole fleet runs cache-resident.  The win measured is
    aggregate cache *capacity* from content routing, not parallelism (the
    box may well have one core).
    """
    from repro.serve import (Predictor, PredictorFleet,
                             SchemaAugmentationAdapter)
    from repro.tasks.schema_augmentation import (TURLSchemaAugmenter,
                                                 build_header_vocabulary,
                                                 build_schema_instances)

    n_distinct, sweeps, worker_cache, n_workers = 32, 8, 24, 4

    def setup():
        config, tokenizer, entity_vocab, _, _ = _pipeline()
        kb = generate_world(WorldConfig(seed=7))
        corpus = filter_relational(build_corpus(
            kb, SynthesisConfig(seed=11, n_tables=120)))
        linearizer = Linearizer(tokenizer, entity_vocab, config)
        model = TURLModel(len(tokenizer.vocab), len(entity_vocab), config,
                          seed=0)
        vocabulary = build_header_vocabulary(corpus, min_tables=2)
        augmenter = TURLSchemaAugmenter(model, linearizer, vocabulary)
        adapter = SchemaAugmentationAdapter(augmenter)
        distinct = build_schema_instances(corpus, vocabulary,
                                          n_seed=1)[:n_distinct]
        return adapter, distinct

    def run(state) -> float:
        adapter, distinct = state
        template = Predictor([adapter], enable_cache=True,
                             cache_size=worker_cache)
        # Fresh fleet per repetition: the measured time includes worker
        # cloning and the cold first sweep — cold-start honest.
        with PredictorFleet(template, workers=n_workers,
                            cache_size=worker_cache) as fleet:
            for _ in range(sweeps):
                fleet.predict_batch(adapter.task_name, distinct)
        return float(sweeps * len(distinct))

    def reference(state) -> float:
        adapter, distinct = state
        predictor = Predictor([adapter], enable_cache=True,
                              cache_size=worker_cache)
        for _ in range(sweeps):
            predictor.predict_batch(adapter.task_name, distinct)
        return float(sweeps * len(distinct))

    return BenchCase(
        name="serve_fleet",
        setup=setup, run=run, reference=reference, unit="requests",
        description="256 schema-augmentation requests (8 sweeps over 32 "
                    "distinct tables) through a 4-worker content-routed "
                    "fleet (per-worker cache 24) vs. one worker with the "
                    "same per-worker cache, which LRU-thrashes on the "
                    "sweep.")


def default_cases() -> List[BenchCase]:
    """The full registry, micro-kernels first, end-to-end last."""
    return [
        _visibility_case(),
        _visibility_cache_case(),
        _candidate_case(),
        _attention_case(),
        _bucketed_batching_case(),
        _corpus_stream_case(),
        _pretrain_case(),
        _serve_throughput_case(),
        _serve_fleet_case(),
    ]
