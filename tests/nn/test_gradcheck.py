"""Finite-difference gradient verification for every op and layer.

Each case builds a function of one or more input arrays (plus any module
parameters) and :func:`repro.nn.gradcheck` compares every analytic gradient
against central differences.  Tolerance is 1e-6 relative error; float64 ops
typically come in around 1e-9.  Inputs for kinked ops (relu, max, abs of
differences) are chosen away from the kink so the numeric derivative is
well-defined.
"""

import numpy as np
import pytest

from repro.nn import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    MultiHeadAttention,
    Tensor,
    TransformerBlock,
    TransformerEncoder,
    binary_cross_entropy_logits,
    concat,
    cross_entropy_logits,
    gradcheck,
    masked_cross_entropy,
    stack,
)

TOL = 1e-6


def _rng():
    return np.random.default_rng(0)


def _away_from_kinks(shape, kink=0.0, margin=0.05):
    """Values at least ``margin`` away from ``kink`` (for relu/max tests)."""
    values = _rng().normal(size=shape)
    values = np.where(np.abs(values - kink) < margin,
                      values + 4 * margin, values)
    return values


OP_CASES = {
    "add": (lambda a, b: a + b,
            [_rng().normal(size=(3, 4)), _rng().normal(size=(3, 4))]),
    "add_broadcast": (lambda a, b: a + b,
                      [_rng().normal(size=(3, 4)), _rng().normal(size=(4,))]),
    "neg": (lambda a: -a, [_rng().normal(size=(3, 4))]),
    "sub": (lambda a, b: a - b,
            [_rng().normal(size=(3, 4)), _rng().normal(size=(3, 4))]),
    "rsub": (lambda a: 1.5 - a, [_rng().normal(size=(3, 4))]),
    "mul": (lambda a, b: a * b,
            [_rng().normal(size=(3, 4)), _rng().normal(size=(3, 4))]),
    "mul_broadcast": (lambda a, b: a * b,
                      [_rng().normal(size=(3, 4)), _rng().normal(size=(4,))]),
    "div": (lambda a, b: a / b,
            [_rng().normal(size=(3, 4)),
             _rng().normal(size=(3, 4)) + 3.0]),
    "rdiv": (lambda a: 2.0 / a, [_rng().normal(size=(3, 4)) + 3.0]),
    "pow": (lambda a: a ** 3.0, [_rng().normal(size=(3, 4))]),
    "matmul": (lambda a, b: a @ b,
               [_rng().normal(size=(3, 4)), _rng().normal(size=(4, 5))]),
    "matmul_batched": (lambda a, b: a @ b,
                       [_rng().normal(size=(2, 3, 4)),
                        _rng().normal(size=(2, 4, 5))]),
    "exp": (lambda a: a.exp(), [_rng().normal(size=(3, 4))]),
    "log": (lambda a: a.log(), [np.abs(_rng().normal(size=(3, 4))) + 0.5]),
    "tanh": (lambda a: a.tanh(), [_rng().normal(size=(3, 4))]),
    "sigmoid": (lambda a: a.sigmoid(), [_rng().normal(size=(3, 4))]),
    "relu": (lambda a: a.relu(), [_away_from_kinks((3, 4))]),
    "gelu": (lambda a: a.gelu(), [_rng().normal(size=(3, 4))]),
    "sqrt": (lambda a: a.sqrt(), [np.abs(_rng().normal(size=(3, 4))) + 0.5]),
    "sum": (lambda a: a.sum(), [_rng().normal(size=(3, 4))]),
    "sum_axis": (lambda a: a.sum(axis=1), [_rng().normal(size=(3, 4))]),
    "sum_keepdims": (lambda a: a.sum(axis=0, keepdims=True),
                     [_rng().normal(size=(3, 4))]),
    "mean": (lambda a: a.mean(), [_rng().normal(size=(3, 4))]),
    "mean_axis": (lambda a: a.mean(axis=-1), [_rng().normal(size=(3, 4))]),
    # max: unique per-row maxima so the subgradient is unambiguous
    "max_axis": (lambda a: a.max(axis=1),
                 [np.arange(12, dtype=np.float64).reshape(3, 4)
                  + 0.1 * _rng().normal(size=(3, 4))]),
    "reshape": (lambda a: a.reshape(4, 3), [_rng().normal(size=(3, 4))]),
    "transpose": (lambda a: a.transpose(1, 0), [_rng().normal(size=(3, 4))]),
    "squeeze": (lambda a: a.squeeze(1), [_rng().normal(size=(3, 1, 4))]),
    "swapaxes": (lambda a: a.swapaxes(0, 2),
                 [_rng().normal(size=(2, 3, 4))]),
    "getitem": (lambda a: a[1:3, ::2], [_rng().normal(size=(4, 6))]),
    "take_rows": (lambda a: a.take_rows(np.array([[0, 2], [1, 0]])),
                  [_rng().normal(size=(3, 4))]),
    "softmax": (lambda a: a.softmax(axis=-1), [_rng().normal(size=(3, 4))]),
    "log_softmax": (lambda a: a.log_softmax(axis=-1),
                    [_rng().normal(size=(3, 4))]),
    "layer_norm": (lambda a, w, b: a.layer_norm(w, b),
                   [_rng().normal(size=(3, 4)),
                    1.0 + 0.1 * _rng().normal(size=(4,)),
                    0.1 * _rng().normal(size=(4,))]),
    "masked_fill": (
        lambda a: a.masked_fill(
            np.array([[True, False, False, True],
                      [False, True, False, False],
                      [False, False, False, False]]), -1e9).softmax(axis=-1),
        [_rng().normal(size=(3, 4))]),
    "dropout": (
        lambda a: a.dropout(0.5, np.random.default_rng(123)),
        [_rng().normal(size=(6, 5))]),
    "concat": (lambda a, b: concat([a, b], axis=1),
               [_rng().normal(size=(3, 2)), _rng().normal(size=(3, 4))]),
    "stack": (lambda a, b: stack([a, b], axis=0),
              [_rng().normal(size=(3, 4)), _rng().normal(size=(3, 4))]),
    "composite": (lambda a, b: ((a @ b).tanh() * a.sum(axis=1,
                                                       keepdims=True)),
                  [_rng().normal(size=(3, 3)), _rng().normal(size=(3, 3))]),
}


@pytest.mark.parametrize("name", sorted(OP_CASES))
def test_op_gradients(name):
    fn, inputs = OP_CASES[name]
    error = gradcheck(fn, inputs, tol=TOL)
    assert error < TOL


LOSS_CASES = {
    "cross_entropy_logits": (
        lambda logits: cross_entropy_logits(logits, np.array([1, 0, 3])),
        [_rng().normal(size=(3, 5))]),
    "binary_cross_entropy_logits": (
        lambda logits: binary_cross_entropy_logits(
            logits, np.array([[1.0, 0.0, 1.0], [0.0, 1.0, 0.0]])),
        [_rng().normal(size=(2, 3))]),
    "masked_cross_entropy": (
        lambda logits: masked_cross_entropy(
            logits, np.array([[1, 0, 3, 0]]),
            np.array([[True, False, True, True]])),
        [_rng().normal(size=(1, 4, 5))]),
}


@pytest.mark.parametrize("name", sorted(LOSS_CASES))
def test_loss_gradients(name):
    fn, inputs = LOSS_CASES[name]
    error = gradcheck(fn, inputs, tol=TOL)
    assert error < TOL


def _layer_case(name):
    """Return (fn, inputs, params) exercising one layer end to end."""
    rng = _rng()
    init_rng = np.random.default_rng(1)
    if name == "linear":
        layer = Linear(4, 3, init_rng)
        return (lambda x: layer(x), [rng.normal(size=(5, 4))],
                layer.parameters())
    if name == "embedding":
        layer = Embedding(7, 4, init_rng)
        ids = np.array([[0, 3], [6, 1]])
        return (lambda: layer(ids), [], layer.parameters())
    if name == "layer_norm":
        layer = LayerNorm(4)
        return (lambda x: layer(x), [rng.normal(size=(5, 4))],
                layer.parameters())
    if name == "dropout":
        layer = Dropout(0.5)
        layer.eval()  # deterministic path; train path covered by the op case
        return (lambda x: layer(x), [rng.normal(size=(5, 4))], [])
    if name == "attention":
        layer = MultiHeadAttention(8, 2, init_rng)
        return (lambda x: layer(x), [rng.normal(size=(1, 5, 8))],
                layer.parameters())
    if name == "attention_masked":
        layer = MultiHeadAttention(8, 2, init_rng)
        visibility = np.ones((5, 5), dtype=bool)
        visibility[0, 3] = visibility[3, 0] = False
        return (lambda x: layer(x, visibility),
                [rng.normal(size=(1, 5, 8))], layer.parameters())
    if name == "transformer_block":
        layer = TransformerBlock(8, 2, 16, init_rng)
        return (lambda x: layer(x), [rng.normal(size=(1, 4, 8))],
                layer.parameters())
    if name == "transformer_encoder":
        layer = TransformerEncoder(2, 8, 2, 16, init_rng)
        return (lambda x: layer(x), [rng.normal(size=(1, 4, 8))],
                layer.parameters())
    raise AssertionError(name)


LAYER_NAMES = ("linear", "embedding", "layer_norm", "dropout", "attention",
               "attention_masked", "transformer_block", "transformer_encoder")


@pytest.mark.parametrize("name", LAYER_NAMES)
def test_layer_gradients(name):
    fn, inputs, params = _layer_case(name)
    error = gradcheck(fn, inputs, params=params, tol=TOL)
    assert error < TOL


def test_gradcheck_catches_wrong_gradient():
    """A deliberately broken backward must trip the checker."""

    def broken(a: Tensor) -> Tensor:
        def backward(g):
            a._accumulate(g)  # missing the 1 - tanh^2 factor

        return Tensor._make(np.tanh(a.data), [a], backward)

    from repro.nn import SanitizerError

    with pytest.raises(SanitizerError):
        gradcheck(broken, [_rng().normal(size=(3, 3))], tol=TOL)
