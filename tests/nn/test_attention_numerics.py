"""Numerical equivalence tests: attention/transformer vs manual NumPy math."""

import numpy as np
import pytest

from repro.nn import MultiHeadAttention, Tensor
from repro.nn.attention import MASKED_LOGIT


def manual_attention(attn: MultiHeadAttention, x: np.ndarray,
                     visibility: np.ndarray = None) -> np.ndarray:
    """Reference implementation of masked multi-head attention."""
    batch, length, dim = x.shape
    heads, head_dim = attn.num_heads, attn.head_dim
    q = x @ attn.query.weight.data + attn.query.bias.data
    k = x @ attn.key.weight.data + attn.key.bias.data
    v = x @ attn.value.weight.data + attn.value.bias.data

    def split(m):
        return m.reshape(batch, length, heads, head_dim).transpose(0, 2, 1, 3)

    q, k, v = split(q), split(k), split(v)
    logits = q @ k.transpose(0, 1, 3, 2) / np.sqrt(head_dim)
    if visibility is not None:
        logits = np.where(visibility[:, None, :, :], logits, logits + MASKED_LOGIT)
    logits -= logits.max(axis=-1, keepdims=True)
    weights = np.exp(logits)
    weights /= weights.sum(axis=-1, keepdims=True)
    context = weights @ v
    context = context.transpose(0, 2, 1, 3).reshape(batch, length, dim)
    return context @ attn.output.weight.data + attn.output.bias.data


@pytest.fixture
def attention():
    attn = MultiHeadAttention(16, 4, np.random.default_rng(3))
    attn.eval()
    return attn


def test_attention_matches_manual_unmasked(attention):
    x = np.random.default_rng(0).normal(size=(2, 5, 16))
    ours = attention(Tensor(x)).data
    reference = manual_attention(attention, x)
    np.testing.assert_allclose(ours, reference, atol=1e-10)


def test_attention_matches_manual_masked(attention):
    rng = np.random.default_rng(1)
    x = rng.normal(size=(2, 6, 16))
    visibility = rng.random((2, 6, 6)) > 0.4
    visibility |= np.eye(6, dtype=bool)[None]
    ours = attention(Tensor(x), visibility=visibility).data
    reference = manual_attention(attention, x, visibility)
    np.testing.assert_allclose(ours, reference, atol=1e-9)


def test_attention_rows_are_convex_combinations(attention):
    """With a value projection of identity-like structure, outputs stay in
    the convex hull; here we check softmax weights sum to one implicitly by
    translation invariance: adding a constant vector to all values shifts
    every output by its projection."""
    rng = np.random.default_rng(2)
    x = rng.normal(size=(1, 4, 16))
    base = attention(Tensor(x)).data
    # Shift inputs through the value path only: y = attn(x) computed on
    # shifted x differs in a complicated way; instead verify mask extremes:
    # fully-visible vs self-only-visible give different results.
    self_only = np.eye(4, dtype=bool)[None]
    masked = attention(Tensor(x), visibility=self_only).data
    assert not np.allclose(base, masked)


def test_attention_permutation_equivariance(attention):
    """Self-attention without positional info is permutation-equivariant."""
    rng = np.random.default_rng(4)
    x = rng.normal(size=(1, 5, 16))
    permutation = rng.permutation(5)
    base = attention(Tensor(x)).data
    permuted = attention(Tensor(x[:, permutation])).data
    np.testing.assert_allclose(permuted, base[:, permutation], atol=1e-10)


def test_attention_mask_permutation_consistency(attention):
    """Permuting inputs AND the visibility matrix permutes outputs."""
    rng = np.random.default_rng(5)
    x = rng.normal(size=(1, 5, 16))
    visibility = rng.random((1, 5, 5)) > 0.3
    visibility |= np.eye(5, dtype=bool)[None]
    permutation = rng.permutation(5)
    base = attention(Tensor(x), visibility=visibility).data
    permuted_visibility = visibility[:, permutation][:, :, permutation]
    permuted = attention(Tensor(x[:, permutation]),
                         visibility=permuted_visibility).data
    np.testing.assert_allclose(permuted, base[:, permutation], atol=1e-10)
