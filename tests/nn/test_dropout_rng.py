"""Pinning the two dropout-RNG derivation schemes.

The historical scheme (``spawn=False``) reseeds each layer's dropout stream
from ``rng.integers(2**31)`` — a 31-bit draw that can collide across layers
and that *consumes* parent state, shifting every later init draw.  The
``spawn=True`` scheme uses the SeedSequence spawn protocol: collision-free
child streams and an untouched parent.  Both streams are pinned here so
neither can drift silently — every committed golden was produced by the
historical scheme, which is why ``TURLConfig.spawn_dropout_rng`` defaults
to ``False``.
"""

import numpy as np
import pytest

from repro.config import TURLConfig
from repro.core.model import TURLModel
from repro.nn import MultiHeadAttention, Tensor
from repro.nn.attention import derive_dropout_rng

# First integers(2**31) draw of default_rng(0) — the legacy child seed.
LEGACY_CHILD_SEED = 1826701615
# First three uniforms of default_rng(LEGACY_CHILD_SEED).
LEGACY_STREAM = [0.35320251629645283, 0.6799100481064607, 0.8756641419485615]
# The draw default_rng(0) yields AFTER the legacy derivation consumed one.
PARENT_NEXT_AFTER_LEGACY = 1367864807
# First three uniforms of default_rng(0).spawn(1)[0].
SPAWN_STREAM = [0.9429375528828794, 0.3163371523854981, 0.7223425886498254]


def test_legacy_derivation_matches_pinned_stream():
    parent = np.random.default_rng(0)
    child = derive_dropout_rng(parent, spawn=False)
    np.testing.assert_array_equal(child.random(3), LEGACY_STREAM)
    # The derivation consumed exactly one 31-bit draw from the parent.
    assert int(parent.integers(2**31)) == PARENT_NEXT_AFTER_LEGACY


def test_spawn_derivation_matches_pinned_stream_and_preserves_parent():
    parent = np.random.default_rng(0)
    child = derive_dropout_rng(parent, spawn=True)
    np.testing.assert_array_equal(child.random(3), SPAWN_STREAM)
    # Spawning leaves the parent stream untouched: its next draw is the one
    # the legacy scheme would have consumed as the child seed.
    assert int(parent.integers(2**31)) == LEGACY_CHILD_SEED


def test_the_two_schemes_produce_distinct_streams():
    legacy = derive_dropout_rng(np.random.default_rng(0), spawn=False)
    spawned = derive_dropout_rng(np.random.default_rng(0), spawn=True)
    assert not np.array_equal(legacy.random(8), spawned.random(8))


def test_spawned_children_are_distinct_per_call():
    parent = np.random.default_rng(4)
    first = derive_dropout_rng(parent, spawn=True)
    second = derive_dropout_rng(parent, spawn=True)
    assert not np.array_equal(first.random(8), second.random(8))


def test_attention_defaults_to_legacy_derivation():
    attention = MultiHeadAttention(8, 2, np.random.default_rng(0), dropout=0.5)
    reference = MultiHeadAttention(8, 2, np.random.default_rng(0), dropout=0.5,
                                   spawn_dropout_rng=False)
    x = np.ones((1, 3, 8))
    out = attention(Tensor(x)).data
    assert np.array_equal(out, reference(Tensor(x)).data)


def test_spawn_flag_changes_dropout_but_not_weight_init():
    legacy = MultiHeadAttention(8, 2, np.random.default_rng(0), dropout=0.5,
                                spawn_dropout_rng=False)
    spawned = MultiHeadAttention(8, 2, np.random.default_rng(0), dropout=0.5,
                                 spawn_dropout_rng=True)
    # Weight init consumed identical parent draws in both cases (the q/k/v/o
    # projections are built before the dropout derivation).
    for p_legacy, p_spawned in zip(legacy.parameters(), spawned.parameters()):
        assert np.array_equal(p_legacy.data, p_spawned.data)
    # ... but the training-mode dropout masks come from different streams.
    x = Tensor(np.ones((1, 4, 8)))
    legacy.train(), spawned.train()
    assert not np.array_equal(legacy(x).data, spawned(x).data)


def test_config_flag_threads_through_the_model():
    assert TURLConfig().spawn_dropout_rng is False
    config = TURLConfig(num_layers=2, dim=16, intermediate_dim=32,
                        num_heads=2, dropout=0.5, spawn_dropout_rng=True)
    model = TURLModel(vocab_size=50, entity_vocab_size=30, config=config,
                      seed=0)
    baseline = TURLModel(vocab_size=50, entity_vocab_size=30,
                         config=TURLConfig(num_layers=2, dim=16,
                                           intermediate_dim=32, num_heads=2,
                                           dropout=0.5), seed=0)
    # Flipping the flag must not be silent: the derivation scheme changes
    # which parent draws later layers see, so downstream init differs.
    states = model.state_dict(), baseline.state_dict()
    assert any(not np.array_equal(states[0][k], states[1][k])
               for k in states[0])


def test_goldens_depend_on_the_legacy_default():
    """Regression canary: the committed training goldens assume the legacy
    scheme.  If the default ever flips, this fails before the (slow) golden
    suite does."""
    parent = np.random.default_rng(0)
    child = derive_dropout_rng(parent)
    np.testing.assert_array_equal(child.random(3), LEGACY_STREAM)
