"""Tests for Module system, layers, attention and transformer blocks."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    MultiHeadAttention,
    Sequential,
    Tensor,
    TransformerBlock,
    TransformerEncoder,
)


def rng():
    return np.random.default_rng(11)


def test_linear_shapes_and_affine():
    layer = Linear(4, 3, rng())
    x = Tensor(np.ones((2, 4)))
    out = layer(x)
    assert out.shape == (2, 3)
    expected = np.ones((2, 4)) @ layer.weight.data + layer.bias.data
    np.testing.assert_allclose(out.data, expected)


def test_linear_no_bias():
    layer = Linear(4, 3, rng(), bias=False)
    assert layer.bias is None
    assert len(layer.parameters()) == 1


def test_embedding_lookup_and_bounds():
    emb = Embedding(10, 6, rng())
    ids = np.array([[0, 9], [3, 3]])
    out = emb(ids)
    assert out.shape == (2, 2, 6)
    np.testing.assert_allclose(out.data[0, 1], emb.weight.data[9])
    with pytest.raises(IndexError):
        emb(np.array([10]))
    with pytest.raises(IndexError):
        emb(np.array([-1]))


def test_layernorm_normalizes():
    norm = LayerNorm(8)
    x = Tensor(np.linspace(-4, 4, 16).reshape(2, 8))
    out = norm(x)
    np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-9)
    np.testing.assert_allclose(out.data.std(axis=-1), 1.0, atol=1e-3)


def test_dropout_train_vs_eval():
    drop = Dropout(0.5, rng=rng())
    x = Tensor(np.ones((100, 100)))
    drop.train()
    out_train = drop(x)
    # Inverted dropout preserves the expectation.
    assert abs(out_train.data.mean() - 1.0) < 0.05
    assert (out_train.data == 0).mean() > 0.3
    drop.eval()
    out_eval = drop(x)
    np.testing.assert_allclose(out_eval.data, x.data)


def test_dropout_invalid_rate():
    with pytest.raises(ValueError):
        Dropout(1.0)


def test_named_parameters_nested():
    class Model(Module):
        def __init__(self):
            super().__init__()
            self.encoder = Sequential(Linear(4, 4, rng()), Linear(4, 2, rng()))
            self.head = Linear(2, 1, rng())

    model = Model()
    names = {name for name, _ in model.named_parameters()}
    assert "encoder.steps.0.weight" in names
    assert "encoder.steps.1.bias" in names
    assert "head.weight" in names
    assert len(names) == 6


def test_state_dict_roundtrip():
    model = Sequential(Linear(4, 4, rng()), Linear(4, 2, rng()))
    state = model.state_dict()
    clone = Sequential(Linear(4, 4, rng(ctx := None) if False else np.random.default_rng(99)),
                       Linear(4, 2, np.random.default_rng(98)))
    assert not np.allclose(clone.steps[0].weight.data, model.steps[0].weight.data)
    clone.load_state_dict(state)
    np.testing.assert_allclose(clone.steps[0].weight.data, model.steps[0].weight.data)
    x = Tensor(np.ones((1, 4)))
    np.testing.assert_allclose(model(x).data, clone(x).data)


def test_load_state_dict_strict_errors():
    model = Linear(2, 2, rng())
    with pytest.raises(KeyError):
        model.load_state_dict({"weight": np.zeros((2, 2))})  # missing bias
    with pytest.raises(ValueError):
        model.load_state_dict({"weight": np.zeros((3, 3)), "bias": np.zeros(2)})


def test_train_eval_propagates():
    block = TransformerBlock(8, 2, 16, rng(), dropout=0.1)
    block.eval()
    assert not block.attention.dropout.training
    block.train()
    assert block.attention.dropout.training


def test_attention_output_shape_and_mask():
    attn = MultiHeadAttention(8, 2, rng())
    attn.eval()
    x = Tensor(np.random.default_rng(0).normal(size=(2, 5, 8)))
    out = attn(x)
    assert out.shape == (2, 5, 8)

    # With a diagonal-only mask each position attends solely to itself.
    mask = np.eye(5, dtype=bool)
    out_masked = attn(x, visibility=mask)
    assert out_masked.shape == (2, 5, 8)
    # Changing an invisible position must not change a masked output row.
    x2 = x.data.copy()
    x2[0, 3] += 10.0
    out2 = attn(Tensor(x2), visibility=mask)
    np.testing.assert_allclose(out_masked.data[0, 0], out2.data[0, 0], atol=1e-10)


def test_attention_mask_asymmetric_batch():
    attn = MultiHeadAttention(8, 2, rng())
    attn.eval()
    x = Tensor(np.random.default_rng(1).normal(size=(2, 4, 8)))
    mask = np.ones((2, 4, 4), dtype=bool)
    mask[1, 0, 2] = False  # batch 1, query 0 cannot see key 2
    base = attn(x, visibility=np.ones((2, 4, 4), dtype=bool))
    masked = attn(x, visibility=mask)
    # Batch 0 is unchanged; batch 1 row 0 differs.
    np.testing.assert_allclose(base.data[0], masked.data[0], atol=1e-12)
    assert not np.allclose(base.data[1, 0], masked.data[1, 0])


def test_attention_rejects_bad_mask_shape():
    attn = MultiHeadAttention(8, 2, rng())
    x = Tensor(np.zeros((1, 3, 8)))
    with pytest.raises(ValueError):
        attn(x, visibility=np.ones((4, 4), dtype=bool))


def test_attention_dim_head_mismatch():
    with pytest.raises(ValueError):
        MultiHeadAttention(10, 3, rng())


def test_transformer_encoder_end_to_end_gradients():
    encoder = TransformerEncoder(2, 8, 2, 16, rng())
    encoder.eval()
    x = Tensor(np.random.default_rng(2).normal(size=(2, 6, 8)), requires_grad=True)
    out = encoder(x)
    assert out.shape == (2, 6, 8)
    out.sum().backward()
    assert x.grad is not None
    for name, parameter in encoder.named_parameters():
        assert parameter.grad is not None, f"no grad reached {name}"


def test_training_reduces_loss():
    """A tiny regression sanity check: the substrate can actually learn."""
    gen = np.random.default_rng(3)
    x_data = gen.normal(size=(64, 4))
    true_w = gen.normal(size=(4, 1))
    y = x_data @ true_w + 0.01 * gen.normal(size=(64, 1))

    model = Sequential(Linear(4, 8, gen), Linear(8, 1, gen))
    optimizer = Adam(model.parameters(), learning_rate=0.05)
    first_loss = None
    for _ in range(150):
        out = model(Tensor(x_data))
        loss = ((out - Tensor(y)) ** 2).mean()
        if first_loss is None:
            first_loss = loss.item()
        model.zero_grad()
        loss.backward()
        optimizer.step()
    assert loss.item() < first_loss * 0.05


def test_module_list():
    layers = ModuleList([Linear(2, 2, rng()) for _ in range(3)])
    assert len(layers) == 3
    assert isinstance(layers[1], Linear)
    assert len(layers.parameters()) == 6
