"""Edge-case tests for the autograd tensor."""

import numpy as np
import pytest

from repro.nn import Tensor


def test_squeeze_valid_and_invalid():
    t = Tensor(np.zeros((2, 1, 3)), requires_grad=True)
    assert t.squeeze(1).shape == (2, 3)
    assert t.squeeze(-2).shape == (2, 3)
    with pytest.raises(ValueError):
        t.squeeze(0)


def test_matmul_1d_1d_is_dot():
    a = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
    b = Tensor(np.array([4.0, 5.0, 6.0]), requires_grad=True)
    out = a @ b
    assert out.shape == ()
    assert out.item() == pytest.approx(32.0)
    out.backward()
    np.testing.assert_allclose(a.grad, b.data)
    np.testing.assert_allclose(b.grad, a.data)


def test_matmul_1d_2d_and_2d_1d():
    v = Tensor(np.array([1.0, 2.0]), requires_grad=True)
    m = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
    out = v @ m
    assert out.shape == (3,)
    out.sum().backward()
    np.testing.assert_allclose(v.grad, m.data.sum(axis=1))

    m2 = Tensor(np.arange(6.0).reshape(3, 2), requires_grad=True)
    v2 = Tensor(np.array([1.0, 2.0]), requires_grad=True)
    out2 = m2 @ v2
    assert out2.shape == (3,)
    out2.sum().backward()
    np.testing.assert_allclose(v2.grad, m2.data.sum(axis=0))


def test_pow_rejects_tensor_exponent():
    t = Tensor(np.ones(3))
    with pytest.raises(TypeError):
        t ** Tensor(np.ones(3))


def test_rsub_rtruediv():
    t = Tensor(np.array([2.0]), requires_grad=True)
    (10.0 - t).backward(np.ones(1))
    np.testing.assert_allclose(t.grad, [-1.0])
    t2 = Tensor(np.array([2.0]), requires_grad=True)
    (10.0 / t2).backward(np.ones(1))
    np.testing.assert_allclose(t2.grad, [-10.0 / 4.0])


def test_getitem_slice_grad():
    t = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
    t[1:, :2].sum().backward()
    expected = np.zeros((3, 4))
    expected[1:, :2] = 1.0
    np.testing.assert_allclose(t.grad, expected)


def test_softmax_other_axis():
    data = np.random.default_rng(0).normal(size=(3, 4))
    t = Tensor(data)
    out = t.softmax(axis=0)
    np.testing.assert_allclose(out.data.sum(axis=0), 1.0)


def test_max_keepdims():
    t = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
    out = t.max(axis=1, keepdims=True)
    assert out.shape == (2, 1)
    out.sum().backward()
    expected = np.zeros((2, 3))
    expected[0, 2] = expected[1, 2] = 1.0
    np.testing.assert_allclose(t.grad, expected)


def test_reshape_minus_one():
    t = Tensor(np.zeros((2, 3, 4)))
    assert t.reshape(6, -1).shape == (6, 4)
    assert t.reshape(-1).shape == (24,)


def test_transpose_default_reverses():
    t = Tensor(np.zeros((2, 3, 4)))
    assert t.transpose().shape == (4, 3, 2)


def test_repr_and_len():
    t = Tensor(np.zeros((5, 2)), requires_grad=True)
    assert "requires_grad=True" in repr(t)
    assert len(t) == 5


def test_item_on_scalar_only():
    assert Tensor(np.array(3.5)).item() == 3.5
    with pytest.raises((TypeError, ValueError)):
        Tensor(np.zeros(3)).item()


def test_backward_on_no_grad_tensor_raises():
    with pytest.raises(RuntimeError):
        Tensor(np.ones(2)).backward(np.ones(2))


def test_sigmoid_extreme_values_stable():
    t = Tensor(np.array([-1000.0, 0.0, 1000.0]))
    out = t.sigmoid().data
    assert np.isfinite(out).all()
    np.testing.assert_allclose(out, [0.0, 0.5, 1.0], atol=1e-12)


def test_exp_log_chain_grad():
    t = Tensor(np.array([0.5, 1.5]), requires_grad=True)
    (t.exp().log()).sum().backward()  # identity composition
    np.testing.assert_allclose(t.grad, [1.0, 1.0], atol=1e-12)


def test_relu_at_zero_subgradient():
    t = Tensor(np.array([0.0]), requires_grad=True)
    t.relu().sum().backward()
    assert t.grad[0] in (0.0, 1.0)  # valid subgradient; ours picks 0
