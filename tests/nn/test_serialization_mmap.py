"""The zero-copy checkpoint path: ``load_state(mmap=True)``.

Three contracts: memory-mapped arrays are value-identical to the eager
load, they are read-only (writes raise), and N loaders share the one
on-disk copy — loading twice traces ~zero ndarray bytes under
``tracemalloc`` (the accounting ``repro.bench.runner`` uses), where the
eager path traces the full weight payload per loader.
"""

import os
import tracemalloc

import numpy as np
import pytest

from repro.config import TURLConfig
from repro.core.model import TURLModel
from repro.nn.serialization import (
    load_state,
    load_state_dict,
    save_state_dict,
)


@pytest.fixture(scope="module")
def state():
    rng = np.random.default_rng(17)
    return {
        "encoder.blocks.0.weight": rng.standard_normal((64, 96)),
        "encoder.blocks.1.weight": np.asfortranarray(
            rng.standard_normal((48, 32))),
        "embedding.weight": rng.standard_normal((256, 64)),
        "head.bias": np.zeros(96),
        "step": np.asarray(7.0),  # 0-d scalar member
    }


@pytest.fixture
def archive(state, tmp_path):
    path = os.path.join(tmp_path, "model.npz")
    save_state_dict(state, path, compress=False)
    return path


def _payload_bytes(state) -> int:
    return sum(np.asarray(value).nbytes for value in state.values())


# -- parity ------------------------------------------------------------------

def test_mmap_load_is_value_identical_to_eager(state, archive):
    eager = load_state(archive)
    mapped = load_state(archive, mmap=True)
    assert sorted(eager) == sorted(mapped) == sorted(state)
    for name in state:
        assert np.array_equal(mapped[name], eager[name])
        assert np.array_equal(mapped[name], state[name])
        assert mapped[name].dtype == eager[name].dtype
        assert mapped[name].shape == eager[name].shape


def test_fortran_order_round_trips(state, archive):
    mapped = load_state(archive, mmap=True)
    assert mapped["encoder.blocks.1.weight"].flags["F_CONTIGUOUS"]
    assert np.array_equal(mapped["encoder.blocks.1.weight"],
                          state["encoder.blocks.1.weight"])


def test_legacy_loader_unchanged(state, archive):
    legacy = load_state_dict(archive)
    for name in state:
        assert np.array_equal(legacy[name], state[name])


def test_eager_load_of_uncompressed_archive_is_writable(archive):
    eager = load_state(archive)
    eager["head.bias"][0] = 1.0  # private heap copy: writes are fine


# -- read-only ---------------------------------------------------------------

def test_mmap_arrays_reject_writes(archive):
    mapped = load_state(archive, mmap=True)
    for name, value in mapped.items():
        assert not value.flags.writeable, name
        with pytest.raises((ValueError, RuntimeError)):
            value[...] = 0.0


def test_compressed_archive_refuses_mmap(state, tmp_path):
    path = os.path.join(tmp_path, "compressed.npz")
    save_state_dict(state, path, compress=True)
    with pytest.raises(ValueError, match="compress=False"):
        load_state(path, mmap=True)
    # ... but the eager path still reads it.
    eager = load_state(path)
    assert np.array_equal(eager["embedding.weight"],
                          state["embedding.weight"])


# -- shared on-disk copy -----------------------------------------------------

def test_two_loaders_share_one_copy(state, archive):
    payload = _payload_bytes(state)

    tracemalloc.start()
    try:
        mapped_a = load_state(archive, mmap=True)
        mapped_b = load_state(archive, mmap=True)
        _, mmap_peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    tracemalloc.start()
    try:
        eager_a = load_state(archive)
        eager_b = load_state(archive)
        _, eager_peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    # Two eager loaders materialize the payload twice; two mmap loaders
    # trace only bookkeeping (headers, dict machinery), not weight bytes.
    assert eager_peak >= 2 * payload
    assert mmap_peak < payload / 4
    assert np.array_equal(mapped_a["embedding.weight"],
                          eager_a["embedding.weight"])
    assert np.array_equal(mapped_b["embedding.weight"],
                          eager_b["embedding.weight"])


def test_two_models_bind_mmap_state_without_heap_copies(tmp_path):
    # Big enough that the weight payload (a few MiB) dwarfs loader
    # bookkeeping (zip/header parsing traces ~100 KiB), so the assertion
    # measures weight duplication and nothing else.
    config = TURLConfig(num_layers=2, dim=64, intermediate_dim=128,
                        num_heads=2)
    model = TURLModel(2000, 300, config, seed=0)
    path = os.path.join(tmp_path, "model.npz")
    save_state_dict(model.state_dict(), path, compress=False)
    payload = _payload_bytes(model.state_dict())
    assert payload > 1_000_000

    worker_a = TURLModel(2000, 300, config, seed=1)
    worker_b = TURLModel(2000, 300, config, seed=2)
    tracemalloc.start()
    try:
        worker_a.load_state_dict(load_state(path, mmap=True), copy=False)
        worker_b.load_state_dict(load_state(path, mmap=True), copy=False)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert peak < payload / 4  # both workers serve off the file pages

    for (name_a, param_a), (name_b, param_b) in zip(
            sorted(worker_a.named_parameters()),
            sorted(worker_b.named_parameters())):
        assert name_a == name_b
        assert np.array_equal(param_a.data, param_b.data)
        assert not param_a.data.flags.writeable


def test_mmap_bound_model_predicts_like_eager(tmp_path):
    config = TURLConfig(num_layers=2, dim=32, intermediate_dim=64,
                        num_heads=2)
    source = TURLModel(100, 50, config, seed=0)
    path = os.path.join(tmp_path, "model.npz")
    save_state_dict(source.state_dict(), path, compress=False)

    eager = TURLModel(100, 50, config, seed=3)
    eager.load_state_dict(load_state(path))
    mapped = TURLModel(100, 50, config, seed=4)
    mapped.load_state_dict(load_state(path, mmap=True), copy=False)
    for (_, param_e), (_, param_m) in zip(sorted(eager.named_parameters()),
                                          sorted(mapped.named_parameters())):
        assert np.array_equal(param_e.data, param_m.data)
