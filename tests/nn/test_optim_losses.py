"""Tests for optimizers, schedules, clipping and loss functions."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    ConstantSchedule,
    LinearDecaySchedule,
    SGD,
    Tensor,
    Parameter,
    binary_cross_entropy_logits,
    clip_grad_norm,
    cross_entropy_logits,
    masked_cross_entropy,
)
from repro.nn.serialization import load_state_dict, save_state_dict


def test_sgd_step():
    p = Parameter(np.array([1.0, 2.0]))
    p.grad = np.array([0.5, -0.5])
    SGD([p], learning_rate=0.1).step()
    np.testing.assert_allclose(p.data, [0.95, 2.05])


def test_sgd_momentum_accumulates():
    p = Parameter(np.array([0.0]))
    opt = SGD([p], learning_rate=1.0, momentum=0.9)
    p.grad = np.array([1.0])
    opt.step()
    np.testing.assert_allclose(p.data, [-1.0])
    p.grad = np.array([1.0])
    opt.step()
    # velocity = 0.9*1 + 1 = 1.9
    np.testing.assert_allclose(p.data, [-2.9])


def test_adam_minimizes_quadratic():
    p = Parameter(np.array([5.0]))
    opt = Adam([p], learning_rate=0.3)
    for _ in range(200):
        loss = (p * p).sum()
        opt.zero_grad()
        loss.backward()
        opt.step()
    assert abs(p.data[0]) < 1e-2


def test_adam_skips_parameters_without_grad():
    p1 = Parameter(np.array([1.0]))
    p2 = Parameter(np.array([1.0]))
    p1.grad = np.array([1.0])
    Adam([p1, p2], learning_rate=0.1).step()
    assert p1.data[0] != 1.0
    assert p2.data[0] == 1.0


def test_linear_decay_schedule():
    schedule = LinearDecaySchedule(1.0, total_steps=10)
    assert schedule(0) == 1.0
    assert schedule(5) == pytest.approx(0.5)
    assert schedule(10) == pytest.approx(0.0)
    assert schedule(100) == pytest.approx(0.0)


def test_linear_decay_with_warmup_and_floor():
    schedule = LinearDecaySchedule(1.0, total_steps=10, warmup_steps=2, final_fraction=0.1)
    assert schedule(0) == pytest.approx(0.5)
    assert schedule(1) == pytest.approx(1.0)
    assert schedule(10) == pytest.approx(0.1)


def test_constant_schedule():
    assert ConstantSchedule(0.3)(999) == 0.3


def test_clip_grad_norm():
    p1 = Parameter(np.zeros(3))
    p2 = Parameter(np.zeros(4))
    p1.grad = np.full(3, 3.0)
    p2.grad = np.full(4, 4.0)
    total = clip_grad_norm([p1, p2], max_norm=1.0)
    expected_norm = np.sqrt(3 * 9 + 4 * 16)
    assert total == pytest.approx(expected_norm)
    new_norm = np.sqrt((p1.grad**2).sum() + (p2.grad**2).sum())
    assert new_norm == pytest.approx(1.0)


def test_clip_grad_norm_noop_below_threshold():
    p = Parameter(np.zeros(2))
    p.grad = np.array([0.1, 0.1])
    clip_grad_norm([p], max_norm=10.0)
    np.testing.assert_allclose(p.grad, [0.1, 0.1])


def test_cross_entropy_matches_manual():
    logits = Tensor(np.array([[2.0, 0.0, -1.0], [0.0, 1.0, 0.0]]), requires_grad=True)
    targets = np.array([0, 1])
    loss = cross_entropy_logits(logits, targets)
    manual = -np.mean([
        2.0 - np.log(np.exp(2.0) + 1 + np.exp(-1.0)),
        1.0 - np.log(1 + np.e + 1),
    ])
    assert loss.item() == pytest.approx(manual)
    loss.backward()
    # Gradient rows sum to zero (softmax minus one-hot, averaged).
    np.testing.assert_allclose(logits.grad.sum(axis=1), 0.0, atol=1e-12)


def test_cross_entropy_ignore_index():
    logits = Tensor(np.zeros((3, 4)), requires_grad=True)
    targets = np.array([1, -100, 2])
    loss = cross_entropy_logits(logits, targets, ignore_index=-100)
    assert loss.item() == pytest.approx(np.log(4))
    with pytest.raises(ValueError):
        cross_entropy_logits(Tensor(np.zeros((1, 4))), np.array([-100]), ignore_index=-100)


def test_binary_cross_entropy_matches_manual():
    logits = Tensor(np.array([[0.5, -1.0]]), requires_grad=True)
    targets = np.array([[1.0, 0.0]])
    loss = binary_cross_entropy_logits(logits, targets)
    x = np.array([0.5, -1.0])
    y = np.array([1.0, 0.0])
    manual = np.mean(np.maximum(x, 0) - x * y + np.log1p(np.exp(-np.abs(x))))
    assert loss.item() == pytest.approx(manual)
    loss.backward()
    sigmoid = 1 / (1 + np.exp(-x))
    np.testing.assert_allclose(logits.grad, (sigmoid - y).reshape(1, 2) / 2, atol=1e-9)


def test_binary_cross_entropy_extreme_logits_stable():
    logits = Tensor(np.array([[100.0, -100.0]]))
    targets = np.array([[1.0, 0.0]])
    loss = binary_cross_entropy_logits(logits, targets)
    assert np.isfinite(loss.item())
    assert loss.item() < 1e-6


def test_binary_cross_entropy_shape_check():
    with pytest.raises(ValueError):
        binary_cross_entropy_logits(Tensor(np.zeros((2, 2))), np.zeros((2, 3)))


def test_masked_cross_entropy_uses_only_masked():
    logits = Tensor(np.random.default_rng(0).normal(size=(2, 3, 5)), requires_grad=True)
    targets = np.array([[1, 2, 3], [0, 4, 1]])
    mask = np.array([[True, False, False], [False, True, False]])
    loss = masked_cross_entropy(logits, targets, mask)
    loss.backward()
    # Unmasked positions receive zero gradient.
    assert np.allclose(logits.grad[0, 1], 0)
    assert np.allclose(logits.grad[0, 2], 0)
    assert np.allclose(logits.grad[1, 0], 0)
    assert not np.allclose(logits.grad[0, 0], 0)


def test_masked_cross_entropy_empty_mask_raises():
    with pytest.raises(ValueError):
        masked_cross_entropy(Tensor(np.zeros((1, 2, 3))), np.zeros((1, 2)), np.zeros((1, 2), dtype=bool))


def test_state_dict_serialization_roundtrip(tmp_path):
    state = {"layer.weight": np.arange(6.0).reshape(2, 3), "layer.bias": np.ones(3)}
    path = str(tmp_path / "ckpt.npz")
    save_state_dict(state, path)
    loaded = load_state_dict(path)
    assert set(loaded) == set(state)
    for key in state:
        np.testing.assert_allclose(loaded[key], state[key])
