"""Unit tests for the opt-in autograd sanitizer.

Covers the failure modes the sanitizer exists to catch — in-place mutation
of tape-referenced arrays, parameter rebinds mid-graph, NaN/Inf outputs
attributed to the creating op, gradient-shape mismatches — plus the two
properties that make it safe to leave wired into the engine: off-mode costs
nothing observable, and on-mode is bit-identical to off for seeded runs.
"""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Linear,
    SanitizerError,
    Tensor,
    assert_finite_module,
    sanitize_ops,
    sanitizer_enabled,
)


def test_sanitize_ops_is_scoped_and_reentrant():
    assert not sanitizer_enabled()
    with sanitize_ops():
        assert sanitizer_enabled()
        with sanitize_ops():
            assert sanitizer_enabled()
        assert sanitizer_enabled()
    assert not sanitizer_enabled()


def test_in_place_mutation_is_caught_with_op_name():
    with sanitize_ops():
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 2)), requires_grad=True)
        out = (a * b).sum()
        a.data[0, 0] = 5.0  # mutate while the tape still references `a`
        with pytest.raises(SanitizerError, match="mutated in place"):
            out.backward()


def test_rebind_is_caught_as_version_bump():
    with sanitize_ops():
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        out = a.tanh().sum()
        a.data = np.zeros((2, 2))  # optimizer-style rebind before backward
        with pytest.raises(SanitizerError, match="reassigned"):
            out.backward()


def test_nan_output_attributed_to_creating_op():
    with sanitize_ops():
        a = Tensor(np.array([1.0, -1.0]), requires_grad=True)
        with pytest.raises(SanitizerError, match="op 'log'"):
            with np.errstate(invalid="ignore"):
                a.log()


def test_inf_output_attributed_to_creating_op():
    with sanitize_ops():
        a = Tensor(np.array([1.0, 0.0]), requires_grad=True)
        with pytest.raises(SanitizerError, match="op '__truediv__'"):
            with np.errstate(divide="ignore"):
                1.0 / a


def test_grad_shape_mismatch_is_caught():
    with sanitize_ops():
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        out = a.tanh()
        with pytest.raises(SanitizerError, match="shape"):
            out.backward(np.ones((2, 2)))


def test_module_wrapper_prefixes_the_failing_module():
    layer = Linear(2, 2, np.random.default_rng(0))
    with sanitize_ops():
        bad = Tensor(np.array([[np.nan, 1.0]]))
        with pytest.raises(SanitizerError, match="Linear"):
            layer(bad)


def test_assert_finite_module_names_the_parameter():
    layer = Linear(2, 2, np.random.default_rng(0))
    layer.weight.data[0, 0] = np.inf
    with pytest.raises(SanitizerError, match="weight"):
        assert_finite_module(layer, context="after optimizer step")


def test_clean_graph_passes_under_sanitizer():
    with sanitize_ops():
        a = Tensor(np.random.default_rng(0).normal(size=(3, 3)),
                   requires_grad=True)
        b = Tensor(np.random.default_rng(1).normal(size=(3, 3)),
                   requires_grad=True)
        ((a @ b).tanh().sum()).backward()
    assert a.grad is not None and b.grad is not None


def _train_steps(sanitize: bool) -> np.ndarray:
    """A few seeded Adam steps on a tiny regression problem."""
    rng = np.random.default_rng(42)
    layer = Linear(4, 2, np.random.default_rng(7))
    optimizer = Adam(layer.parameters(), learning_rate=1e-2)
    inputs = rng.normal(size=(8, 4))
    targets = rng.normal(size=(8, 2))
    for _ in range(5):
        def step():
            prediction = layer(Tensor(inputs))
            loss = ((prediction - Tensor(targets)) ** 2.0).mean()
            layer.zero_grad()
            loss.backward()
            optimizer.step()
        if sanitize:
            with sanitize_ops():
                step()
        else:
            step()
    return layer.weight.data.copy()


def test_sanitize_on_is_bit_identical_to_off():
    plain = _train_steps(sanitize=False)
    sanitized = _train_steps(sanitize=True)
    assert plain.tobytes() == sanitized.tobytes()
