"""Gradient correctness tests: autograd vs central finite differences."""

import numpy as np
import pytest

from repro.nn import Tensor, concat, stack, no_grad

RNG = np.random.default_rng(7)


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``fn`` at ``x``."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x)
        flat[i] = original - eps
        minus = fn(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_unary(op_name, data, autograd_fn, tol=1e-5):
    t = Tensor(data.copy(), requires_grad=True)
    out = autograd_fn(t).sum()
    out.backward()

    def scalar(x):
        return float(autograd_fn(Tensor(x)).sum().data)

    expected = numerical_grad(scalar, data.copy())
    np.testing.assert_allclose(t.grad, expected, rtol=tol, atol=tol,
                               err_msg=f"gradient mismatch for {op_name}")


@pytest.mark.parametrize("op,fn", [
    ("exp", lambda t: t.exp()),
    ("log", lambda t: (t * t + 1.0).log()),
    ("tanh", lambda t: t.tanh()),
    ("sigmoid", lambda t: t.sigmoid()),
    ("relu", lambda t: (t + 0.05).relu()),
    ("gelu", lambda t: t.gelu()),
    ("pow", lambda t: (t * t + 1.0) ** 1.5),
    ("softmax", lambda t: t.softmax(axis=-1) * Tensor(np.arange(4.0))),
    ("log_softmax", lambda t: t.log_softmax(axis=-1) * Tensor(np.arange(4.0))),
])
def test_unary_ops(op, fn):
    data = RNG.normal(size=(3, 4))
    check_unary(op, data, fn)


def test_add_broadcast_grad():
    a = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
    b = Tensor(RNG.normal(size=(4,)), requires_grad=True)
    (a + b).sum().backward()
    np.testing.assert_allclose(a.grad, np.ones((3, 4)))
    np.testing.assert_allclose(b.grad, np.full(4, 3.0))


def test_mul_broadcast_grad():
    a = Tensor(RNG.normal(size=(2, 3, 4)), requires_grad=True)
    b = Tensor(RNG.normal(size=(1, 3, 1)), requires_grad=True)
    (a * b).sum().backward()
    np.testing.assert_allclose(a.grad, np.broadcast_to(b.data, a.shape))
    np.testing.assert_allclose(b.grad, a.data.sum(axis=(0, 2), keepdims=True).reshape(1, 3, 1) * 0 + a.data.sum(axis=(0, 2)).reshape(1, 3, 1))


def test_matmul_grad_matches_numerical():
    a_data = RNG.normal(size=(3, 4))
    b_data = RNG.normal(size=(4, 2))
    weights = RNG.normal(size=(3, 2))

    a = Tensor(a_data.copy(), requires_grad=True)
    b = Tensor(b_data.copy(), requires_grad=True)
    ((a @ b) * Tensor(weights)).sum().backward()

    def fa(x):
        return float(((Tensor(x) @ Tensor(b_data)) * Tensor(weights)).sum().data)

    def fb(x):
        return float(((Tensor(a_data) @ Tensor(x)) * Tensor(weights)).sum().data)

    np.testing.assert_allclose(a.grad, numerical_grad(fa, a_data.copy()), rtol=1e-5, atol=1e-6)
    np.testing.assert_allclose(b.grad, numerical_grad(fb, b_data.copy()), rtol=1e-5, atol=1e-6)


def test_batched_matmul_grad():
    a_data = RNG.normal(size=(2, 3, 4))
    b_data = RNG.normal(size=(2, 4, 5))
    a = Tensor(a_data.copy(), requires_grad=True)
    b = Tensor(b_data.copy(), requires_grad=True)
    (a @ b).sum().backward()

    def fa(x):
        return float((Tensor(x) @ Tensor(b_data)).sum().data)

    np.testing.assert_allclose(a.grad, numerical_grad(fa, a_data.copy()), rtol=1e-5, atol=1e-6)


def test_matmul_broadcast_grad():
    # (3, 4) @ (2, 4, 5): left operand broadcast over batch.
    a_data = RNG.normal(size=(3, 4))
    b_data = RNG.normal(size=(2, 4, 5))
    a = Tensor(a_data.copy(), requires_grad=True)
    b = Tensor(b_data.copy(), requires_grad=True)
    (a @ b).sum().backward()

    def fa(x):
        return float((Tensor(x) @ Tensor(b_data)).sum().data)

    np.testing.assert_allclose(a.grad, numerical_grad(fa, a_data.copy()), rtol=1e-5, atol=1e-6)


def test_sum_axis_keepdims_grad():
    data = RNG.normal(size=(2, 3, 4))
    t = Tensor(data.copy(), requires_grad=True)
    (t.sum(axis=1) * 2.0).sum().backward()
    np.testing.assert_allclose(t.grad, np.full(data.shape, 2.0))

    t2 = Tensor(data.copy(), requires_grad=True)
    (t2.sum(axis=(0, 2), keepdims=True) * 3.0).sum().backward()
    np.testing.assert_allclose(t2.grad, np.full(data.shape, 3.0))


def test_mean_grad():
    data = RNG.normal(size=(4, 5))
    t = Tensor(data.copy(), requires_grad=True)
    t.mean().backward()
    np.testing.assert_allclose(t.grad, np.full(data.shape, 1.0 / 20))


def test_max_grad_splits_ties():
    data = np.array([[1.0, 3.0, 3.0], [2.0, 0.0, 1.0]])
    t = Tensor(data.copy(), requires_grad=True)
    t.max(axis=1).sum().backward()
    np.testing.assert_allclose(t.grad, [[0.0, 0.5, 0.5], [1.0, 0.0, 0.0]])


def test_getitem_grad_scatter():
    data = RNG.normal(size=(5, 3))
    t = Tensor(data.copy(), requires_grad=True)
    idx = np.array([0, 2, 2, 4])
    t[idx].sum().backward()
    expected = np.zeros((5, 3))
    expected[0] = 1
    expected[2] = 2
    expected[4] = 1
    np.testing.assert_allclose(t.grad, expected)


def test_take_rows_grad():
    data = RNG.normal(size=(6, 3))
    t = Tensor(data.copy(), requires_grad=True)
    ids = np.array([[1, 1], [5, 0]])
    out = t.take_rows(ids)
    assert out.shape == (2, 2, 3)
    out.sum().backward()
    expected = np.zeros((6, 3))
    expected[1] = 2
    expected[5] = 1
    expected[0] = 1
    np.testing.assert_allclose(t.grad, expected)


def test_reshape_transpose_grad():
    data = RNG.normal(size=(2, 3, 4))
    t = Tensor(data.copy(), requires_grad=True)
    scale = RNG.normal(size=(4, 3, 2))
    (t.transpose(2, 1, 0) * Tensor(scale)).sum().backward()
    np.testing.assert_allclose(t.grad, scale.transpose(2, 1, 0))

    t2 = Tensor(data.copy(), requires_grad=True)
    (t2.reshape(6, 4) * 2).sum().backward()
    np.testing.assert_allclose(t2.grad, np.full(data.shape, 2.0))


def test_layer_norm_grad_matches_numerical():
    data = RNG.normal(size=(2, 5))
    weight = RNG.normal(size=5)
    bias = RNG.normal(size=5)
    scale = RNG.normal(size=(2, 5))

    t = Tensor(data.copy(), requires_grad=True)
    w = Tensor(weight.copy(), requires_grad=True)
    b = Tensor(bias.copy(), requires_grad=True)
    (t.layer_norm(w, b) * Tensor(scale)).sum().backward()

    def fx(x):
        return float((Tensor(x).layer_norm(Tensor(weight), Tensor(bias)) * Tensor(scale)).sum().data)

    def fw(x):
        return float((Tensor(data).layer_norm(Tensor(x), Tensor(bias)) * Tensor(scale)).sum().data)

    def fb(x):
        return float((Tensor(data).layer_norm(Tensor(weight), Tensor(x)) * Tensor(scale)).sum().data)

    np.testing.assert_allclose(t.grad, numerical_grad(fx, data.copy()), rtol=1e-4, atol=1e-6)
    np.testing.assert_allclose(w.grad, numerical_grad(fw, weight.copy()), rtol=1e-4, atol=1e-6)
    np.testing.assert_allclose(b.grad, numerical_grad(fb, bias.copy()), rtol=1e-4, atol=1e-6)


def test_masked_fill_blocks_gradient():
    data = RNG.normal(size=(3, 3))
    mask = np.eye(3, dtype=bool)
    t = Tensor(data.copy(), requires_grad=True)
    t.masked_fill(mask, -100.0).sum().backward()
    np.testing.assert_allclose(t.grad, 1.0 - np.eye(3))


def test_concat_grad():
    a = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
    b = Tensor(RNG.normal(size=(2, 2)), requires_grad=True)
    out = concat([a, b], axis=1)
    assert out.shape == (2, 5)
    (out * 2.0).sum().backward()
    np.testing.assert_allclose(a.grad, np.full((2, 3), 2.0))
    np.testing.assert_allclose(b.grad, np.full((2, 2), 2.0))


def test_stack_grad():
    a = Tensor(RNG.normal(size=(3,)), requires_grad=True)
    b = Tensor(RNG.normal(size=(3,)), requires_grad=True)
    out = stack([a, b], axis=0)
    assert out.shape == (2, 3)
    weights = np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
    (out * Tensor(weights)).sum().backward()
    np.testing.assert_allclose(a.grad, weights[0])
    np.testing.assert_allclose(b.grad, weights[1])


def test_division_grad():
    a_data = RNG.normal(size=(3,)) + 3.0
    b_data = RNG.normal(size=(3,)) + 3.0
    a = Tensor(a_data.copy(), requires_grad=True)
    b = Tensor(b_data.copy(), requires_grad=True)
    (a / b).sum().backward()
    np.testing.assert_allclose(a.grad, 1.0 / b_data)
    np.testing.assert_allclose(b.grad, -a_data / b_data**2)


def test_gradient_accumulates_across_uses():
    t = Tensor(np.array([2.0]), requires_grad=True)
    out = t * t + t * 3.0  # d/dt = 2t + 3 = 7
    out.sum().backward()
    np.testing.assert_allclose(t.grad, [7.0])


def test_no_grad_context_disables_graph():
    t = Tensor(np.ones(3), requires_grad=True)
    with no_grad():
        out = (t * 2.0).sum()
    assert not out.requires_grad
    with pytest.raises(RuntimeError):
        out.backward()


def test_backward_requires_scalar_without_grad_arg():
    t = Tensor(np.ones((2, 2)), requires_grad=True)
    out = t * 2.0
    with pytest.raises(RuntimeError):
        out.backward()
    out.backward(np.ones((2, 2)))
    np.testing.assert_allclose(t.grad, np.full((2, 2), 2.0))


def test_detach_cuts_graph():
    t = Tensor(np.ones(2), requires_grad=True)
    out = (t.detach() * 5.0).sum()
    assert not out.requires_grad
