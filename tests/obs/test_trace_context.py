"""Request-scoped trace contexts: span records, parent links, offsets,
journal streaming, cross-thread capture/adopt, and the span cap."""

import threading

import pytest

from repro.obs import (
    EVENT_TRACE,
    RunJournal,
    TraceContext,
    adopt_context,
    capture_context,
    current_trace,
    enable_tracing,
    new_trace_id,
    read_journal,
    start_trace,
    trace,
)
from repro.obs.clock import perf_counter
from repro.obs.tracing import EMPTY_SNAPSHOT, TRACE_SPAN_CAP


def test_trace_ids_are_unique_and_rng_free():
    ids = {new_trace_id() for _ in range(1000)}
    assert len(ids) == 1000


def test_no_active_trace_by_default():
    assert current_trace() is None
    assert capture_context() is EMPTY_SNAPSHOT


def test_spans_record_parents_and_offsets():
    with start_trace("serve/demo") as context:
        assert current_trace() is context
        with trace("serve/decode"):
            pass
        with trace("serve/wait"):
            with trace("serve/predict"):
                pass
    assert current_trace() is None
    names = [span.name for span in context.spans]
    assert names == ["serve/decode", "serve/wait", "serve/predict"]
    decode, wait, predict = context.spans
    assert decode.parent == -1 and wait.parent == -1
    assert predict.parent == 1  # nested under serve/wait
    for span in context.spans:
        assert 0.0 <= span.start <= span.end
    assert context.wall_seconds >= wait.end
    assert predict.start >= wait.start and predict.end <= wait.end


def test_trace_event_streams_to_journal(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    journal = RunJournal(path)
    with start_trace("serve/demo", journal=journal) as context:
        with trace("serve/decode"):
            pass
    journal.close()
    events = read_journal(path)
    assert len(events) == 1
    event = events[0]
    assert event["event"] == EVENT_TRACE
    assert event["trace_id"] == context.trace_id
    assert event["name"] == "serve/demo"
    assert event["wall_seconds"] > 0
    assert event["n_spans"] == 1
    assert event["spans"][0]["name"] == "serve/decode"
    assert event["spans"][0]["parent"] == -1


def test_explicit_trace_id_is_respected():
    with start_trace("serve/demo", trace_id="req-42") as context:
        pass
    assert context.trace_id == "req-42"


def test_capture_adopt_connects_thread_hop():
    """A span recorded on a worker thread lands in the originating trace,
    parented under the span open at capture time."""
    results = {}

    def worker(snapshot):
        with adopt_context(snapshot):
            results["inherited"] = current_trace()
            with trace("serve/predict"):
                pass

    with start_trace("serve/demo") as context:
        with trace("serve/wait"):
            snapshot = capture_context()
            thread = threading.Thread(target=worker, args=(snapshot,))
            thread.start()
            thread.join()
    assert results["inherited"] is context
    names = {span.name: span for span in context.spans}
    assert set(names) == {"serve/wait", "serve/predict"}
    assert names["serve/predict"].parent == 0  # under serve/wait


def test_snapshot_add_span_without_adoption():
    with start_trace("serve/demo") as context:
        with trace("serve/wait"):
            snapshot = capture_context()
            start = perf_counter()
            end = perf_counter()
    snapshot.add_span("serve/queue", start, end)
    queue_span = context.spans[-1]
    assert queue_span.name == "serve/queue"
    assert queue_span.parent == 0
    assert queue_span.end >= queue_span.start >= 0.0
    # the empty snapshot silently ignores attribution
    EMPTY_SNAPSHOT.add_span("serve/queue", start, end)


def test_tracer_aggregate_still_works_inside_context():
    tracer = enable_tracing()
    with start_trace("serve/demo"):
        with trace("outer"):
            with trace("inner"):
                pass
    assert tracer.stats("outer").count == 1
    assert (("outer", "inner") in tracer.paths())


def test_span_cap_drops_excess_spans():
    context = TraceContext("cap")
    for _ in range(TRACE_SPAN_CAP + 10):
        context.close_span(context.open_span("s"))
    assert len(context.spans) == TRACE_SPAN_CAP
    assert context.dropped_spans == 10
    event = context.finish().to_event()
    assert event["dropped_spans"] == 10


def test_coverage_merges_overlapping_root_spans():
    from repro.obs import SpanRecord

    context = TraceContext("cov")
    context.spans.extend([
        SpanRecord("a", -1, 0.0, 0.6),
        SpanRecord("b", -1, 0.4, 1.0),   # overlaps a: union is [0, 1]
        SpanRecord("child", 0, 0.1, 0.2),  # non-root: ignored
    ])
    context.wall_seconds = 1.0
    assert context.coverage() == pytest.approx(1.0)
    context.wall_seconds = 2.0
    assert context.coverage() == pytest.approx(0.5)


def test_concurrent_traces_never_interleave():
    """Many threads each run their own trace; every context must contain
    exactly its own spans with consistent nesting."""
    errors = []

    def worker(i):
        try:
            for _ in range(20):
                with start_trace(f"serve/task{i}") as context:
                    with trace(f"outer{i}"):
                        with trace(f"inner{i}"):
                            pass
                names = [span.name for span in context.spans]
                assert names == [f"outer{i}", f"inner{i}"], names
                assert context.spans[1].parent == 0
                assert context.spans[0].parent == -1
        except Exception as error:  # surface in the main thread
            errors.append(error)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
