"""Trace-context propagation through the serving micro-batcher.

The satellite guarantee: a request traced through ``Client ->
MicroBatcher`` worker threads yields one connected trace, and concurrent
requests never interleave each other's span stacks — even under a
threaded stress load."""

import threading

from repro.obs import start_trace, trace
from repro.serve.batcher import MicroBatcher


class _EchoPredictor:
    """Stands in for Predictor: returns instances tagged with the task."""

    def predict_batch(self, task, instances):
        return [{"task": task, "instance": instance}
                for instance in instances]


def test_single_request_yields_one_connected_trace():
    predictor = _EchoPredictor()
    with MicroBatcher(predictor, max_batch_size=4, max_wait_ms=1.0) as batcher:
        with start_trace("serve/entity_linking") as context:
            with trace("serve/wait"):
                result = batcher.submit("entity_linking", {"row": 0}).result()
    assert result["task"] == "entity_linking"
    by_name = {span.name: span for span in context.spans}
    # the batcher worker attributed its spans back into the request trace
    assert {"serve/wait", "serve/queue", "serve/predict"} <= set(by_name)
    wait_index = context.spans.index(by_name["serve/wait"])
    assert by_name["serve/queue"].parent == wait_index
    assert by_name["serve/predict"].parent == wait_index
    # predict happens strictly after the queue wait begins
    assert by_name["serve/predict"].start >= by_name["serve/queue"].start


def test_batched_requests_each_get_their_own_spans():
    predictor = _EchoPredictor()
    contexts = {}
    barrier = threading.Barrier(4)

    def request(i):
        barrier.wait()
        with start_trace(f"serve/task{i}") as context:
            with trace("serve/wait"):
                batcher.submit("entity_linking", i).result()
        contexts[i] = context

    with MicroBatcher(predictor, max_batch_size=4,
                      max_wait_ms=50.0) as batcher:
        threads = [threading.Thread(target=request, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    assert len(contexts) == 4
    for i, context in contexts.items():
        names = sorted(span.name for span in context.spans)
        assert names == ["serve/predict", "serve/queue", "serve/wait"], (
            f"request {i} got foreign or missing spans: {names}")


def test_threaded_stress_never_interleaves_span_stacks():
    """32 concurrent traced requests x several rounds: every trace ends up
    with exactly its own three spans, correctly parented, and every future
    resolves to its own payload."""
    predictor = _EchoPredictor()
    errors = []

    def request(round_index, i):
        try:
            with start_trace(f"serve/stress{i}") as context:
                with trace("serve/wait"):
                    result = batcher.submit(
                        f"task{i % 3}", (round_index, i)).result()
            assert result["instance"] == (round_index, i)
            by_name = {span.name: span for span in context.spans}
            assert set(by_name) == {"serve/wait", "serve/queue",
                                    "serve/predict"}, sorted(by_name)
            wait_index = context.spans.index(by_name["serve/wait"])
            assert by_name["serve/queue"].parent == wait_index
            assert by_name["serve/predict"].parent == wait_index
        except Exception as error:  # surface in the main thread
            errors.append(error)

    with MicroBatcher(predictor, max_batch_size=8,
                      max_wait_ms=1.0) as batcher:
        for round_index in range(3):
            threads = [
                threading.Thread(target=request, args=(round_index, i))
                for i in range(32)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
    assert errors == []


def test_untraced_submitters_are_untouched():
    predictor = _EchoPredictor()
    with MicroBatcher(predictor, max_batch_size=2, max_wait_ms=1.0) as batcher:
        result = batcher.predict("entity_linking", {"row": 1})
    assert result["instance"] == {"row": 1}
