"""Prometheus text exposition: type lines, summaries, name sanitization."""

from repro.obs import (
    CONTENT_TYPE,
    MetricsRegistry,
    enable_metrics,
    format_prometheus,
    sanitize_name,
)


def test_content_type_pins_format_version():
    assert CONTENT_TYPE == "text/plain; version=0.0.4"


def test_sanitize_name():
    assert sanitize_name("serve.latency.entity_linking") == (
        "serve_latency_entity_linking")
    assert sanitize_name("pretrain/step") == "pretrain_step"
    assert sanitize_name("ok_name:sub") == "ok_name:sub"
    assert sanitize_name("9lives") == "_9lives"
    assert sanitize_name("") == "_"


def test_counter_and_gauge_exposition():
    registry = MetricsRegistry()
    registry.counter("serve.requests").inc(3)
    registry.gauge("serve.queue_depth").set(1.5)
    text = format_prometheus(registry)
    assert "# HELP serve_requests serve.requests\n" in text
    assert "# TYPE serve_requests counter\n" in text
    assert "serve_requests 3\n" in text
    assert "# TYPE serve_queue_depth gauge\n" in text
    assert "serve_queue_depth 1.5\n" in text
    assert text.endswith("\n")


def test_histogram_and_timer_expose_as_summaries():
    registry = MetricsRegistry()
    histogram = registry.histogram("serve.batch_size")
    for value in (1, 2, 3, 4):
        histogram.observe(value)
    timer = registry.timer("serve.latency")
    timer.observe(0.25)
    text = format_prometheus(registry)
    # Timer subclasses Histogram: both must land in the summary branch
    assert "# TYPE serve_batch_size summary\n" in text
    assert "# TYPE serve_latency summary\n" in text
    assert 'serve_batch_size{quantile="0.5"}' in text
    assert 'serve_batch_size{quantile="0.95"}' in text
    assert 'serve_batch_size{quantile="0.99"}' in text
    assert "serve_batch_size_sum 10\n" in text
    assert "serve_batch_size_count 4\n" in text
    assert "serve_latency_sum 0.25\n" in text
    assert "serve_latency_count 1\n" in text


def test_empty_registry_renders_empty_string():
    assert format_prometheus(MetricsRegistry()) == ""


def test_default_registry_is_the_global_one():
    registry = enable_metrics()
    registry.counter("lint.files").inc()
    text = format_prometheus()
    assert "lint_files 1\n" in text


def test_every_line_is_wellformed():
    registry = MetricsRegistry()
    registry.counter("a.b").inc()
    registry.timer("c/d").observe(2.0)
    for line in format_prometheus(registry).strip().splitlines():
        if line.startswith("#"):
            assert line.startswith(("# HELP ", "# TYPE "))
        else:
            name, value = line.rsplit(" ", 1)
            float(value)  # every sample value parses as a number
            assert " " not in name.split("{")[0]
