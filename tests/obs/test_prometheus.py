"""Prometheus text exposition: type lines, summaries, name sanitization."""

from repro.obs import (
    CONTENT_TYPE,
    MetricsRegistry,
    enable_metrics,
    format_prometheus,
    sanitize_name,
)


def test_content_type_pins_format_version():
    assert CONTENT_TYPE == "text/plain; version=0.0.4"


def test_sanitize_name():
    assert sanitize_name("serve.latency.entity_linking") == (
        "serve_latency_entity_linking")
    assert sanitize_name("pretrain/step") == "pretrain_step"
    assert sanitize_name("ok_name:sub") == "ok_name:sub"
    assert sanitize_name("9lives") == "_9lives"
    assert sanitize_name("") == "_"


def test_counter_and_gauge_exposition():
    registry = MetricsRegistry()
    registry.counter("serve.requests").inc(3)
    registry.gauge("serve.queue_depth").set(1.5)
    text = format_prometheus(registry)
    assert "# HELP serve_requests serve.requests\n" in text
    assert "# TYPE serve_requests counter\n" in text
    assert "serve_requests 3\n" in text
    assert "# TYPE serve_queue_depth gauge\n" in text
    assert "serve_queue_depth 1.5\n" in text
    assert text.endswith("\n")


def test_histogram_and_timer_expose_as_summaries():
    registry = MetricsRegistry()
    histogram = registry.histogram("serve.batch_size")
    for value in (1, 2, 3, 4):
        histogram.observe(value)
    timer = registry.timer("serve.latency")
    timer.observe(0.25)
    text = format_prometheus(registry)
    # Timer subclasses Histogram: both must land in the summary branch
    assert "# TYPE serve_batch_size summary\n" in text
    assert "# TYPE serve_latency summary\n" in text
    assert 'serve_batch_size{quantile="0.5"}' in text
    assert 'serve_batch_size{quantile="0.95"}' in text
    assert 'serve_batch_size{quantile="0.99"}' in text
    assert "serve_batch_size_sum 10\n" in text
    assert "serve_batch_size_count 4\n" in text
    assert "serve_latency_sum 0.25\n" in text
    assert "serve_latency_count 1\n" in text


def test_fleet_cache_metric_namespacing_and_rollup():
    """Pin the serving-fleet metric name scheme end to end.

    Per-worker caches publish ``serve.worker<i>.cache.*`` gauges; the
    fleet rollup keeps the historical ``serve.encode_cache.hit_rate``
    name.  The rollup must be traffic-weighted: summed hits over summed
    lookups, never a mean of per-worker rates.
    """
    from repro.serve import EncodeCache

    registry = MetricsRegistry()
    per_worker = {
        "worker0": {"hits": 90.0, "misses": 10.0, "entries": 5.0,
                    "capacity": 8.0, "hit_rate": 0.9},
        "worker1": {"hits": 0.0, "misses": 900.0, "entries": 8.0,
                    "capacity": 8.0, "hit_rate": 0.0},
    }
    for worker, stats in per_worker.items():
        for key, value in stats.items():
            registry.gauge(f"serve.{worker}.cache.{key}").set(value)
    rollup = EncodeCache.aggregate(per_worker.values())
    registry.gauge("serve.encode_cache.hit_rate").set(rollup["hit_rate"])

    text = format_prometheus(registry)
    assert "# TYPE serve_worker0_cache_hit_rate gauge\n" in text
    assert "serve_worker0_cache_hit_rate 0.9\n" in text
    assert "serve_worker1_cache_hit_rate 0\n" in text
    assert "serve_worker0_cache_hits 90\n" in text
    assert "serve_worker1_cache_misses 900\n" in text
    # 90 hits in 1000 lookups -> 0.09; a rate-mean would wrongly say 0.45.
    assert "serve_encode_cache_hit_rate 0.09\n" in text


def test_empty_registry_renders_empty_string():
    assert format_prometheus(MetricsRegistry()) == ""


def test_default_registry_is_the_global_one():
    registry = enable_metrics()
    registry.counter("lint.files").inc()
    text = format_prometheus()
    assert "lint_files 1\n" in text


def test_every_line_is_wellformed():
    registry = MetricsRegistry()
    registry.counter("a.b").inc()
    registry.timer("c/d").observe(2.0)
    for line in format_prometheus(registry).strip().splitlines():
        if line.startswith("#"):
            assert line.startswith(("# HELP ", "# TYPE "))
        else:
            name, value = line.rsplit(" ", 1)
            float(value)  # every sample value parses as a number
            assert " " not in name.split("{")[0]
