"""Every obs test leaves the global registry / tracer in the default
(no-op) state so instrumented code elsewhere in the suite stays free."""

import pytest

from repro.obs import disable_metrics, disable_tracing


@pytest.fixture(autouse=True)
def _reset_observability():
    yield
    disable_metrics()
    disable_tracing()
