"""JSONL journal round-trip and the report summarizer."""

import json

import pytest

from repro.obs import (
    EVENT_HEADER,
    EVENT_PROBE,
    EVENT_STEP,
    RunJournal,
    format_journal_summary,
    read_journal,
    summarize_journal,
)


def _write_run(path, n_steps=4):
    with RunJournal(str(path)) as journal:
        journal.header(config={"dim": 32, "num_layers": 2}, seed=7)
        for step in range(1, n_steps + 1):
            journal.step(step, loss=10.0 - step, mlm=5.0, mer=4.0 - step / 2,
                         lr=1e-3 / step, grad_norm=2.0, tokens=200,
                         seconds=0.5, tokens_per_second=400.0,
                         forward_seconds=0.3, backward_seconds=0.15,
                         optimizer_seconds=0.05)
        journal.probe(n_steps, accuracy=0.25, seconds=0.1)
    return str(path)


def test_journal_round_trip(tmp_path):
    path = _write_run(tmp_path / "run.jsonl")
    events = read_journal(path)
    assert [e["event"] for e in events] == (
        [EVENT_HEADER] + [EVENT_STEP] * 4 + [EVENT_PROBE])
    assert events[0]["config"]["dim"] == 32
    assert events[0]["seed"] == 7
    assert events[1]["step"] == 1
    assert events[-1]["accuracy"] == 0.25
    # Every line of the file is independently parseable JSON.
    with open(path) as handle:
        for line in handle:
            assert json.loads(line)["event"] in (EVENT_HEADER, EVENT_STEP,
                                                 EVENT_PROBE)


def test_header_written_once(tmp_path):
    path = str(tmp_path / "run.jsonl")
    with RunJournal(path) as journal:
        journal.header(config={"dim": 32}, seed=1)
        journal.header(config={"dim": 64}, seed=2)
    events = read_journal(path)
    assert len(events) == 1
    assert events[0]["config"]["dim"] == 32


def test_write_after_close_raises(tmp_path):
    journal = RunJournal(str(tmp_path / "run.jsonl"))
    journal.close()
    with pytest.raises(ValueError):
        journal.step(1, loss=1.0)


def test_summary_math(tmp_path):
    events = read_journal(_write_run(tmp_path / "run.jsonl"))
    summary = summarize_journal(events)
    assert summary.n_steps == 4
    assert summary.first_loss == pytest.approx(9.0)
    assert summary.last_loss == pytest.approx(6.0)
    assert summary.mean_loss == pytest.approx(7.5)
    assert summary.wall_seconds == pytest.approx(2.0)
    assert summary.steps_per_second == pytest.approx(2.0)
    assert summary.tokens_per_second == pytest.approx(400.0)
    assert summary.final_lr == pytest.approx(1e-3 / 4)
    assert summary.phases["forward"].count == 4
    assert summary.phases["forward"].total_seconds == pytest.approx(1.2)
    assert summary.phases["backward"].mean_seconds == pytest.approx(0.15)
    assert summary.probe_steps == [4]
    assert summary.probe_accuracies == [0.25]


def test_format_summary_mentions_phases_and_probe(tmp_path):
    events = read_journal(_write_run(tmp_path / "run.jsonl"))
    text = format_journal_summary(summarize_journal(events))
    for needle in ("steps", "loss", "forward", "backward", "optimizer",
                   "probe", "seed=7"):
        assert needle in text


def test_summarize_empty_journal(tmp_path):
    path = str(tmp_path / "empty.jsonl")
    RunJournal(path).close()
    summary = summarize_journal(read_journal(path))
    assert summary.n_steps == 0
    assert summary.first_loss is None
    assert "steps    : 0" in format_journal_summary(summary)
