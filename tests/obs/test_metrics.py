"""Counter / gauge / histogram / timer math and the registry plumbing."""

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Timer,
    disable_metrics,
    enable_metrics,
    format_metrics,
    get_registry,
)


def test_counter_accumulates():
    counter = Counter("steps")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    counter.reset()
    assert counter.value == 0.0


def test_gauge_holds_last_value():
    gauge = Gauge("lr")
    gauge.set(0.1)
    gauge.set(0.05)
    assert gauge.value == 0.05


def test_histogram_summary_math():
    histogram = Histogram("h")
    for value in range(1, 101):
        histogram.observe(float(value))
    assert histogram.count == 100
    assert histogram.total == pytest.approx(5050.0)
    assert histogram.mean == pytest.approx(50.5)
    assert histogram.minimum == 1.0
    assert histogram.maximum == 100.0
    assert histogram.percentile(50) == pytest.approx(50.5)
    assert histogram.percentile(95) == pytest.approx(95.05)
    assert histogram.percentile(0) == 1.0
    assert histogram.percentile(100) == 100.0


def test_histogram_edge_cases():
    histogram = Histogram("h")
    assert histogram.percentile(50) == 0.0
    assert histogram.mean == 0.0
    histogram.observe(7.0)
    assert histogram.percentile(50) == 7.0
    assert histogram.percentile(95) == 7.0


def test_timer_records_positive_durations():
    timer = Timer("t")
    with timer.time():
        sum(range(1000))
    assert timer.count == 1
    assert timer.samples[0] >= 0.0


def test_registry_get_or_create_and_snapshot():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    registry.counter("a").inc(4)
    registry.histogram("b").observe(2.0)
    snapshot = registry.as_dict()
    assert snapshot["a"]["value"] == 4.0
    assert snapshot["b"]["count"] == 1.0
    assert "a" in format_metrics(registry)


def test_null_registry_is_default_and_inert():
    registry = get_registry()
    assert isinstance(registry, NullRegistry)
    assert not registry.enabled
    counter = registry.counter("anything")
    counter.inc(100)
    assert counter.value == 0.0
    histogram = registry.histogram("h")
    histogram.observe(5.0)
    assert histogram.count == 0
    with registry.timer("t").time():
        pass
    assert registry.timer("t").count == 0


def test_enable_disable_swaps_global_registry():
    registry = enable_metrics()
    assert get_registry() is registry
    assert registry.enabled
    registry.counter("x").inc()
    assert registry.counter("x").value == 1.0
    disable_metrics()
    assert isinstance(get_registry(), NullRegistry)


def test_p99_in_summary_and_edge_cases():
    histogram = Histogram("h")
    assert histogram.summary()["p99"] == 0.0  # no samples
    histogram.observe(7.0)
    assert histogram.summary()["p99"] == 7.0  # single sample
    histogram.reset()
    for value in range(1, 101):
        histogram.observe(float(value))
    summary = histogram.summary()
    # linear interpolation over 100 samples: rank 98.01 -> 99.01
    assert summary["p99"] == pytest.approx(99.01)
    assert summary["p95"] <= summary["p99"] <= summary["max"]
    histogram.reset()
    histogram.observe(1.0)
    histogram.observe(1000.0)
    # p99 tracks the tail sample far more closely than p50
    assert histogram.percentile(99) == pytest.approx(990.01)
    assert histogram.percentile(50) == pytest.approx(500.5)


def test_format_metrics_includes_p99_column():
    registry = MetricsRegistry()
    histogram = registry.histogram("serve.latency")
    for value in (1.0, 2.0, 3.0):
        histogram.observe(value)
    registry.counter("serve.requests").inc()
    text = format_metrics(registry)
    header, latency_row, counter_row = text.splitlines()
    assert "P99" in header
    assert header.index("P99") > header.index("P95")
    p99 = histogram.percentile(99)
    assert f"{p99:12.4f}" in latency_row
    assert "serve.requests" in counter_row
