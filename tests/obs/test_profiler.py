"""Layer profiler: path mapping, forward/backward attribution, memory
windows, bit-identity with profiling on/off, and report rendering."""

import numpy as np
import pytest

from repro.nn import FORWARD_HOOK, TAPE_HOOK, Linear, Module, ModuleList, Tensor
from repro.obs import (
    LayerProfiler,
    format_layer_table,
    format_profile_tree,
    profile,
)


class _Block(Module):
    def __init__(self, dim, rng):
        super().__init__()
        self.dense = Linear(dim, dim, rng)
        self.out = Linear(dim, dim, rng)

    def forward(self, x):
        return self.out(self.dense(x).relu())


class _Net(Module):
    def __init__(self, dim, rng):
        super().__init__()
        self.blocks = ModuleList([_Block(dim, rng) for _ in range(2)])
        self.head = Linear(dim, 1, rng)

    def forward(self, x):
        for block in self.blocks:
            x = block(x)
        return self.head(x)


def _run(net, seed=3):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.standard_normal((4, 8)).astype(np.float64))
    loss = net(x).sum()
    loss.backward()
    grads = [p.grad.copy() for _, p in sorted(net.named_parameters())]
    return float(loss.data), grads


@pytest.fixture
def net():
    return _Net(8, np.random.default_rng(0))


def test_paths_cover_module_tree(net):
    profiler = LayerProfiler()
    profiler.install(net)
    try:
        net(Tensor(np.zeros((2, 8))))
    finally:
        profiler.uninstall()
    paths = profiler.active_paths()
    assert paths[0] == "model"
    assert "model/blocks/items/0/dense" in paths
    assert "model/blocks/items/1/out" in paths
    assert "model/head" in paths
    # definition order: block 0 before block 1 before head
    assert paths.index("model/blocks/items/0/dense") < paths.index(
        "model/blocks/items/1/dense") < paths.index("model/head")


def test_forward_time_parent_covers_children(net):
    with profile(net) as profiler:
        for _ in range(3):
            net(Tensor(np.zeros((2, 8))))
    stats = profiler.stats()
    root = stats["model"]
    assert root.calls == 3
    child_sum = sum(stats[p].forward_seconds for p in
                    ("model/blocks/items/0/dense", "model/blocks/items/0/out"))
    block = stats["model/blocks/items/0/dense"]
    assert block.calls == 3
    # cumulative >= every child; self excludes instrumented children
    assert stats["model"].forward_seconds >= child_sum * 0.99
    assert root.forward_self_seconds <= root.forward_seconds
    assert profiler.total_forward_seconds() == pytest.approx(
        root.forward_seconds)


def test_backward_attribution(net):
    with profile(net) as profiler:
        _run(net)
    stats = profiler.stats()
    attributed = [s for s in stats.values() if s.backward_ops]
    assert attributed, "no tape nodes were attributed to layers"
    head = stats["model/head"]
    assert head.backward_ops > 0
    assert head.backward_seconds >= 0.0
    # leaf Linear layers create tape nodes; the container paths may not
    assert stats["model/blocks/items/1/out"].backward_ops > 0


def test_bit_identity_with_profiling(net):
    loss_plain, grads_plain = _run(net)
    net.zero_grad()
    with profile(net, memory=True):
        loss_profiled, grads_profiled = _run(net)
    assert loss_profiled == loss_plain
    for a, b in zip(grads_plain, grads_profiled):
        assert np.array_equal(a, b)


def test_hooks_released_after_uninstall(net):
    assert not FORWARD_HOOK.enabled and not TAPE_HOOK.enabled
    with profile(net):
        assert FORWARD_HOOK.enabled and TAPE_HOOK.enabled
    assert not FORWARD_HOOK.enabled and not TAPE_HOOK.enabled
    # a second profiler can install after the first released the hooks
    with profile(net) as profiler:
        net(Tensor(np.zeros((1, 8))))
    assert profiler.stats()["model"].calls == 1


def test_double_install_rejected(net):
    profiler = LayerProfiler()
    profiler.install(net)
    try:
        with pytest.raises(RuntimeError):
            profiler.install(net)
        with pytest.raises(RuntimeError):
            LayerProfiler().install(net)
    finally:
        profiler.uninstall()


def test_foreign_modules_are_transparent(net):
    other = Linear(8, 8, np.random.default_rng(1))
    with profile(net) as profiler:
        net(Tensor(np.zeros((2, 8))))
        other(Tensor(np.zeros((2, 8))))  # not in the instrumented tree
    stats = profiler.stats()
    assert stats["model"].calls == 1
    assert all(s.calls <= 1 for s in stats.values())


def test_memory_attribution(net):
    with profile(net, memory=True) as profiler:
        net(Tensor(np.zeros((64, 8))))
    stats = profiler.stats()
    assert stats["model"].peak_bytes > 0
    assert stats["model/head"].peak_bytes > 0


def test_reports_render(net):
    with profile(net, memory=True) as profiler:
        _run(net)
    tree = format_profile_tree(profiler)
    assert "Layer" in tree and "Peak MB" in tree
    assert "\n  head" in tree  # depth-1 indentation
    assert "dense" in tree  # leaf layers present
    table = format_layer_table(profiler, limit=3)
    assert len(table.splitlines()) == 4  # header + limit rows
    assert "model" in table.splitlines()[1]
    payload = profiler.to_dict()
    assert payload["memory"] is True
    assert any(layer["path"] == "model/head" for layer in payload["layers"])
