"""Instrumented pre-training: determinism, mode restore, journal wiring."""

import numpy as np

from repro.core.pretrain import Pretrainer
from repro.obs import (
    RunJournal,
    disable_metrics,
    disable_tracing,
    enable_metrics,
    enable_tracing,
    read_journal,
)


def _train_losses(context, instances, journal=None, n_epochs=2):
    model = context.fresh_model(seed=3)
    pretrainer = Pretrainer(model, instances, context.candidate_builder,
                            context.config, seed=1, journal=journal)
    stats = pretrainer.train(n_epochs=n_epochs)
    return stats, model


def test_losses_bit_identical_with_instrumentation_on_vs_off(
        request, tmp_path):
    context = request.getfixturevalue("context")
    instances = context.instances_for(context.splits.train)[:16]

    disable_metrics()
    disable_tracing()
    plain_stats, plain_model = _train_losses(context, instances)

    enable_metrics()
    enable_tracing()
    journal = RunJournal(str(tmp_path / "run.jsonl"))
    try:
        observed_stats, observed_model = _train_losses(context, instances,
                                                       journal=journal)
    finally:
        journal.close()

    # Bit-identical, not approximately equal: instrumentation must never
    # touch an RNG or reorder a floating-point computation.
    assert observed_stats.losses == plain_stats.losses
    assert observed_stats.mlm_losses == plain_stats.mlm_losses
    assert observed_stats.mer_losses == plain_stats.mer_losses
    for key, value in plain_model.state_dict().items():
        np.testing.assert_array_equal(observed_model.state_dict()[key], value)


def test_stats_carry_wall_seconds_and_throughput(request):
    context = request.getfixturevalue("context")
    instances = context.instances_for(context.splits.train)[:8]
    stats, _ = _train_losses(context, instances, n_epochs=1)
    assert stats.steps == len(stats.losses) > 0
    assert stats.wall_seconds > 0.0
    assert stats.throughput > 0.0


def test_pretrainer_journal_records_header_steps_and_probe(request, tmp_path):
    context = request.getfixturevalue("context")
    instances = context.instances_for(context.splits.train)[:8]
    model = context.fresh_model(seed=3)
    path = str(tmp_path / "run.jsonl")
    with RunJournal(path) as journal:
        pretrainer = Pretrainer(model, instances, context.candidate_builder,
                                context.config, seed=1, journal=journal)
        pretrainer.train(n_epochs=1, eval_instances=instances[:4])
    events = read_journal(path)
    kinds = [e["event"] for e in events]
    assert kinds[0] == "header"
    assert kinds.count("step") >= 1
    assert kinds[-1] == "probe"
    header = events[0]
    assert header["seed"] == 1
    assert header["config"]["dim"] == context.config.dim
    step = next(e for e in events if e["event"] == "step")
    for key in ("loss", "mlm", "mer", "lr", "grad_norm", "tokens", "seconds",
                "tokens_per_second", "forward_seconds", "backward_seconds",
                "optimizer_seconds"):
        assert key in step


def test_step_metrics_and_spans_recorded(request):
    context = request.getfixturevalue("context")
    instances = context.instances_for(context.splits.train)[:8]
    registry = enable_metrics()
    tracer = enable_tracing()
    stats, _ = _train_losses(context, instances, n_epochs=1)
    assert registry.counter("pretrain.steps").value == stats.steps
    assert registry.timer("pretrain.forward").count == stats.steps
    totals = tracer.totals()
    assert totals["pretrain/step"].count == stats.steps
    assert totals["pretrain/step/forward"].count == stats.steps
    assert totals["model/encode/encoder"].count >= stats.steps
    assert "pretrain/train" in tracer.report()


def test_probe_restores_callers_mode(request):
    context = request.getfixturevalue("context")
    instances = context.instances_for(context.splits.train)[:6]
    pretrainer = Pretrainer(context.model, instances,
                            context.candidate_builder, context.config)

    pretrainer.model.train()
    pretrainer.evaluate_object_prediction(instances[:4])
    assert pretrainer.model.training, "probe must restore train mode"

    pretrainer.model.eval()
    pretrainer.evaluate_object_prediction(instances[:4])
    assert not pretrainer.model.training, "probe must leave eval mode alone"
