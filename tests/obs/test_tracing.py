"""Span nesting, per-label aggregation and the tree report."""

from repro.obs import (
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    trace,
)


def test_spans_nest_and_aggregate_by_path():
    tracer = Tracer()
    with tracer.span("train"):
        assert tracer.depth == 1
        with tracer.span("forward"):
            assert tracer.depth == 2
        with tracer.span("forward"):
            pass
        with tracer.span("backward"):
            pass
    assert tracer.depth == 0
    paths = tracer.paths()
    assert paths[("train",)].count == 1
    assert paths[("train", "forward")].count == 2
    assert paths[("train", "backward")].count == 1
    # Children's time is contained in the parent's.
    child_total = (paths[("train", "forward")].total_seconds
                   + paths[("train", "backward")].total_seconds)
    assert paths[("train",)].total_seconds >= child_total


def test_same_label_under_different_parents_stays_distinct():
    tracer = Tracer()
    with tracer.span("a"):
        with tracer.span("shared"):
            pass
    with tracer.span("b"):
        with tracer.span("shared"):
            pass
        with tracer.span("shared"):
            pass
    assert tracer.paths()[("a", "shared")].count == 1
    assert tracer.paths()[("b", "shared")].count == 2
    # ...but totals() merges them per label.
    assert tracer.totals()["shared"].count == 3
    assert tracer.stats("shared").count == 3


def test_report_renders_indented_tree():
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    report = tracer.report()
    lines = report.splitlines()
    assert lines[0].startswith("Span")
    assert any(line.startswith("outer") for line in lines)
    assert any(line.startswith("  inner") for line in lines)


def test_trace_is_noop_when_disabled():
    disable_tracing()
    assert get_tracer() is None
    with trace("never/recorded"):
        pass  # must not raise, must not record anywhere


def test_trace_records_on_global_tracer():
    tracer = enable_tracing()
    with trace("pretrain/step"):
        with trace("pretrain/step/forward"):
            pass
    assert tracer.totals()["pretrain/step"].count == 1
    assert tracer.totals()["pretrain/step/forward"].count == 1
    tracer.reset()
    assert tracer.paths() == {}
