"""Tests for the WordPiece tokenizer and vocabularies."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import EntityVocabulary, SPECIAL_TOKENS, Vocabulary, WordPieceTokenizer, basic_tokenize
from repro.text.vocab import MASK_ID, PAD_ID, UNK_ID

CORPUS = [
    "national film award for best direction",
    "the film was directed by a famous director",
    "list of award recipients by year",
    "film festival awards and nominations 2019",
    "the director won the national award",
] * 3


def make_tokenizer():
    return WordPieceTokenizer.train(CORPUS, vocab_size=500, min_frequency=2)


def test_basic_tokenize_splits_punctuation():
    assert basic_tokenize("Hello, World! 42") == ["hello", ",", "world", "!", "42"]


def test_basic_tokenize_lowercases():
    assert basic_tokenize("FiLm") == ["film"]


def test_special_token_ids_are_stable():
    vocab = Vocabulary()
    assert vocab.id_of("[PAD]") == PAD_ID == 0
    assert vocab.id_of("[UNK]") == UNK_ID == 1
    assert vocab.id_of("[MASK]") == MASK_ID == 2


def test_vocab_add_and_lookup():
    vocab = Vocabulary(["film", "award"])
    assert vocab.id_of("film") == len(SPECIAL_TOKENS)
    assert vocab.id_of("nope") == UNK_ID
    assert "film" in vocab
    assert vocab.token_of(vocab.id_of("award")) == "award"


def test_vocab_add_idempotent():
    vocab = Vocabulary()
    first = vocab.add("x")
    second = vocab.add("x")
    assert first == second


def test_vocab_json_roundtrip():
    vocab = Vocabulary(["alpha", "beta"])
    restored = Vocabulary.from_json(vocab.to_json())
    assert len(restored) == len(vocab)
    assert restored.id_of("beta") == vocab.id_of("beta")


def test_vocab_from_json_rejects_bad_prefix():
    with pytest.raises(ValueError):
        Vocabulary.from_json(json.dumps(["a", "b"]))


def test_vocab_build_respects_min_frequency():
    vocab = Vocabulary.build(["a", "a", "b"], min_frequency=2)
    assert "a" in vocab
    assert "b" not in vocab


def test_entity_vocab_drops_singletons():
    from collections import Counter
    counts = Counter({"e1": 5, "e2": 1, "e3": 2})
    vocab = EntityVocabulary.build_from_counts(counts)
    assert "e1" in vocab and "e3" in vocab
    assert "e2" not in vocab


def test_tokenizer_known_word_is_single_token():
    tokenizer = make_tokenizer()
    assert tokenizer.tokenize("film") == ["film"]


def test_tokenizer_unknown_word_segments_to_pieces():
    tokenizer = make_tokenizer()
    pieces = tokenizer.tokenize("filmography")
    assert len(pieces) >= 2
    assert pieces[0] == "film" or not pieces[0].startswith("##")
    assert all(p.startswith("##") for p in pieces[1:])


def test_tokenizer_never_unk_for_known_alphabet():
    tokenizer = make_tokenizer()
    # All-lowercase-latin words must segment via character fallback.
    assert "[UNK]" not in tokenizer.tokenize("zzzqqqxxx")


def test_tokenizer_unk_for_unseen_characters():
    tokenizer = make_tokenizer()
    # Each CJK character is split into its own word by the basic tokenizer,
    # and each maps to [UNK] since the characters were never seen.
    assert tokenizer.tokenize("日本") == ["[UNK]", "[UNK]"]


def test_encode_truncates():
    tokenizer = make_tokenizer()
    ids = tokenizer.encode("national film award for best direction", max_length=3)
    assert len(ids) == 3


def test_decode_reassembles_words():
    tokenizer = make_tokenizer()
    text = "national film award"
    assert tokenizer.decode(tokenizer.encode(text)) == text


def test_tokenizer_json_roundtrip():
    tokenizer = make_tokenizer()
    restored = WordPieceTokenizer.from_json(tokenizer.to_json())
    text = "the director won the award"
    assert restored.encode(text) == tokenizer.encode(text)


def test_overlong_word_is_unk():
    tokenizer = make_tokenizer()
    assert tokenizer.tokenize("a" * 100) == ["[UNK]"]


@settings(max_examples=50, deadline=None)
@given(st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122), min_size=1, max_size=20))
def test_property_lowercase_words_always_segment(word):
    """Any latin-lowercase word segments without [UNK] given char fallback."""
    tokenizer = make_tokenizer()
    pieces = tokenizer.tokenize(word)
    if len(word) <= tokenizer.max_word_chars:
        assert "[UNK]" not in pieces
        # Pieces must re-concatenate to the original word.
        rebuilt = pieces[0] + "".join(p[2:] for p in pieces[1:])
        assert rebuilt == word


@settings(max_examples=30, deadline=None)
@given(st.lists(st.sampled_from(["film", "award", "director", "year", "best"]), min_size=1, max_size=8))
def test_property_encode_decode_roundtrip_known_words(words):
    tokenizer = make_tokenizer()
    text = " ".join(words)
    assert tokenizer.decode(tokenizer.encode(text)) == text
