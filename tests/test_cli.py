"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_world_command(capsys, tmp_path):
    out = str(tmp_path / "kb.json")
    assert main(["world", "--seed", "3", "--out", out]) == 0
    captured = capsys.readouterr().out
    assert "entities" in captured
    assert "facts" in captured
    import os
    assert os.path.exists(out)


def test_corpus_command(capsys, tmp_path):
    out = str(tmp_path / "corpus.jsonl")
    assert main(["corpus", "--seed", "3", "--tables", "40", "--out", out]) == 0
    captured = capsys.readouterr().out
    assert "train/dev/test" in captured
    from repro.data.corpus import TableCorpus
    assert len(TableCorpus.load_jsonl(out)) > 0


def test_registry_command(capsys):
    assert main(["registry"]) == 0
    captured = capsys.readouterr().out
    assert "Table 4" in captured
    assert "Figure 7b" in captured


def test_pretrain_and_probe_commands(capsys, tmp_path):
    checkpoint = str(tmp_path / "ckpt")
    assert main(["pretrain", "--seed", "3", "--tables", "40", "--epochs", "1",
                 "--out", checkpoint]) == 0
    assert main(["probe", "--checkpoint", checkpoint, "--seed", "3",
                 "--tables", "40", "--max-tables", "5"]) == 0
    captured = capsys.readouterr().out
    assert "recovery accuracy" in captured
    assert "throughput" in captured


def test_pretrain_journal_and_report_commands(capsys, tmp_path):
    from repro.obs import read_journal

    checkpoint = str(tmp_path / "ckpt")
    journal = str(tmp_path / "run.jsonl")
    assert main(["pretrain", "--seed", "3", "--tables", "40", "--epochs", "1",
                 "--out", checkpoint, "--journal", journal]) == 0
    events = read_journal(journal)
    kinds = [event["event"] for event in events]
    assert kinds[0] == "header"
    assert "step" in kinds
    assert kinds[-1] == "probe"

    assert main(["report", "--journal", journal]) == 0
    captured = capsys.readouterr().out
    assert "steps/s" in captured
    assert "forward" in captured
    assert "backward" in captured
    assert "optimizer" in captured
    assert "probe" in captured


def test_finetune_command(capsys, tmp_path):
    from repro.obs import read_journal

    checkpoint = str(tmp_path / "ckpt")
    journal = str(tmp_path / "finetune.jsonl")
    state = str(tmp_path / "state")
    assert main(["pretrain", "--seed", "3", "--tables", "40", "--epochs", "1",
                 "--out", checkpoint]) == 0
    assert main(["finetune", "--task", "schema_augmentation",
                 "--checkpoint", checkpoint, "--seed", "3", "--tables", "40",
                 "--epochs", "1", "--max-instances", "10",
                 "--journal", journal, "--save-state", state]) == 0
    captured = capsys.readouterr().out
    assert "task: schema_augmentation" in captured
    assert "epoch 1" in captured
    assert "test MAP" in captured

    events = read_journal(journal)
    kinds = [event["event"] for event in events]
    assert kinds[0] == "header"
    assert "step" in kinds
    assert events[0]["task"] == "task/schema_augmentation"

    import os
    assert os.path.exists(os.path.join(state, "trainer.json"))
    assert os.path.exists(os.path.join(state, "optimizer.npz"))


def test_finetune_rejects_unknown_task(tmp_path):
    with pytest.raises(SystemExit):
        main(["finetune", "--task", "nope", "--checkpoint", "x"])


def test_report_empty_journal_fails(tmp_path, capsys):
    journal = str(tmp_path / "empty.jsonl")
    open(journal, "w").close()
    assert main(["report", "--journal", journal]) == 1
    assert "empty" in capsys.readouterr().out


def test_bench_command_writes_report(capsys, tmp_path):
    import json

    out = str(tmp_path / "BENCH_test.json")
    assert main(["bench", "--warmup", "0", "--repeat", "1",
                 "--only", "visibility_construct",
                 "--name", "test", "--json", out]) == 0
    captured = capsys.readouterr().out
    assert "visibility_construct" in captured
    assert "speedup" in captured
    with open(out) as handle:
        payload = json.load(handle)
    assert payload["bench"] == "test"
    assert payload["cases"][0]["name"] == "visibility_construct"
    assert payload["cases"][0]["speedup"] > 1.0


def test_bench_command_rejects_unknown_case(capsys):
    assert main(["bench", "--only", "nope"]) == 1
    assert "unknown bench case" in capsys.readouterr().out


def test_bench_compare_gate(capsys, tmp_path):
    import json

    out = str(tmp_path / "BENCH_run.json")
    assert main(["bench", "--warmup", "0", "--repeat", "1",
                 "--only", "visibility_construct",
                 "--name", "run", "--json", out]) == 0
    capsys.readouterr()
    # comparing a run against itself passes and writes the verdict JSON
    # (wide tolerance: this asserts the compare plumbing, not the
    # run-to-run stability of a best-of-1 sub-5ms measurement)
    verdict = str(tmp_path / "comparison.json")
    assert main(["bench", "--warmup", "0", "--repeat", "1",
                 "--only", "visibility_construct", "--name", "again",
                 "--compare-to", out, "--tolerance", "0.9",
                 "--compare-json", verdict]) == 0
    captured = capsys.readouterr().out
    assert "bench compare: again vs baseline run" in captured
    with open(verdict) as handle:
        assert json.load(handle)["cases"][0]["name"] == "visibility_construct"
    # an impossible baseline regresses -> exit 1 (the CI gate contract)
    doctored = json.load(open(out))
    doctored["cases"][0]["speedup"] *= 100.0
    rigged = str(tmp_path / "BENCH_rigged.json")
    json.dump(doctored, open(rigged, "w"))
    assert main(["bench", "--warmup", "0", "--repeat", "1",
                 "--only", "visibility_construct",
                 "--compare-to", rigged]) == 1
    assert "REGRESS" in capsys.readouterr().out
    # ... unless a per-case tolerance grants the headroom
    assert main(["bench", "--warmup", "0", "--repeat", "1",
                 "--only", "visibility_construct", "--compare-to", rigged,
                 "--case-tolerance", "visibility_construct=0.999"]) == 0
    # malformed NAME=FRACTION entries fail fast
    assert main(["bench", "--warmup", "0", "--repeat", "1",
                 "--only", "visibility_construct", "--compare-to", out,
                 "--case-tolerance", "visibility_construct=lots"]) == 1
    assert "bad --case-tolerance" in capsys.readouterr().out


def test_bench_compare_unreadable_baseline(capsys, tmp_path):
    assert main(["bench", "--warmup", "0", "--repeat", "1",
                 "--only", "visibility_construct",
                 "--compare-to", str(tmp_path / "missing.json")]) == 1
    assert "cannot read baseline" in capsys.readouterr().out


def test_serve_parser_defaults():
    args = build_parser().parse_args(["serve", "--checkpoint", "ckpt"])
    assert args.handler is not None
    assert (args.host, args.port) == ("127.0.0.1", 8080)
    assert args.max_batch_size == 8 and args.max_wait_ms == 5.0
    assert args.no_cache is False and args.cache_size == 256
    assert args.finetune_epochs == 0


def test_serve_requires_checkpoint():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["serve"])


def test_pretrain_bucket_shuffle(capsys, tmp_path):
    checkpoint = str(tmp_path / "ckpt")
    assert main(["pretrain", "--seed", "3", "--tables", "40", "--epochs", "1",
                 "--out", checkpoint, "--shuffle", "bucket"]) == 0
    assert "throughput" in capsys.readouterr().out


def test_synthesize_command(capsys, tmp_path):
    corpus = str(tmp_path / "corpus")
    assert main(["synthesize", "--seed", "3", "--tables", "40",
                 "--shards", "2", "--workers", "2", "--out", corpus]) == 0
    captured = capsys.readouterr().out
    assert "across 2 shard(s)" in captured
    assert "splits" in captured
    assert "fingerprint" in captured

    from repro.data.shards import ShardedDataset
    dataset = ShardedDataset(corpus)
    assert len(dataset) > 0
    assert dataset.metadata.extra["n_shards"] == 2


def test_pretrain_from_sharded_corpus(capsys, tmp_path):
    corpus = str(tmp_path / "corpus")
    checkpoint = str(tmp_path / "ckpt")
    assert main(["synthesize", "--seed", "3", "--tables", "40",
                 "--shards", "2", "--out", corpus]) == 0
    assert main(["pretrain", "--corpus", corpus, "--epochs", "1",
                 "--shuffle", "shard", "--out", checkpoint]) == 0
    captured = capsys.readouterr().out
    assert "throughput" in captured
    assert main(["probe", "--checkpoint", checkpoint, "--seed", "3",
                 "--tables", "20", "--max-tables", "5"]) == 0
    assert "recovery accuracy" in capsys.readouterr().out


def test_pretrain_rejects_a_broken_corpus(capsys, tmp_path):
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(["pretrain", "--corpus", str(empty), "--epochs", "1",
                 "--out", str(tmp_path / "ckpt")]) == 1
    assert "not a shard directory" in capsys.readouterr().out
