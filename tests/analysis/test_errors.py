"""Tests for the error-analysis helpers."""

import pytest

from repro.analysis.errors import (
    linking_error_breakdown,
    per_genre_breakdown,
    render_genre_breakdown,
)
from repro.tasks.entity_linking import LinkingInstance


class _Table:
    def __init__(self, section):
        self.table_id = "t"
        self.section_title = section


def make_instances():
    return [
        LinkingInstance(_Table("A"), 0, 0, "m", "e1", ["e1", "e2"]),   # correct
        LinkingInstance(_Table("A"), 1, 0, "m", "e2", ["e1", "e2"]),   # confused
        LinkingInstance(_Table("B"), 0, 0, "m", "e3", []),             # no cands
        LinkingInstance(_Table("B"), 1, 0, "m", "e4", ["e9"]),         # gen miss
        LinkingInstance(_Table("B"), 2, 0, "m", "e5", ["e5", "e6"]),   # correct
    ]


def test_linking_breakdown_categories():
    instances = make_instances()
    predictions = ["e1", "e1", None, "e9", "e5"]
    report = linking_error_breakdown(predictions, instances)
    assert report.n_instances == 5
    assert report.correct == 2
    assert report.no_candidates == 1
    assert report.truth_missing_from_candidates == 1
    assert report.disambiguation_errors == 1
    assert report.confusion_pairs == [("e2", "e1", 1)]
    assert report.disambiguation_accuracy == pytest.approx(2 / 3)


def test_linking_breakdown_alignment_check():
    with pytest.raises(ValueError):
        linking_error_breakdown(["e1"], make_instances())


def test_linking_breakdown_render():
    report = linking_error_breakdown(["e1", "e1", None, "e9", "e5"],
                                     make_instances())
    text = report.render()
    assert "disambiguation accuracy" in text
    assert "e2 -> e1" in text


def test_per_genre_breakdown():
    instances = make_instances()
    scores = [1.0, 0.0, 1.0, 0.0, 1.0]
    breakdown = per_genre_breakdown(instances, scores)
    assert breakdown["A"] == (0.5, 2)
    assert breakdown["B"] == (pytest.approx(2 / 3), 3)
    text = render_genre_breakdown(breakdown)
    assert "genre" in text and "A" in text


def test_per_genre_custom_extractor():
    breakdown = per_genre_breakdown([1, 2, 3], [0.0, 1.0, 1.0],
                                    genre_of=lambda i: "odd" if i % 2 else "even")
    assert breakdown["odd"] == (0.5, 2)
    assert breakdown["even"] == (1.0, 1)


def test_per_genre_alignment_check():
    with pytest.raises(ValueError):
        per_genre_breakdown([1], [1.0, 2.0])


def test_real_pipeline_breakdown(context):
    """End-to-end: lookup predictions categorized on the session corpus."""
    from repro.baselines.lookup_linker import LookupLinker
    from repro.kb.lookup import LookupService
    from repro.tasks.entity_linking import build_linking_dataset

    lookup = LookupService(context.kb)
    instances = build_linking_dataset(context.splits.test, lookup,
                                      max_instances=40)
    predictions = LookupLinker().predict(instances)
    report = linking_error_breakdown(predictions, instances)
    assert report.n_instances == len(instances)
    total = (report.correct + report.no_candidates
             + report.truth_missing_from_candidates
             + report.disambiguation_errors)
    assert total == report.n_instances
    assert 0.0 <= report.disambiguation_accuracy <= 1.0
