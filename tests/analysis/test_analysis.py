"""Tests for the analysis toolkit."""

import numpy as np
import pytest

from repro.analysis import (
    attention_map,
    entity_neighbors,
    profile_corpus,
    relation_offset_consistency,
    render_attention,
    render_profile,
    type_clustering_score,
)
from repro.analysis.attention import element_labels


@pytest.fixture(scope="module")
def analyzable(request):
    context = request.getfixturevalue("context")
    table = context.splits.train[0]
    return context, table


def test_attention_map_shape_and_rows_sum_to_one(analyzable):
    context, table = analyzable
    weights, instance = attention_map(context.model, context.linearizer, table)
    heads = context.config.num_heads
    assert weights.shape == (heads, instance.length, instance.length)
    np.testing.assert_allclose(weights.sum(axis=-1), 1.0, atol=1e-9)


def test_attention_respects_visibility(analyzable):
    """Invisible positions receive (numerically) zero attention."""
    from repro.core.visibility import build_visibility

    context, table = analyzable
    weights, instance = attention_map(context.model, context.linearizer, table)
    visibility = build_visibility(instance)
    masked_weight = weights[:, ~visibility]
    assert masked_weight.max() < 1e-6


def test_attention_map_layer_bounds(analyzable):
    context, table = analyzable
    with pytest.raises(IndexError):
        attention_map(context.model, context.linearizer, table, layer=99)


def test_render_attention_text(analyzable):
    context, table = analyzable
    weights, instance = attention_map(context.model, context.linearizer, table)
    labels = element_labels(instance, context.linearizer)
    assert len(labels) == instance.length
    text = render_attention(weights, labels, query=instance.length - 1, top_k=4)
    assert "query" in text
    assert "#" in text or "0.0" in text


def test_entity_neighbors_sane(analyzable):
    context, _ = analyzable
    some_entity = context.entity_vocab.token_of(10)
    neighbors = entity_neighbors(context.model, context.entity_vocab,
                                 some_entity, k=5)
    assert len(neighbors) == 5
    scores = [s for _, s in neighbors]
    assert scores == sorted(scores, reverse=True)
    assert all(-1.0 - 1e-9 <= s <= 1.0 + 1e-9 for s in scores)
    assert all(name != some_entity for name, _ in neighbors)


def test_entity_neighbors_unknown_entity(analyzable):
    context, _ = analyzable
    assert entity_neighbors(context.model, context.entity_vocab, "ghost") == []


def test_type_clustering_score_pretrained_positive(analyzable):
    """MER pre-training should separate entity types at least weakly —
    and clearly better than random embeddings."""
    context, _ = analyzable
    types = ["citytown", "country", "film", "sports_club"]
    trained = type_clustering_score(context.model, context.entity_vocab,
                                    context.kb, types)
    fresh = type_clustering_score(context.fresh_model(seed=11),
                                  context.entity_vocab, context.kb, types)
    assert trained > fresh - 0.02


def test_relation_offset_consistency_bounded(analyzable):
    context, _ = analyzable
    value = relation_offset_consistency(context.model, context.entity_vocab,
                                        context.kb, "city.country")
    assert -1.0 <= value <= 1.0


def test_profile_corpus(analyzable):
    context, _ = analyzable
    profile = profile_corpus(context.splits.train)
    assert profile.n_tables == len(context.splits.train)
    assert 0.0 < profile.link_density <= 1.0
    assert profile.n_distinct_entities > 10
    assert profile.top_headers(3)
    text = render_profile(profile)
    assert "link density" in text
    assert "genres" in text


def test_profile_empty_corpus():
    from repro.data.corpus import TableCorpus

    profile = profile_corpus(TableCorpus([]))
    assert profile.n_tables == 0
    assert profile.link_density == 0.0
