"""The repo's own source must satisfy its own linter.

This is the test-suite twin of the CI lint job: ``src`` lints clean, every
suppression carries a written reason, the CLI entry point exits 0, and the
runtime structural invariants hold.
"""

import io
import os
from contextlib import redirect_stdout

import pytest

from repro.lint import format_json, format_text, lint_paths, run_invariant_checks
from repro.lint.__main__ import main as lint_main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
SRC = os.path.join(REPO_ROOT, "src")
TESTS = os.path.join(REPO_ROOT, "tests")


@pytest.fixture(scope="module")
def src_result():
    return lint_paths([SRC])


def test_src_lints_clean(src_result):
    messages = [violation.format() for violation in src_result.violations]
    assert src_result.ok, "\n".join(messages)
    assert src_result.files_checked > 50


def test_every_suppression_has_a_reason(src_result):
    for entry in src_result.suppressed:
        assert entry.reason.strip(), (
            f"{entry.violation.path}:{entry.violation.line} suppression of "
            f"{entry.violation.rule_id} has an empty reason")


def test_report_formats_render(src_result):
    text = format_text(src_result)
    assert "files checked" in text
    assert "suppressions whitelisted" in text
    assert '"ok": true' in format_json(src_result)


def test_cli_entry_point_exits_zero_on_src():
    output = io.StringIO()
    with redirect_stdout(output):
        exit_code = lint_main([SRC])
    assert exit_code == 0
    assert "0 violations" in output.getvalue()


def test_cli_list_rules():
    output = io.StringIO()
    with redirect_stdout(output):
        exit_code = lint_main(["--list-rules"])
    assert exit_code == 0
    for rule_id in ("RNG001", "CLK001", "TEN001", "EVL001", "EVL002",
                    "DEF001", "EXC001", "LNT000"):
        assert rule_id in output.getvalue()


def test_runtime_invariants_hold():
    assert run_invariant_checks() == []


def test_tests_tree_parses_and_reports():
    # The tests tree is linted for the universally-scoped rules only; it must
    # at minimum parse and produce a well-formed report.
    result = lint_paths([TESTS])
    assert result.files_checked > 30
    assert all(v.rule_id not in ("RNG001", "CLK001", "TEN001")
               for v in result.violations)
